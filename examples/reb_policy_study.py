#!/usr/bin/env python3
"""Scenario: the REB policy experiment behind the paper's §6 argument.

Encodes each Table 1 case study as an REB submission and compares the
two trigger policies — "human subjects only" versus the risk-based
trigger the paper recommends — on coverage and review latency, for
both a legacy medical-model board and an ICTR-capable board.

Run:
    python examples/reb_policy_study.py
"""

from repro import table1_corpus
from repro.reb import (
    REBWorkflow,
    TriggerPolicy,
    ictr_board,
    medical_style_board,
    run_policy_experiment,
    submission_from_entry,
)


def main() -> None:
    corpus = table1_corpus()

    # 1. Coverage: which studies would each trigger policy review?
    comparison = run_policy_experiment(corpus)
    print("Trigger-policy coverage over the Table 1 corpus")
    print(" ", comparison.describe())
    print(
        "  studies flipped from exempt to reviewed include the two "
        "actually-exempted works:",
        sorted(
            set(comparison.flipped)
            & {"booters-karami-stress", "udp-ddos-thomas"}
        ),
    )
    print()

    # 2. Latency: what does review cost at each kind of board?
    submissions = [submission_from_entry(e) for e in corpus]
    print("Review outcomes and latency by board")
    for board in (medical_style_board(), ictr_board()):
        workflow = REBWorkflow(board, TriggerPolicy.RISK_BASED)
        outcomes = workflow.review_all(submissions)
        reviewed = [o for o in outcomes if o.reviewed]
        approved = [o for o in reviewed if o.approved]
        mean_days = sum(o.days_taken for o in reviewed) / len(reviewed)
        print(
            f"  {board.name:<28} reviewed {len(reviewed):2d}, "
            f"approved {len(approved):2d}, mean {mean_days:5.1f} days"
        )
    print()
    print(
        "The legacy board reviews the same submissions but takes "
        "months (no ICTR expertise), which is exactly why the paper "
        "says such boards 'discourage researchers from using REBs'."
    )


if __name__ == "__main__":
    main()
