#!/usr/bin/env python3
"""Scenario: a researcher plans to study a leaked booter database.

This walks the full decision-support pipeline the paper's §6 calls
for: describe the project → identify stakeholders, harms, benefits →
run the legal and Menlo engines → get a verdict with required
actions → generate the ethics section and REB application.

Run:
    python examples/assess_new_research.py
"""

from repro.assessment import (
    PlannedSafeguards,
    ResearchProject,
    assess_project,
    publication_checklist,
)
from repro.corpus import DataOrigin
from repro.ethics import (
    BenefitInstance,
    HarmInstance,
    JustificationFacts,
)
from repro.legal import DataProfile, JurisdictionSet
from repro.reporting import (
    generate_ethics_section,
    generate_reb_application,
)


def build_project(with_safeguards: bool) -> ResearchProject:
    safeguards = (
        PlannedSafeguards(
            secure_storage=True,
            encryption_at_rest=True,
            access_control=True,
            privacy_preserved=True,
            pseudonymisation=True,
            data_minimisation=True,
            controlled_sharing=True,
            acceptable_use_policy="https://example.org/aup/booter",
            retention_limit_days=365,
        )
        if with_safeguards
        else PlannedSafeguards()
    )
    return ResearchProject(
        title="Understanding the economics of DDoS-for-hire",
        research_question=(
            "How much revenue do booters make, and which attacks "
            "dominate their output?"
        ),
        data_description=(
            "A leaked database of a commercial booter service, "
            "containing user accounts, attack logs, payments and "
            "support tickets."
        ),
        profile=DataProfile(
            origin=DataOrigin.UNAUTHORIZED_LEAK,
            contains_email_addresses=True,
            contains_ip_addresses=True,
            contains_private_messages=True,
            copyrighted_material=True,
            publicly_available=True,
        ),
        harms=(
            HarmInstance(
                description=(
                    "booter customers' emails could be re-exposed by "
                    "our handling of the data"
                ),
                kind="SI",
                stakeholder_id="data-subjects",
                likelihood="possible",
                severity="moderate",
            ),
            HarmInstance(
                description=(
                    "criminals could threaten the researchers for "
                    "publishing revenue figures"
                ),
                kind="RH",
                stakeholder_id="researchers",
                likelihood="unlikely",
                severity="moderate",
            ),
        ),
        benefits=(
            BenefitInstance(
                description=(
                    "ground truth on booter attacks, unobtainable by "
                    "external measurement"
                ),
                kind="U",
                beneficiary="society",
                magnitude=0.8,
            ),
            BenefitInstance(
                description=(
                    "defences: amplifier cleanup lists and victim "
                    "notification"
                ),
                kind="DM",
                beneficiary="society",
                magnitude=0.7,
            ),
        ),
        justification_facts=JustificationFacts(
            data_public=True,
            no_alternative_source=True,
            public_interest_case=True,
            secure_handling=with_safeguards,
            adversaries_use_data=True,
        ),
        safeguards=safeguards,
        jurisdictions=JurisdictionSet.from_codes(["UK", "US", "DE"]),
        has_ethics_section=True,
    )


def main() -> None:
    # First attempt: no safeguards planned.
    naive = assess_project(build_project(with_safeguards=False))
    print("=== Without safeguards ===")
    print(naive.summary())
    print()

    # Second attempt: full safeguard plan.
    careful = assess_project(build_project(with_safeguards=True))
    print("=== With safeguards ===")
    print(careful.summary())
    print()

    print("=== Publication checklist ===")
    print(publication_checklist().report(careful))
    print()

    print("=== Generated ethics section ===")
    print(generate_ethics_section(careful))
    print()

    print("=== Generated REB application (excerpt) ===")
    application = generate_reb_application(careful)
    print("\n".join(application.splitlines()[:30]))


if __name__ == "__main__":
    main()
