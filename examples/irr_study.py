#!/usr/bin/env python3
"""Scenario: measure the reliability of the Table 1 coding itself.

Treats the published coding as one coder, simulates an independent
re-coder who disagrees on a controlled fraction of cells, and
computes the inter-rater reliability statistics a methods section
would report (percent agreement, Cohen's kappa per dimension,
Krippendorff's alpha), then adjudicates the disagreements to a
consensus coding.

Run:
    python examples/irr_study.py
"""

import random

from repro import table1_corpus
from repro.codebook import CellValue
from repro.coding import (
    AdjudicationSession,
    Annotation,
    AnnotationSet,
    Coder,
    annotations_from_corpus,
    interpret_kappa,
    pairwise_kappa,
    set_agreement,
)


def perturbed_recoding(
    corpus, coder: Coder, disagree_rate: float, seed: int
) -> AnnotationSet:
    """An independent coder who flips a fraction of binary cells."""
    rng = random.Random(seed)
    original = annotations_from_corpus(corpus, Coder(id="tmp"))
    recoded = AnnotationSet(coder, corpus.codebook)
    flip = {
        CellValue.DISCUSSED: CellValue.NOT_DISCUSSED,
        CellValue.NOT_DISCUSSED: CellValue.DISCUSSED,
    }
    for annotation in original:
        value = annotation.value
        if value in flip and rng.random() < disagree_rate:
            value = flip[value]
        recoded.add(
            Annotation(
                entry_id=annotation.entry_id,
                dimension_id=annotation.dimension_id,
                value=value,
                codes=annotation.codes,
            )
        )
    return recoded


def main() -> None:
    corpus = table1_corpus()
    paper = annotations_from_corpus(corpus, Coder(id="paper-authors"))
    recoder = perturbed_recoding(
        corpus, Coder(id="independent-recoder"),
        disagree_rate=0.08, seed=1,
    )

    summary = set_agreement([paper, recoder])
    print("Agreement between the paper's coding and the re-coder")
    print(f"  percent agreement:     {summary['percent']:.3f}")
    print(f"  Fleiss' kappa:         {summary['fleiss_kappa']:.3f}")
    print(
        f"  Krippendorff's alpha:  "
        f"{summary['krippendorff_alpha']:.3f}"
    )
    print()

    print("Cohen's kappa per dimension (worst five):")
    kappas = pairwise_kappa(paper, recoder)
    worst = sorted(kappas.items(), key=lambda kv: kv[1])[:5]
    for dimension, kappa in worst:
        print(
            f"  {dimension:<34} {kappa:6.3f} "
            f"({interpret_kappa(kappa)})"
        )
    print()

    session = AdjudicationSession([paper, recoder])
    disagreements = session.disagreements()
    print(f"{len(disagreements)} cells disagree; examples:")
    for disagreement in disagreements[:5]:
        print("  " + disagreement.describe())

    # Two coders tie on every disagreement: the adjudicator resolves
    # in favour of the published coding.
    for disagreement in disagreements:
        session.resolve(
            disagreement.entry_id,
            disagreement.dimension_id,
            paper.get(
                disagreement.entry_id, disagreement.dimension_id
            ),
        )
    consensus = session.consensus(Coder(id="adjudicator"))
    print(
        f"consensus built: {len(consensus)} cells "
        "(tie-break: published coding)"
    )


if __name__ == "__main__":
    main()
