#!/usr/bin/env python3
"""Scenario: code a *new* paper against the framework (§6's ask).

The paper expects the community to keep applying its coding scheme.
This example codes a hypothetical 2018 study of a (synthetic) leaked
ransomware-operator chat corpus using :class:`CorpusBuilder`, merges
it into the corpus, and shows the analyses updating — while the
Table 1 reproduction itself stays pinned to the paper's 30 rows.

Run:
    python examples/extend_corpus.py
"""

from repro import table1_corpus
from repro.analysis import section5_statistics, verify_section5
from repro.corpus import (
    Category,
    CorpusBuilder,
    DataOrigin,
    extended_corpus,
)
from repro.tables import bar_chart, render_table1


def code_new_study():
    """Code the new paper cell by cell, with the same validation the
    transcribed Table 1 rows get."""
    return (
        CorpusBuilder(
            id="ransomware-chats-2018",
            category=Category.LEAKED_DATABASES,
            source_label="Ransomware operator chats",
            reference=47,  # nearest methodological ancestor
            year=2017,
        )
        .legal("computer-misuse", "copyright", "data-privacy")
        .ethical(
            identification_of_stakeholders=True,
            identify_harms=True,
            safeguards=True,
            justice=False,
            public_interest=True,
        )
        .justifications(
            public_data=True,
            fight_malicious_use=True,
            necessary_data=True,
        )
        .ethics_section(True)
        .reb("approved")
        .codes(
            safeguards=("SS", "P", "CS"),
            harms=("SI", "RH", "BC"),
            benefits=("U", "DM", "AT"),
        )
        .describe(
            summary=(
                "A study of leaked internal chat logs of a ransomware "
                "operation, analysing negotiation tactics to support "
                "victim-side guidance."
            ),
            datasets=("Leaked ransomware-operation chat corpus",),
            origin=DataOrigin.UNAUTHORIZED_LEAK,
        )
        .build()
    )


def main() -> None:
    new_entry = code_new_study()
    print(f"coded new case study: {new_entry.id}")
    print(f"  legal issues: {', '.join(new_entry.legal_issues)}")
    print(f"  safeguards:   {','.join(new_entry.codes('safeguards'))}")
    print()

    corpus = extended_corpus(extra=(new_entry,))
    print(
        f"extended corpus: {len(corpus)} entries "
        "(30 from Table 1 + 1 extension)"
    )
    stats = section5_statistics(corpus)
    print("REB approvals now:", stats.reb_approved)
    print()
    print("Safeguard usage across the extended corpus:")
    print(bar_chart(stats.safeguard_counts, width=30))
    print()

    # The extension appears in the rendered table...
    markdown = render_table1(corpus, "markdown")
    row = next(
        line
        for line in markdown.splitlines()
        if "Ransomware operator chats" in line
    )
    print("rendered row:", row[:100], "...")
    print()

    # ...but the paper's reproduction stays pinned to its own table.
    pristine_checks = verify_section5(table1_corpus())
    print(
        "Table 1 reproduction unaffected:",
        all(check.ok for check in pristine_checks),
        f"({len(pristine_checks)} checks)",
    )


if __name__ == "__main__":
    main()
