#!/usr/bin/env python3
"""Scenario: operational handling of a (synthetic) booter dump.

Demonstrates the §5.2 safeguards as working code: a synthetic booter
database is generated, its re-identification risk measured, the
identifiers anonymised (prefix-preserving IPs, pseudonymised emails,
scrubbed ticket text), the raw dump sealed in an encrypted container
with audit-logged access control, a retention clock started, and a
controlled-sharing agreement set up for an external researcher.

Run:
    python examples/safeguard_pipeline.py
"""

import secrets

from repro.anonymization import (
    IPAnonymizer,
    Pseudonymizer,
    TextScrubber,
    uniqueness_rate,
)
from repro.datasets import BooterDatabaseGenerator
from repro.safeguards import (
    AcceptableUsePolicy,
    AccessController,
    Action,
    DataInventory,
    SecureContainer,
    Sensitivity,
    SharingMode,
    SharingRegistry,
    VettingProcess,
)


def main() -> None:
    # 0. Acquire the (synthetic) dump.
    db = BooterDatabaseGenerator(seed=2024).generate(
        name="examplestresser", users=400, days=120
    )
    print(
        f"dump: {len(db.users)} users, {len(db.attacks)} attacks, "
        f"revenue ${db.revenue():.2f}"
    )

    # 1. Measure re-identification risk of the user table.
    users = db.to_records()["users"]
    risk = uniqueness_rate(
        users, ["registration_day", "last_login_ip"], k=2
    )
    print(f"user-table uniqueness (k<2): {risk:.0%} — must anonymise")

    # 2. Anonymise: prefix-preserving IPs, pseudonymised emails,
    #    scrubbed free text.
    key = secrets.token_bytes(32)
    ip_anonymizer = IPAnonymizer(key)
    pseudonymizer = Pseudonymizer(key)
    scrubber = TextScrubber()
    safe_attacks = [
        {
            "attack_id": a.attack_id,
            "user": pseudonymizer.pseudonym(str(a.user_id), "user"),
            "target_ip": ip_anonymizer.anonymize(a.target_ip),
            "method": a.method,
            "duration": a.duration_seconds,
            "day": a.day,
        }
        for a in db.attacks
    ]
    scrub_hits = sum(
        scrubber.scrub(t.text).count() for t in db.tickets
    )
    print(
        f"anonymised {len(safe_attacks)} attack rows; scrubbed "
        f"{scrub_hits} identifiers out of {len(db.tickets)} tickets"
    )

    # Prefix preservation keeps subnet structure for analysis.
    a, b = db.attacks[0].target_ip, db.attacks[1].target_ip
    print(
        "shared-prefix before/after:",
        IPAnonymizer.shared_prefix_length(a, b),
        "/",
        IPAnonymizer.shared_prefix_length(
            ip_anonymizer.anonymize(a), ip_anonymizer.anonymize(b)
        ),
    )

    # 3. Seal the raw dump; control and audit every access.
    container = SecureContainer("a-long-team-passphrase")
    sealed = container.seal(repr(db.to_records()).encode())
    print(f"sealed container: {len(sealed)} bytes")

    controller = AccessController(owner="lead-researcher")
    controller.grant(
        "lead-researcher", "phd-student", "booter-dump",
        {Action.READ, Action.ANALYZE},
    )
    controller.check("phd-student", Action.READ, "booter-dump")
    try:
        controller.check("phd-student", Action.EXPORT, "booter-dump")
    except Exception as denied:
        print(f"export denied as intended: {denied}")
    print(
        f"audit log: {len(controller.audit)} entries, chain valid: "
        f"{controller.audit.verify_chain()}"
    )

    # 4. Retention clock.
    inventory = DataInventory()
    inventory.acquire(
        "booter-dump", "raw booter database",
        Sensitivity.IDENTIFIABLE, today=0,
    )
    inventory.acquire(
        "attack-metrics", "anonymised attack aggregates",
        Sensitivity.DERIVED, today=0,
    )
    print(inventory.report(today=370))

    # 5. Controlled sharing with a vetted researcher.
    registry = SharingRegistry(VettingProcess())
    registry.publish_policy(
        AcceptableUsePolicy(
            id="aup-booter-2024",
            dataset_description="anonymised booter attack aggregates",
            permitted_purposes=(
                "academic research into DDoS-for-hire services",
            ),
            citation_url="https://example.org/aup/booter-2024",
        )
    )
    registry.vetting.apply("dr-external", "Partner University")
    for check in VettingProcess.REQUIRED_CHECKS:
        registry.vetting.record_check("dr-external", check, True)
    agreement = registry.sign(
        "dr-external", "aup-booter-2024",
        SharingMode.PARTIAL_ANONYMISED, today=10,
    )
    print(
        f"sharing agreement active: "
        f"{registry.may_access('dr-external', 'aup-booter-2024', 30)}"
        f" (mode: {agreement.mode.value})"
    )
    print(registry.policy("aup-booter-2024").render_text())


if __name__ == "__main__":
    main()
