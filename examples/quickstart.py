#!/usr/bin/env python3
"""Quickstart: load the corpus, regenerate Table 1, verify §5 claims.

Run:
    python examples/quickstart.py
"""

from repro import table1_corpus
from repro.analysis import section5_statistics, verify_section5
from repro.tables import render_table1


def main() -> None:
    corpus = table1_corpus()

    # 1. The paper's Table 1, regenerated from the coded corpus.
    print(render_table1(corpus, "text"))
    print()

    # 2. The §5 statistics, recomputed (never hard-coded).
    stats = section5_statistics(corpus)
    print("Section 5 statistics")
    print("--------------------")
    print(
        f"{stats.total_entries} entries; {stats.total_papers} papers; "
        f"{stats.ethics_sections} with explicit ethics sections"
    )
    print(
        f"REB: {stats.reb_approved} approved, {stats.reb_exempt} "
        f"exempt, {stats.reb_not_mentioned} not mentioned"
    )
    print(f"Safeguard usage: {stats.safeguard_counts}")
    print(f"Harm mentions:   {stats.harm_counts}")
    print(f"Benefit mentions:{stats.benefit_counts}")
    print()

    # 3. Every claim the paper makes about its own table must verify.
    print("Claim verification")
    print("------------------")
    checks = verify_section5(corpus)
    for check in checks:
        print(check.describe())
    assert all(check.ok for check in checks)
    print(f"\nAll {len(checks)} claims reproduce exactly.")


if __name__ == "__main__":
    main()
