#!/usr/bin/env python3
"""Scenario: reproduce the password-dump research family (§4.2).

Generates synthetic dumps and runs the actual analyses of the
surveyed papers: Bonneau's α-guesswork [13], Weir-style PCFG and
OMEN-style Markov cracking with cracking curves [121, 31, 114], and
the Das et al. cross-site reuse study [24] — demonstrating why this
research needs dump-shaped data (the "Uniqueness" and "Defence
Mechanisms" benefits) without touching a real leak.

Run:
    python examples/password_study.py
"""

from repro.datasets import PasswordDumpGenerator
from repro.metrics import (
    BruteForceGuesser,
    DictionaryGuesser,
    MarkovGuesser,
    PCFGGuesser,
    alpha_guesswork_bits,
    analyze_reuse,
    cracking_curve,
    distribution,
    min_entropy,
    shannon_entropy,
)


def main() -> None:
    train = PasswordDumpGenerator(42).generate(
        site="train-leak", users=3000
    )
    test = PasswordDumpGenerator(7).generate(
        site="target-leak", users=1000
    )

    # 1. Distribution metrics (Bonneau).
    probs = distribution(train.passwords())
    print("Distribution metrics on the training dump")
    print(f"  Shannon entropy H1:  {shannon_entropy(probs):6.2f} bits")
    print(f"  Min-entropy Hinf:    {min_entropy(probs):6.2f} bits")
    for alpha in (0.1, 0.25, 0.5):
        bits = alpha_guesswork_bits(probs, alpha)
        print(f"  alpha-guesswork G~({alpha}): {bits:6.2f} bits")
    print(
        "  -> partial attacks face far less than the Shannon bound, "
        "Bonneau's headline result."
    )
    print()

    # 2. Cracking curves (Weir / Durmuth / Ur).
    print("Cracking curves (fraction of target dump cracked)")
    budget = 4096
    guessers = [
        ("brute-force", BruteForceGuesser()),
        ("dictionary", DictionaryGuesser(train.passwords())),
        ("markov (OMEN-style)", MarkovGuesser(train.passwords())),
        ("pcfg (Weir-style)", PCFGGuesser(train.passwords())),
    ]
    for name, guesser in guessers:
        curve = cracking_curve(guesser, test.passwords(), budget)
        checkpoints = {count: frac for count, frac in curve}
        at_256 = checkpoints.get(256, curve[-1][1])
        final = curve[-1][1]
        print(
            f"  {name:<20} @256 guesses: {at_256:6.1%}   "
            f"@{budget}: {final:6.1%}"
        )
    print()

    # 3. Cross-site reuse (Das et al.).
    site_a, site_b = PasswordDumpGenerator(11).generate_pair(
        users=4000, overlap=0.4
    )
    profile = analyze_reuse(site_a, site_b)
    print("Cross-site password reuse (matched by email)")
    print(f"  shared users:    {profile.shared_users}")
    print(f"  identical reuse: {profile.identical_rate:.1%}")
    print(f"  partial reuse:   {profile.partial_rate:.1%}")
    print(f"  any reuse:       {profile.any_reuse_rate:.1%}")
    print(
        "  -> matches the ~43% direct-reuse rate Das et al. report "
        "for multi-site users."
    )


if __name__ == "__main__":
    main()
