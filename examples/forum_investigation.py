#!/usr/bin/env python3
"""Scenario: analyse a (synthetic) leaked underground forum (§4.3.3).

Runs the analyses of Motoyama/Yip/Portnoff on a synthetic forum dump
— social-network structure, key actors, market concentration — then
shows the privacy flip side: the same data de-anonymises members, so
the outputs are pseudonymised before they leave the enclave.

Run:
    python examples/forum_investigation.py
"""

import secrets

from repro.anonymization import TokenMapper
from repro.datasets import ForumGenerator
from repro.metrics import ForumNetwork


def main() -> None:
    forum = ForumGenerator(seed=99).generate(
        name="w0rm-like-forum", members=300, threads=250, days=365
    )
    print(
        f"forum dump: {len(forum.members)} members, "
        f"{len(forum.threads)} threads, {len(forum.posts)} posts, "
        f"{len(forum.messages)} private messages, "
        f"{len(forum.trades)} trades"
    )
    print(
        f"illicit-board share of threads: {forum.illicit_share():.0%} "
        "(forums mix criminal and benign topics, §4.3.3)"
    )
    print()

    network = ForumNetwork(forum)
    print("Network structure:", network.summary().describe())
    print(f"reciprocity: {network.reciprocity():.2f}")
    print()

    # Key-actor identification — with pseudonyms, never real handles.
    mapper = TokenMapper(prefix="member")
    by_id = {m.member_id: m for m in forum.members}
    print("Key actors (betweenness centrality):")
    for member_id, score in network.key_actors(5):
        handle = by_id[member_id].username
        print(f"  {mapper.token(handle):<10} score {score:.4f}")
    print(
        "  (real handles stay in escrow: "
        f"{len(mapper)} pseudonyms issued)"
    )
    print()

    print("Market analysis:")
    print(f"  trades by product: {forum.trades_by_product()}")
    print(
        f"  seller concentration (Gini): "
        f"{network.seller_concentration():.2f}"
    )
    print()

    print(
        "Ethics note: the members are identifiable from this dump "
        "(usernames, emails, private messages). The §5.3 harms SI "
        "and DA apply; our outputs therefore contain only pseudonyms "
        "and aggregates, and the raw dump is never redistributed."
    )


if __name__ == "__main__":
    main()
