#!/usr/bin/env python3
"""Scenario: the two ways to run a breach-data service (§4.2).

The paper contrasts leakedsource.com (sold access to leaked
credentials; shut down, operators arrested) with haveibeenpwned.com
(never exposes passwords, verifies control of an address before
revealing anything, notifies victims of future breaches). This
example runs both models over the same synthetic breach and shows the
behavioural difference query by query — including the k-anonymity
range protocol that lets users check passwords without revealing
them.

Run:
    python examples/breach_notification.py
"""

import hashlib

from repro.datasets import PasswordDumpGenerator
from repro.errors import SafeguardError
from repro.safeguards import (
    AccessSaleService,
    BreachNotificationService,
    BreachRecord,
    password_range_query,
)


def main() -> None:
    dump = PasswordDumpGenerator(2016).generate(
        site="examplesite", users=500
    )
    breach = [
        BreachRecord(
            breach_name="examplesite-2016",
            email=record.email,
            password=record.password,
        )
        for record in dump.records
    ]
    victim = breach[0]
    print(
        f"breach: {len(breach)} accounts from "
        f"{breach[0].breach_name}"
    )
    print()

    # --- the unethical model -------------------------------------
    sale = AccessSaleService()
    sale.ingest(breach)
    bought = sale.lookup(victim.email, payment=4.99)
    print("AccessSaleService (the leakedsource model):")
    print(
        f"  stranger pays $4.99 and gets {victim.email}'s password "
        f"{bought[0].password!r} — no questions asked"
    )
    print(f"  service revenue so far: ${sale.revenue:.2f}")
    print()

    # --- the ethical model -----------------------------------------
    ethical = BreachNotificationService()
    ethical.ingest(breach)
    print("BreachNotificationService (the haveibeenpwned model):")
    try:
        ethical.breaches_for(victim.email)
    except SafeguardError as refusal:
        print(f"  same query refused: {refusal}")

    # The actual owner verifies control and learns the truth.
    token = ethical.request_verification(victim.email)
    ethical.confirm_verification(victim.email, token)
    print(
        f"  verified owner sees: breached in "
        f"{ethical.breaches_for(victim.email)}"
    )

    # Anonymous password check via the range protocol.
    digest = hashlib.sha1(
        victim.password.encode()
    ).hexdigest().upper()
    bucket = ethical.password_bucket(digest[:5])
    found = password_range_query(victim.password, bucket)
    print(
        f"  k-anonymity range check: client sends prefix "
        f"{digest[:5]}, gets {len(bucket[digest[:5]])} suffixes, "
        f"learns locally that the password is "
        f"{'breached' if found else 'clean'} — the server never "
        "sees the password"
    )

    # Future breaches trigger notification.
    ethical.ingest(
        [
            BreachRecord(
                breach_name="othersite-2017",
                email=victim.email,
                password="different-password1",
            )
        ]
    )
    print(
        f"  outbound notifications queued: "
        f"{ethical.pending_notifications}"
    )
    print()
    print(
        "Same data, opposite ethics: the first model maximises harm "
        "for profit; the second maximises benefit (victims learn, "
        "defenders measure) while exposing nothing."
    )


if __name__ == "__main__":
    main()
