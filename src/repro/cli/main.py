"""Command-line interface: ``python -m repro`` / ``repro-ethics``.

The CLI is a **thin adapter** over the :mod:`repro.ops` service
kernel: the argument parser is *generated* from each registered
operation's declarative :class:`~repro.ops.Arg` spec, dispatch goes
through :func:`repro.ops.execute`, stdout is exactly the operation
response's text, and every domain error maps through the kernel's
single error table to a clean ``error:`` line on stderr — no
subcommand can leak a raw traceback. Staticcheck rule R7 enforces
the shape: modules under ``cli/`` import subsystems only via
``repro.ops``.

Subcommands (one per registered operation; dotted operation names
such as ``audit.verify`` become nested subcommands):

* ``table1 [--format F]`` — regenerate Table 1,
* ``stats`` — the §5 statistics,
* ``verify`` — run every reproduction check plus the static policy
  lint (exit 1 on failure),
* ``lint [--format F] [--select R1,R2]`` — the staticcheck policy
  linter over the repro source itself,
* ``report`` — the full paper-vs-measured Markdown report,
* ``report render`` — the deterministic self-contained static HTML
  report (byte-identical across runs and batch worker counts),
* ``table latex [--style booktabs|plain]`` — appendix-ready LaTeX
  rendering of Table 1,
* ``codebook merge [--strategy S] [--other JSON]`` — multi-coder
  codebook merge with explicit conflict records,
* ``agreement fuzzy [--threshold T]`` — exact vs fuzzy-match
  inter-rater reliability,
* ``simulate KIND [--seed N]`` — synthesise a dataset and print a
  summary,
* ``pipeline [--dataset D] [--workers N] [--chunk-size M]
  [--audit-log PATH] [--profile PATH]`` — stream a synthetic dump
  through the safeguard pipeline and print per-stage JSON metrics,
* ``audit {verify,tail,report}`` — inspect a persisted JSONL audit
  log,
* ``obs {export,profile,top}`` — telemetry egress: exporters,
  sampling profiler, profile views,
* ``obs health [--workers N] [--probe]`` — warm-pool liveness and
  readiness (workers live, rebuilds, cache counters, optional probe
  round-trip; a failed probe exits 1),
* ``obs slo SPEC LOG [--window N]`` — judge a declarative JSON SLO
  spec against an audit log's request brackets; exits 1 on breach
  so CI can gate on it,
* ``obs incident BUNDLE [--tail N]`` — verify a flight-recorder
  incident bundle's hash chain and summarise what it captured,
* ``batch FILE [--workers N] [--audit-log PATH] [--no-cache]
  [--flight-dir PATH]`` — stream a JSONL file of operation requests
  through the kernel's worker pool; responses are byte-identical
  for any worker count, pure operations are served from the
  content-addressed result cache, and ``--flight-dir`` dumps hash-
  chained incident bundles on degraded or failed runs,
* ``simulate-reb``, ``evidence``, ``bibliography``, ``similarity``,
  ``legend``, ``intervals`` — see ``--help``.
"""

from __future__ import annotations

import argparse
import sys

from ..ops import (
    Arg,
    Operation,
    ReproError,
    ResultCache,
    RunContext,
    default_registry,
    describe_failure,
    execute,
)

__all__ = ["main", "build_parser"]


def _add_argument(
    parser: argparse.ArgumentParser, arg: Arg
) -> None:
    """Translate one declarative :class:`Arg` into argparse terms."""
    if arg.flag:
        parser.add_argument(
            arg.name, action="store_true", help=arg.help or None
        )
        return
    kwargs: dict = {}
    if arg.kind is not str:
        kwargs["type"] = arg.kind
    if arg.choices:
        kwargs["choices"] = arg.choices
    if arg.help:
        kwargs["help"] = arg.help
    if arg.metavar:
        kwargs["metavar"] = arg.metavar
    if not arg.positional:
        kwargs["default"] = arg.default
    parser.add_argument(arg.name, **kwargs)


def _attach(
    parser: argparse.ArgumentParser, operation: Operation
) -> None:
    """Populate one generated subparser from *operation*'s spec."""
    for arg in operation.args:
        _add_argument(parser, arg)
    parser.set_defaults(_operation=operation.name)


def build_parser() -> argparse.ArgumentParser:
    """Generate the argument parser from the operation registry.

    Flat operation names become subcommands; dotted names
    (``audit.verify``) become nested subcommands under a group
    parser whose help text the registry provides. A flat operation
    and a dotted family may share a name (``report`` and
    ``report.render``): the family's subcommands attach to the flat
    operation's parser as *optional* nested subcommands, the child's
    ``set_defaults`` overriding the parent's operation name when
    one is given. Nothing here is hand-wired per subcommand —
    registering a new operation is enough to surface it on the CLI.
    """
    registry = default_registry()
    parser = argparse.ArgumentParser(
        prog="repro-ethics",
        description=(
            "Reproduction of 'Ethical issues in research using "
            "datasets of illicit origin' (IMC 2017)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    flat: dict[str, argparse.ArgumentParser] = {}
    groups: dict[str, argparse._SubParsersAction] = {}
    # Pass 1: flat operations, so a dotted family landing on the same
    # name (pass 2) can nest inside the existing parser.
    for operation in registry:
        if "." in operation.name:
            continue
        child = sub.add_parser(operation.name, help=operation.help)
        _attach(child, operation)
        flat[operation.name] = child
    # Pass 2: dotted families.
    for operation in registry:
        if "." not in operation.name:
            continue
        group, leaf = operation.name.split(".", 1)
        if group not in groups:
            if group in flat:
                # Collision with a flat operation: nest underneath
                # it, optional so the bare command keeps working.
                groups[group] = flat[group].add_subparsers(
                    dest=f"{group}_command", required=False
                )
            else:
                group_parser = sub.add_parser(
                    group, help=registry.group_help(group)
                )
                groups[group] = group_parser.add_subparsers(
                    dest=f"{group}_command", required=True
                )
        child = groups[group].add_parser(leaf, help=operation.help)
        _attach(child, operation)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit status.

    Every :class:`~repro.errors.ReproError` subclass — safeguard,
    legal, assessment, REB, corpus, operation-layer — surfaces as
    one ``error:`` line on stderr with the exit code the kernel's
    failure table assigns, never a traceback.
    """
    args = build_parser().parse_args(argv)
    registry = default_registry()
    operation = registry.get(args._operation)
    values = {
        arg.dest: getattr(args, arg.dest) for arg in operation.args
    }
    context = RunContext(cache=ResultCache())
    try:
        response = execute(operation, values, context=context)
    except ReproError as exc:
        message, code = describe_failure(exc)
        print(f"error: {message}", file=sys.stderr)
        return code
    if response.text:
        sys.stdout.write(response.text)
    return response.exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
