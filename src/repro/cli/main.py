"""Command-line interface: ``python -m repro`` / ``repro-ethics``.

Subcommands:

* ``table1 [--format F]`` — regenerate Table 1,
* ``stats`` — the §5 statistics,
* ``verify`` — run every reproduction check plus the static policy
  lint (exit 1 on failure),
* ``lint [--format F] [--select R1,R2]`` — the staticcheck policy
  linter over the repro source itself,
* ``report`` — the full paper-vs-measured Markdown report,
* ``simulate KIND [--seed N]`` — synthesise a dataset and print a
  summary,
* ``pipeline [--dataset D] [--workers N] [--chunk-size M]
  [--audit-log PATH] [--profile PATH]`` — stream a synthetic dump
  through the safeguard pipeline (generate → anonymize →
  pseudonymize → scrub → seal) and print per-stage JSON metrics;
  with ``--audit-log`` the run records a tamper-evident trail
  (identical chain content for any ``--workers`` value — workers
  ship telemetry shards back for deterministic replay) and the
  output gains an ``observability`` section (audit anchors, spans,
  metrics snapshot); ``--profile`` runs the sampling profiler and
  writes collapsed stacks,
* ``audit {verify,tail,report}`` — inspect a persisted JSONL audit
  log: walk the hash chain and localize corruption, print the last
  events, or summarise by category with the out-of-band anchors,
* ``obs {export,profile,top}`` — telemetry egress: export an audit
  log's derived metrics as Prometheus text or OTLP-style JSON
  (byte-identical across same-seed runs), profile the demo pipeline
  into collapsed flamegraph stacks, or print the hottest frames of
  a saved profile,
* ``legend`` — the codebook legend,
* ``bibliography [--search TEXT]`` — list/search references.
"""

from __future__ import annotations

import argparse
import sys

from .. import table1_corpus

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser with every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro-ethics",
        description=(
            "Reproduction of 'Ethical issues in research using "
            "datasets of illicit origin' (IMC 2017)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    table1 = sub.add_parser("table1", help="regenerate Table 1")
    table1.add_argument(
        "--format",
        choices=("text", "markdown", "latex", "csv", "html"),
        default="text",
    )

    sub.add_parser("stats", help="print the §5 statistics")
    sub.add_parser(
        "verify",
        help=(
            "run every reproduction check and the static policy lint"
        ),
    )
    sub.add_parser("report", help="paper-vs-measured Markdown report")
    sub.add_parser("legend", help="print the codebook legend")

    lint = sub.add_parser(
        "lint",
        help=(
            "statically check the repro source against the paper's "
            "safeguards (R1-R6)"
        ),
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text"
    )
    lint.add_argument(
        "--select",
        default="",
        help="comma-separated rule ids to run (e.g. R1,R2)",
    )
    lint.add_argument(
        "--path",
        default=None,
        help=(
            "lint this directory tree instead of the installed repro "
            "package (rule scoping follows paths relative to it; the "
            "suppression baseline applies only to the package)"
        ),
    )

    simulate = sub.add_parser(
        "simulate", help="generate a synthetic dataset summary"
    )
    simulate.add_argument(
        "kind",
        choices=(
            "passwords", "booter", "forum", "offshore", "classified",
            "scan",
        ),
    )
    simulate.add_argument("--seed", type=int, default=0)

    pipeline = sub.add_parser(
        "pipeline",
        help=(
            "stream a synthetic dump through the safeguard pipeline "
            "and print per-stage JSON metrics"
        ),
    )
    pipeline.add_argument(
        "--dataset", choices=("booter", "passwords"), default="booter"
    )
    pipeline.add_argument("--users", type=int, default=300)
    pipeline.add_argument("--days", type=int, default=90)
    pipeline.add_argument("--seed", type=int, default=0)
    pipeline.add_argument("--workers", type=int, default=1)
    pipeline.add_argument("--chunk-size", type=int, default=1024)
    pipeline.add_argument(
        "--stages",
        default="anonymize,pseudonymize,scrub,seal",
        help=(
            "comma-separated subset of "
            "anonymize,pseudonymize,scrub,seal"
        ),
    )
    pipeline.add_argument(
        "--audit-log",
        default=None,
        metavar="PATH",
        help=(
            "record a tamper-evident audit trail to this JSONL file "
            "and add an observability section to the JSON output"
        ),
    )
    pipeline.add_argument(
        "--profile",
        default=None,
        metavar="PATH",
        help=(
            "sample the run with the profiler and write collapsed "
            "flamegraph stacks to this file (view with 'obs top')"
        ),
    )

    bibliography = sub.add_parser(
        "bibliography", help="list or search the references"
    )
    bibliography.add_argument("--search", default="")

    similarity = sub.add_parser(
        "similarity", help="paper-similarity structure of Table 1"
    )
    similarity.add_argument(
        "--threshold", type=float, default=0.6
    )

    simulate_reb = sub.add_parser(
        "simulate-reb",
        help="queue simulation of a year of REB submissions",
    )
    simulate_reb.add_argument(
        "--board", choices=("ictr", "medical"), default="ictr"
    )
    simulate_reb.add_argument(
        "--policy",
        choices=("risk-based", "human-subjects"),
        default="risk-based",
    )
    simulate_reb.add_argument("--seed", type=int, default=0)
    simulate_reb.add_argument(
        "--audit-log",
        default=None,
        metavar="PATH",
        help=(
            "record every triage and decision as a tamper-evident "
            "JSONL audit trail"
        ),
    )

    audit = sub.add_parser(
        "audit",
        help="inspect and verify tamper-evident audit logs",
    )
    audit_sub = audit.add_subparsers(
        dest="audit_command", required=True
    )
    audit_verify = audit_sub.add_parser(
        "verify",
        help="walk the hash chain and localize any corruption",
    )
    audit_verify.add_argument("log", help="path to a JSONL audit log")
    audit_verify.add_argument(
        "--expect-length",
        type=int,
        default=None,
        help=(
            "event count recorded out of band; makes tail "
            "truncation detectable"
        ),
    )
    audit_verify.add_argument(
        "--expect-tail",
        default=None,
        metavar="DIGEST",
        help=(
            "tail digest recorded out of band; detects truncation "
            "and whole-log rewrites"
        ),
    )
    audit_tail = audit_sub.add_parser(
        "tail", help="print the last events of an audit log"
    )
    audit_tail.add_argument("log", help="path to a JSONL audit log")
    audit_tail.add_argument("--count", type=int, default=10)
    audit_report = audit_sub.add_parser(
        "report",
        help=(
            "event counts by category/action plus the chain anchors "
            "(length and tail digest) to record out of band"
        ),
    )
    audit_report.add_argument("log", help="path to a JSONL audit log")
    audit_report.add_argument("--json", action="store_true")

    obs = sub.add_parser(
        "obs",
        help=(
            "telemetry egress: metric exporters, sampling profiler "
            "and profile views"
        ),
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    obs_export = obs_sub.add_parser(
        "export",
        help=(
            "derive metrics from an audit log and render them as "
            "Prometheus text or OTLP-style JSON (clock-free, so "
            "same-seed runs export identical bytes)"
        ),
    )
    obs_export.add_argument("log", help="path to a JSONL audit log")
    obs_export.add_argument(
        "--format",
        choices=("prometheus", "otlp"),
        default="prometheus",
    )
    obs_profile = obs_sub.add_parser(
        "profile",
        help=(
            "run the demo safeguard pipeline under the sampling "
            "profiler and print a JSON summary"
        ),
    )
    obs_profile.add_argument(
        "--dataset", choices=("booter", "passwords"), default="booter"
    )
    obs_profile.add_argument("--users", type=int, default=300)
    obs_profile.add_argument("--days", type=int, default=30)
    obs_profile.add_argument("--seed", type=int, default=0)
    obs_profile.add_argument(
        "--interval",
        type=float,
        default=0.002,
        help="seconds between stack samples",
    )
    obs_profile.add_argument(
        "--call-counts",
        action="store_true",
        help=(
            "also count function entries exactly via a "
            "sys.setprofile hook (slower, precise)"
        ),
    )
    obs_profile.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write collapsed flamegraph stacks to this file",
    )
    obs_top = obs_sub.add_parser(
        "top",
        help="hottest frames of a saved collapsed-stack profile",
    )
    obs_top.add_argument(
        "profile", help="path to a collapsed-stack profile file"
    )
    obs_top.add_argument("--limit", type=int, default=15)

    evidence = sub.add_parser(
        "evidence",
        help="show the §4 quotes grounding one Table 1 coding",
    )
    evidence.add_argument("entry_id")

    sub.add_parser(
        "intervals",
        # argparse %-interpolates help strings, so the literal
        # percent sign must be doubled or --help raises TypeError.
        help="Wilson 95%% intervals for the §5 proportions",
    )
    return parser


def _cmd_table1(args) -> int:
    from ..tables import render_table1

    print(render_table1(table1_corpus(), args.format))
    return 0


def _cmd_stats(_args) -> int:
    from ..analysis import section5_statistics

    stats = section5_statistics(table1_corpus())
    print(f"entries: {stats.total_entries} (papers: {stats.total_papers})")
    print(
        f"REB: {stats.reb_approved} approved, {stats.reb_exempt} "
        f"exempt, {stats.reb_not_mentioned} not mentioned, "
        f"{stats.reb_not_applicable} n/a"
    )
    print(f"ethics sections: {stats.ethics_sections}/{stats.total_papers}")
    print(f"safeguards: {stats.safeguard_counts}")
    print(f"harms: {stats.harm_counts}")
    print(f"benefits: {stats.benefit_counts}")
    print(f"justifications: {stats.justification_counts}")
    return 0


def _cmd_verify(_args) -> int:
    from ..reporting import run_reproduction
    from ..staticcheck import lint_repo, summarize, unsuppressed

    outcomes = run_reproduction(table1_corpus())
    failed = 0
    for outcome in outcomes:
        mark = "OK " if outcome.passed else "FAIL"
        print(
            f"[{mark}] {outcome.experiment_id}: "
            f"{outcome.description} — {outcome.measured}"
        )
        if not outcome.passed:
            failed += 1
    findings = lint_repo()
    failing = unsuppressed(findings)
    mark = "FAIL" if failing else "OK "
    print(
        f"[{mark}] SC: static policy lint (R1-R6 + baseline) — "
        f"{summarize(findings)}"
    )
    for finding in failing:
        print(f"       {finding.describe()}")
    if failing:
        failed += 1
    total = len(outcomes) + 1
    print(f"{total - failed}/{total} checks passed")
    return 1 if failed else 0


def _cmd_lint(args) -> int:
    from ..staticcheck import (
        LintEngine,
        default_registry,
        lint_repo,
        render_json,
        render_text,
        unsuppressed,
    )

    select = tuple(
        part.strip() for part in args.select.split(",") if part.strip()
    )
    if args.path is not None:
        registry = default_registry()
        if select:
            registry = registry.select(select)
        findings = LintEngine(registry).lint_package(args.path)
    else:
        findings = lint_repo(select)
    if args.format == "json":
        output = render_json(findings)
        if output:
            print(output)
    else:
        print(render_text(findings))
    return 1 if unsuppressed(findings) else 0


def _cmd_report(_args) -> int:
    from ..reporting import render_report

    print(render_report(table1_corpus()))
    return 0


def _cmd_legend(_args) -> int:
    from ..tables import build_table1_layout, render_legend_text

    print(render_legend_text(build_table1_layout(table1_corpus())))
    return 0


def _cmd_simulate(args) -> int:
    seed = args.seed
    if args.kind == "passwords":
        from ..datasets import PasswordDumpGenerator

        dump = PasswordDumpGenerator(seed).generate(users=1000)
        top = dump.frequency().most_common(5)
        print(f"password dump: {len(dump)} accounts; top: {top}")
    elif args.kind == "booter":
        from ..datasets import BooterDatabaseGenerator

        db = BooterDatabaseGenerator(seed).generate()
        print(
            f"booter db: {len(db.users)} users, {len(db.attacks)} "
            f"attacks on {db.distinct_targets()} targets, revenue "
            f"${db.revenue():.2f}"
        )
    elif args.kind == "forum":
        from ..datasets import ForumGenerator

        forum = ForumGenerator(seed).generate()
        print(
            f"forum: {len(forum.members)} members, "
            f"{len(forum.posts)} posts, "
            f"{forum.illicit_share():.0%} illicit threads"
        )
    elif args.kind == "offshore":
        from ..datasets import OffshoreLeakGenerator

        leak = OffshoreLeakGenerator(seed).generate()
        print(
            f"offshore leak: {len(leak.entities)} entities, "
            f"{len(leak.officers)} officers, "
            f"{len(leak.public_figures())} public figures"
        )
    elif args.kind == "classified":
        from ..datasets import ClassifiedCorpusGenerator

        corpus = ClassifiedCorpusGenerator(seed).generate()
        print(
            f"classified corpus: {len(corpus)} cables, "
            f"{corpus.classified_fraction():.0%} classified, "
            f"mix {corpus.by_classification()}"
        )
    else:
        from ..datasets import ScanGenerator

        scan = ScanGenerator(seed).generate()
        print(
            f"scan: {len(scan.records)} probes, port-80 open rate "
            f"{scan.open_rate(80):.2f} (artefacts "
            f"{scan.artefact_rate(80):.0%}), "
            f"{len(scan.botnet_sources())} bot sources visible"
        )
    return 0


def _demo_stages_and_source(
    dataset: str,
    seed: int,
    users: int,
    days: int,
    chunk_size: int,
    stage_names: tuple[str, ...],
):
    """The seeded demo workload shared by ``pipeline`` and ``obs``.

    Demo keys are derived from the seed so runs are reproducible; a
    real deployment supplies independent secrets per safeguard.
    """
    import hashlib

    from ..pipeline import default_stages

    seed_tag = f"repro-pipeline-demo\x00{seed}".encode("utf-8")
    stages = default_stages(
        anonymize_key=hashlib.sha256(seed_tag + b"\x00anon").digest(),
        pseudonymize_key=hashlib.sha256(
            seed_tag + b"\x00pseudonym"
        ).digest(),
        seal_passphrase=f"repro-pipeline-demo-{seed}",
        names=stage_names,
    )
    if dataset == "booter":
        from ..datasets import BooterDatabaseGenerator

        source = BooterDatabaseGenerator(seed).iter_records(
            chunk_size=chunk_size, users=users, days=days
        )
    else:
        from ..datasets import PasswordDumpGenerator

        source = PasswordDumpGenerator(seed).iter_records(
            chunk_size=chunk_size, users=users
        )
    return stages, source


def _cmd_pipeline(args) -> int:
    from ..pipeline import SafeguardPipeline

    names = tuple(
        part.strip() for part in args.stages.split(",") if part.strip()
    )
    stages, source = _demo_stages_and_source(
        args.dataset,
        args.seed,
        args.users,
        args.days,
        args.chunk_size,
        names,
    )
    pipeline = SafeguardPipeline(
        stages, workers=args.workers, chunk_size=args.chunk_size
    )
    if args.audit_log is None and args.profile is None:
        print(pipeline.run(source).metrics_json())
        return 0

    import json
    from pathlib import Path

    from ..observability import (
        MetricsRegistry,
        Observer,
        SamplingProfiler,
        Tracer,
        observed,
    )

    if args.audit_log is not None:
        observer = Observer.recording(args.audit_log)
    else:
        # --profile without --audit-log still needs a live observer
        # (the profiler obeys the master switch and reads the active
        # span from the tracer); record in memory, chain nothing.
        registry = MetricsRegistry()
        observer = Observer(metrics=registry, tracer=Tracer(registry))
    profiler = (
        SamplingProfiler() if args.profile is not None else None
    )
    with observed(observer):
        if profiler is not None:
            with profiler:
                result = pipeline.run(source)
        else:
            result = pipeline.run(source)
    output = dict(result.metrics)
    if args.audit_log is not None:
        observer.trail.close()
        verification = observer.trail.verify()
        output["observability"] = {
            "audit_log": str(observer.trail.path),
            "audit_events": len(observer.trail),
            "tail_digest": observer.trail.tail_digest,
            "chain_intact": verification.ok,
            "spans": observer.tracer.summary(),
            "metrics": observer.metrics.snapshot(),
        }
    if profiler is not None:
        Path(args.profile).write_text(
            profiler.collapsed(), encoding="utf-8"
        )
        output["profile"] = {
            "path": args.profile,
            "samples": profiler.sample_count,
            "spans": profiler.summary()["spans"],
        }
    print(json.dumps(output, indent=2, sort_keys=True))
    return 0


def _cmd_obs(args) -> int:
    import json
    from pathlib import Path

    if args.obs_command == "export":
        from ..observability import (
            load_events,
            registry_from_events,
            render_otlp,
            render_prometheus,
        )

        registry = registry_from_events(load_events(args.log))
        if args.format == "prometheus":
            sys.stdout.write(render_prometheus(registry.snapshot()))
        else:
            print(render_otlp(registry.snapshot()))
        return 0

    if args.obs_command == "top":
        from ..errors import SafeguardError
        from ..observability import top_collapsed

        try:
            text = Path(args.profile).read_text(encoding="utf-8")
        except OSError as exc:
            raise SafeguardError(
                f"cannot read profile {args.profile!r}: {exc}"
            ) from exc
        rows = top_collapsed(text, args.limit)
        if not rows:
            print("no samples")
            return 0
        width = max(len(str(count)) for _, count in rows)
        for frame, count in rows:
            print(f"{count:>{width}} {frame}")
        return 0

    from ..observability import (
        MetricsRegistry,
        Observer,
        SamplingProfiler,
        Tracer,
        observed,
    )
    from ..pipeline import STAGE_NAMES, SafeguardPipeline

    stages, source = _demo_stages_and_source(
        args.dataset, args.seed, args.users, args.days, 1024, STAGE_NAMES
    )
    registry = MetricsRegistry()
    observer = Observer(metrics=registry, tracer=Tracer(registry))
    profiler = SamplingProfiler(
        args.interval, call_counts=args.call_counts
    )
    with observed(observer), profiler:
        SafeguardPipeline(stages).run(source)
    summary = profiler.summary()
    if args.out is not None:
        Path(args.out).write_text(
            profiler.collapsed(), encoding="utf-8"
        )
        summary["out"] = args.out
    print(json.dumps(summary, indent=2, sort_keys=True))
    return 0


def _cmd_bibliography(args) -> int:
    from ..bibliography import paper_bibliography

    bibliography = paper_bibliography()
    references = (
        bibliography.search(args.search)
        if args.search
        else tuple(bibliography)
    )
    for reference in references:
        print(reference.format())
    print(f"{len(references)} references")
    return 0


def _cmd_similarity(args) -> int:
    from ..analysis import SimilarityAnalysis

    analysis = SimilarityAnalysis(table1_corpus())
    clusters = analysis.clusters(threshold=args.threshold)
    print(
        f"{len(clusters)} clusters at threshold {args.threshold}"
    )
    for index, cluster in enumerate(clusters, start=1):
        members = ", ".join(sorted(cluster))
        print(f"  cluster {index} ({len(cluster)}): {members}")
    cohesion = analysis.category_cohesion()
    print("category cohesion:")
    for category, value in cohesion.items():
        print(f"  {category}: {value:.2f}")
    print(f"category separation: {analysis.separation():.3f}")
    return 0


def _cmd_simulate_reb(args) -> int:
    from ..reb import (
        TriggerPolicy,
        ictr_board,
        medical_style_board,
        simulate_reb_year,
    )

    board = (
        ictr_board() if args.board == "ictr" else medical_style_board()
    )
    policy = (
        TriggerPolicy.RISK_BASED
        if args.policy == "risk-based"
        else TriggerPolicy.HUMAN_SUBJECTS
    )
    if args.audit_log is None:
        result = simulate_reb_year(board, policy, seed=args.seed)
        print(f"board: {board.name}; policy: {policy.value}")
        print(result.describe())
        return 0

    from ..observability import Observer, observed

    observer = Observer.recording(args.audit_log)
    with observed(observer):
        result = simulate_reb_year(board, policy, seed=args.seed)
    observer.trail.close()
    print(f"board: {board.name}; policy: {policy.value}")
    print(result.describe())
    print(
        f"audit: {len(observer.trail)} events -> "
        f"{observer.trail.path} ({observer.trail.verify().describe()})"
    )
    return 0


def _cmd_evidence(args) -> int:
    from ..corpus import evidence_for

    corpus = table1_corpus()
    entry = corpus[args.entry_id]
    evidence = evidence_for(args.entry_id)
    print(f"{entry.source_label} [{entry.reference}] — §{evidence.section}")
    print(f"summary: {entry.summary}")
    print("grounding quotes:")
    for quote in evidence.quotes:
        print(f'  "{quote}"')
    return 0


def _cmd_audit(args) -> int:
    import json

    from ..errors import SafeguardError
    from ..observability import load_events, verify_events, verify_jsonl

    try:
        if args.audit_command == "verify":
            verification = verify_jsonl(
                args.log,
                expected_length=args.expect_length,
                expected_tail_digest=args.expect_tail,
            )
            print(verification.describe())
            return 0 if verification.ok else 1
        events = load_events(args.log)
    except SafeguardError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.audit_command == "tail":
        for event in events[-args.count:]:
            subject = f" {event.subject}" if event.subject else ""
            detail = json.dumps(event.detail, sort_keys=True)
            print(
                f"#{event.sequence} {event.category}/{event.action}"
                f"{subject} {detail}"
            )
        return 0
    verification = verify_events(events)
    actions: dict[str, int] = {}
    categories: dict[str, int] = {}
    for event in events:
        categories[event.category] = (
            categories.get(event.category, 0) + 1
        )
        key = f"{event.category}/{event.action}"
        actions[key] = actions.get(key, 0) + 1
    report = {
        "events": len(events),
        "intact": verification.ok,
        "tail_digest": verification.tail_digest,
        "categories": dict(sorted(categories.items())),
        "actions": dict(sorted(actions.items())),
    }
    if not verification.ok:
        report["error_index"] = verification.error_index
        report["reason"] = verification.reason
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0 if verification.ok else 1
    print(f"events: {report['events']}")
    print(f"intact: {report['intact']}")
    print(f"tail digest: {report['tail_digest']}")
    for name, count in report["actions"].items():
        print(f"  {name}: {count}")
    if not verification.ok:
        print(
            f"first corrupt record: {verification.error_index} "
            f"({verification.reason})"
        )
    return 0 if verification.ok else 1


def _cmd_intervals(_args) -> int:
    from ..analysis import required_sample_size, section5_intervals

    for estimate in section5_intervals(table1_corpus()):
        print(estimate.describe())
    needed = required_sample_size(margin=0.05)
    print(
        f"papers needed for a ±5% margin: {needed} "
        "(the 'large representative sample' of §5.5)"
    )
    return 0


_COMMANDS = {
    "table1": _cmd_table1,
    "stats": _cmd_stats,
    "verify": _cmd_verify,
    "report": _cmd_report,
    "lint": _cmd_lint,
    "legend": _cmd_legend,
    "simulate": _cmd_simulate,
    "pipeline": _cmd_pipeline,
    "bibliography": _cmd_bibliography,
    "similarity": _cmd_similarity,
    "simulate-reb": _cmd_simulate_reb,
    "audit": _cmd_audit,
    "obs": _cmd_obs,
    "evidence": _cmd_evidence,
    "intervals": _cmd_intervals,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit status.

    :class:`~repro.errors.SafeguardError` (including pipeline
    :class:`~repro.pipeline.StageFailure`) surfaces as one ``error:``
    line on stderr and exit status 1, not a traceback.
    """
    from ..errors import SafeguardError

    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except SafeguardError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
