"""Command-line interface package."""

from .main import build_parser, main

__all__ = ["build_parser", "main"]
