"""Small shared helpers used across the repro library.

These are internal utilities (note the module name); the public API is
re-exported from :mod:`repro` and the subpackages.
"""

from __future__ import annotations

import re
import unicodedata
from collections.abc import Iterable, Mapping, Sequence
from typing import TypeVar

T = TypeVar("T")

_SLUG_RE = re.compile(r"[^a-z0-9]+")


def slugify(text: str) -> str:
    """Return a lowercase, hyphen-separated identifier derived from *text*.

    >>> slugify("Computer Misuse")
    'computer-misuse'
    >>> slugify("  Anthropology & Transparency ")
    'anthropology-transparency'
    """
    normalized = unicodedata.normalize("NFKD", text)
    ascii_text = normalized.encode("ascii", "ignore").decode("ascii")
    slug = _SLUG_RE.sub("-", ascii_text.lower()).strip("-")
    return slug


def ensure_unique(items: Iterable[T], what: str = "item") -> list[T]:
    """Return *items* as a list, raising ``ValueError`` on duplicates."""
    seen: set[T] = set()
    result: list[T] = []
    for item in items:
        if item in seen:
            raise ValueError(f"duplicate {what}: {item!r}")
        seen.add(item)
        result.append(item)
    return result


def freeze_mapping(mapping: Mapping[str, T]) -> dict[str, T]:
    """Return a defensive shallow copy of *mapping* as a plain dict."""
    return dict(mapping)


def wrap_text(text: str, width: int = 72, indent: str = "") -> list[str]:
    """Greedy word-wrap of *text* into lines at most *width* wide.

    ``indent`` is prepended to every line and counted against the width.
    Words longer than the available width are emitted on their own line
    rather than split.
    """
    if width <= len(indent):
        raise ValueError("width must exceed indent length")
    budget = width - len(indent)
    lines: list[str] = []
    current: list[str] = []
    current_len = 0
    for word in text.split():
        extra = len(word) if not current else len(word) + 1
        if current and current_len + extra > budget:
            lines.append(indent + " ".join(current))
            current = [word]
            current_len = len(word)
        else:
            current.append(word)
            current_len += extra
    if current:
        lines.append(indent + " ".join(current))
    if not lines:
        lines.append(indent.rstrip() if indent else "")
    return lines


def percent(part: int, whole: int) -> float:
    """Return ``part / whole`` as a percentage, 0.0 when *whole* is zero."""
    if whole == 0:
        return 0.0
    return 100.0 * part / whole


def stable_sorted(items: Iterable[T], key=None) -> list[T]:
    """Sorted list with ``None`` keys ordered last (stable otherwise)."""
    items = list(items)
    if key is None:
        return sorted(items)

    def _key(item: T):
        value = key(item)
        return (value is None, value)

    return sorted(items, key=_key)


def oxford_join(parts: Sequence[str], conjunction: str = "and") -> str:
    """Join *parts* into an English list: ``a, b, and c``.

    >>> oxford_join(["privacy"])
    'privacy'
    >>> oxford_join(["privacy", "storage"])
    'privacy and storage'
    >>> oxford_join(["a", "b", "c"], conjunction="or")
    'a, b, or c'
    """
    parts = [p for p in parts if p]
    if not parts:
        return ""
    if len(parts) == 1:
        return parts[0]
    if len(parts) == 2:
        return f"{parts[0]} {conjunction} {parts[1]}"
    return ", ".join(parts[:-1]) + f", {conjunction} {parts[-1]}"


def clamp(value: float, low: float, high: float) -> float:
    """Clamp *value* into the closed interval [low, high]."""
    if low > high:
        raise ValueError("low must not exceed high")
    return max(low, min(high, value))
