"""Per-entry evidence: the §4 sentences that ground each coding.

Qualitative coding should be auditable back to the source text. This
module records, for every Table 1 row, verbatim quotes from the
paper's §4 case-study discussion that support the coding, plus the
subsection they come from. :func:`evidence_for` is used by reports
and tests; :func:`verify_evidence_coverage` asserts every corpus
entry has at least one grounding quote.
"""

from __future__ import annotations

import dataclasses

from ..errors import CorpusError
from .model import Corpus

__all__ = ["Evidence", "evidence_for", "verify_evidence_coverage",
           "EVIDENCE"]


@dataclasses.dataclass(frozen=True)
class Evidence:
    """Grounding for one entry's coding."""

    entry_id: str
    section: str
    quotes: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.quotes:
            raise CorpusError(
                f"evidence for {self.entry_id!r} needs quotes"
            )


EVIDENCE: dict[str, Evidence] = {
    entry.entry_id: entry
    for entry in (
        Evidence(
            entry_id="att-ipad",
            section="4.1.2",
            quotes=(
                "They used this to obtain the email addresses for "
                "114 000 iPad users and passed this information to "
                "Gawker as well as making the vulnerability known to "
                "third parties.",
                "the research was clearly both unethical and illegal",
                "given that they did not contact AT&T, they failed "
                "to implement Safeguards",
            ),
        ),
        Evidence(
            entry_id="pushdo-cutwail",
            section="4.1.3",
            quotes=(
                "Stone-Gross et al. identified and obtained access "
                "to some of the C&C servers for the Pushdo/Cutwail "
                "botnet (used mainly for spam delivery) by "
                "contacting the hosting providers (i.e. the authors "
                "first performed Identification of stakeholders).",
                "They obtained sensitive data such as the statistics "
                "of infection, target email addresses and the source "
                "code of the malware.",
            ),
        ),
        Evidence(
            entry_id="exploit-kits",
            section="4.1.3",
            quotes=(
                "Kotov and Masacci collected source code of exploit "
                "kits from a public repository as well as "
                "underground forums where code was leaked or "
                "released.",
                "as the authors state, the fact that the code was "
                "leaked biased their analysis",
            ),
        ),
        Evidence(
            entry_id="carna-caida",
            section="4.1.1",
            quotes=(
                "the means they used to do this was a botnet of "
                "420000 devices with default passwords",
                "They noted ethical concerns without giving details, "
                "and referred the reader to the Menlo report.",
                "To prevent harm, CAIDA only looked at data "
                "targeting their own darknet.",
            ),
        ),
        Evidence(
            entry_id="carna-telescope",
            section="4.1.1",
            quotes=(
                "they then realised that they knew the IP addresses "
                "of the botnet devices as they were the sources of "
                "the probes of their network telescope",
                "The Safeguards they used were that they kept these "
                "IP addresses confidential pending finding an "
                "ethically acceptable and practical way of dealing "
                "with the situation.",
            ),
        ),
        Evidence(
            entry_id="carna-census-note",
            section="4.1.1",
            quotes=(
                "the authors concluded that given that Carna scan "
                "made no technical contributions, it had been "
                "unethical to conduct",
                "While they did not provide an opinion on whether it "
                "is ethical to use these data for research, they did "
                "use it for these purposes.",
            ),
        ),
        Evidence(
            entry_id="carna-menlo",
            section="4.1.1",
            quotes=(
                "Dittrich, Carpenter and Karir use the Menlo report "
                "to present a thorough analysis of the ethics of the "
                "Carna botnet, from which they conclude that there "
                "is a 'lack of a common understanding of ethics in "
                "the computer security field'.",
            ),
        ),
        Evidence(
            entry_id="malware-metrics",
            section="4.1.3",
            quotes=(
                "Calleja et al. analysed 151 malware samples dating "
                "from 1975 to 2015.",
                "The authors do not share the collected source code, "
                "but only provide a dataset containing the metrics "
                "obtained from the malware pieces.",
                "Calleja et al. shared a dataset with metrics from "
                "the source code, but not the sources themselves, as "
                "Safeguards that allow for reproducibility without "
                "releasing the malware.",
            ),
        ),
        Evidence(
            entry_id="pcfg-weir",
            section="4.2",
            quotes=(
                "They say that 'while publicly available, these "
                "lists contain private data; therefore we treat all "
                "password lists as confidential'",
                "'due to the moral and legal issues with "
                "distributing real user information, we will only "
                "provide the lists to legitimate researchers who "
                "agree to abide by accepted ethical standards'",
            ),
        ),
        Evidence(
            entry_id="guess-again-kelley",
            section="4.2",
            quotes=(
                "The authors received approval from their REB for "
                "this survey, and they discuss the ethics of using "
                "leaked databases of passwords.",
                "They argue that, given these data were already "
                "public, using it for research does not increase "
                "harm to users, since no further connection with "
                "real identities is sought.",
            ),
        ),
        Evidence(
            entry_id="tangled-web-das",
            section="4.2",
            quotes=(
                "they justify their work saying that: 1) these "
                "datasets were used in several previous studies, 2) "
                "they protected users privacy by only working with "
                "hashed email addresses, 3) they obtained approval "
                "from their REB to conduct the survey.",
            ),
        ),
        Evidence(
            entry_id="measuring-ur",
            section="4.2",
            quotes=(
                "This view is also shared by Ur et al., who use "
                "three different password dumps to compare "
                "real-world cracking techniques with those proposed "
                "in the research literature.",
            ),
        ),
        Evidence(
            entry_id="omen-durmuth",
            section="4.2",
            quotes=(
                "The authors justify this by claiming that these "
                "datasets have been used in several previous "
                "studies, and they have been made public.",
                "they claimed that these data have been treated "
                "carefully and they do not reveal actual information "
                "about the passwords",
            ),
        ),
        Evidence(
            entry_id="underground-forums-motoyama",
            section="4.3.3",
            quotes=(
                "Motoyama et al. presented one of the first works "
                "analysing underground forums using leaked "
                "databases, however, they did not discuss ethics.",
            ),
        ),
        Evidence(
            entry_id="carding-forums-yip",
            section="4.3.3",
            quotes=(
                "Yip et al. perform social network analysis using a "
                "database of three carding forums (Cardersmarket, "
                "Darkmarket and Shadowcrew) which included private "
                "messages of the participants.",
                "They do not provide any discussion about the ethics "
                "of their research, however they indicate that the "
                "marketplace actors are anonymous, so it is not "
                "possible to obtain Informed consent.",
            ),
        ),
        Evidence(
            entry_id="twbooter-karami",
            section="4.3.1",
            quotes=(
                "Karami et al. analysed a database dump of the "
                "TwBooter service. Their Safeguards to make this "
                "research ethical were to not publish personally "
                "identifiable data, except when this was already "
                "publicly known.",
            ),
        ),
        Evidence(
            entry_id="booters-santanna",
            section="4.3.1",
            quotes=(
                "Santanna et al. analysed database dumps from 15 "
                "distinct booters and used Karami's procedures to "
                "justify it ethically.",
            ),
        ),
        Evidence(
            entry_id="booters-karami-stress",
            section="4.3.1",
            quotes=(
                "Later they analysed database dumps from Asylum and "
                "LizardStresser and scraped data from VDOS. For the "
                "latter they obtained an REB exemption on the basis "
                "these data did not contain any personally "
                "identifiable information and used publicly leaked "
                "data.",
                "In some jurisdictions (e.g. Germany) IP addresses "
                "may be personally identifiable data and the dumps "
                "likely contained email addresses which can be "
                "similarly identifiable.",
            ),
        ),
        Evidence(
            entry_id="patreon",
            section="4.3.2",
            quotes=(
                "Poor and Davidson, who were conducting research "
                "based on incomplete data obtained by scraping the "
                "Patreon website would have liked to use this data "
                "but concluded it would be unethical to do so.",
                "Importantly they also did not need to use this data "
                "to do their research, as scraping the Patreon "
                "website would also provide the data they needed, "
                "without the risk of accidentally including private "
                "data.",
            ),
        ),
        Evidence(
            entry_id="udp-ddos-thomas",
            section="4.3.1",
            quotes=(
                "Thomas et al. used database dumps and scraped data "
                "from booters to evaluate the coverage of their "
                "honeypot based measurement of DDoS attacks, they "
                "argued that using this data was necessary as there "
                "was no other ground truth on attacks initiated by "
                "booters.",
                "no human subjects or ethical concerns",
            ),
        ),
        Evidence(
            entry_id="cybercrime-markets-portnoff",
            section="4.3.3",
            quotes=(
                "Some authors have publicly re-released leaked "
                "datasets, even including private information.",
                "None of the works mentioned use Safeguards to "
                "protect the data, which was originally illegally "
                "obtained.",
            ),
        ),
        Evidence(
            entry_id="manning-berger",
            section="4.5.1",
            quotes=(
                "Berger references several Manning cables to study "
                "the international restrictions on the trade of "
                "weapons with North Korea.",
                "none of the studied works discussed the ethics of "
                "their research",
            ),
        ),
        Evidence(
            entry_id="manning-barnard",
            section="4.5.1",
            quotes=(
                "The author claims that there were no ethical "
                "dilemmas since all the classified data used was "
                "open source and declassified. However, there is no "
                "evidence that any of Manning's WikiLeaks dump has "
                "been declassified.",
            ),
        ),
        Evidence(
            entry_id="manning-talarico",
            section="4.5.1",
            quotes=(
                "They used a confidential document from the American "
                "Embassy in Italy, obtained through WikiLeaks that "
                "said that the USA government had blacklisted an "
                "Italian harbour because of collusion by harbour "
                "staff.",
            ),
        ),
        Evidence(
            entry_id="snowden-landau",
            section="4.5.2",
            quotes=(
                "Landau provides an overview of the data that was "
                "revealed by Snowden, covering early leaks and later "
                "leaks.",
                "She criticises the ethics of some of the leaks "
                "since 'the specifics on China had little to do with "
                "privacy and security of individuals'",
            ),
        ),
        Evidence(
            entry_id="snowden-schneier",
            section="4.5.2",
            quotes=(
                "In a newspaper article, Schneier uses documents "
                "leaked by Snowden to explain how the NSA "
                "unconditionally exploits Tor users' browsers to "
                "install implants that exfiltrate data.",
                "Several uses of the Snowden leaks make no mention "
                "of the ethical considerations of doing so",
            ),
        ),
        Evidence(
            entry_id="snowden-rfc7624",
            section="4.5.2",
            quotes=(
                "RFC 7624 uses the Snowden leaks to inform a threat "
                "model for pervasive surveillance, in order to "
                "inform protocol design, such that the activities "
                "detailed in the Snowden leaks would be more "
                "difficult in future.",
                "Here the argument is that the NSA is the malicious "
                "actor.",
            ),
        ),
        Evidence(
            entry_id="snowden-walsh",
            section="4.5.2",
            quotes=(
                "Walsh and Miller provide an ethical and policy "
                "analysis of intelligence agency activity on the "
                "basis of Snowden's revealing what current practice "
                "was.",
            ),
        ),
        Evidence(
            entry_id="panama-omartian",
            section="4.4",
            quotes=(
                "Omartian used the Panama papers to investigate "
                "investor response to changes in tax legislation in "
                "terms of offshore entity usage.",
                "None of these papers explicitly discuss the ethics "
                "of using this data; they implicitly argue that they "
                "are in the public interest.",
                "Omartian provides evidence for tax laws that "
                "provide more Justice.",
            ),
        ),
        Evidence(
            entry_id="panama-odonovan",
            section="4.4",
            quotes=(
                "O'Donovan et al. evaluated the impact of the Panama "
                "papers on firm values and found it reduced market "
                "capitalisation of 397 firms implicated in the leak "
                "by US$135 billion or 0.7%.",
                "O'Donovan et al., and Oei and Ring Identify harms "
                "resulting from the data being released",
            ),
        ),
    )
}


def evidence_for(entry_id: str) -> Evidence:
    """The grounding quotes for one Table 1 entry."""
    try:
        return EVIDENCE[entry_id]
    except KeyError:
        raise CorpusError(
            f"no evidence recorded for entry {entry_id!r}"
        ) from None


def verify_evidence_coverage(corpus: Corpus) -> tuple[str, ...]:
    """Entry ids lacking evidence (empty tuple = full coverage).

    Extension entries are exempt: evidence grounds the *paper's*
    table only.
    """
    return tuple(
        entry.id
        for entry in corpus
        if "extension" not in entry.provenance
        and entry.id not in EVIDENCE
    )
