"""Corpus model: coded case-study entries and the corpus registry.

A :class:`CaseStudyEntry` is one row of Table 1: a work (usually a
peer-reviewed paper) that used — or explicitly considered and declined
to use — a dataset of illicit origin, together with its full coding
against the paper's codebook.

The :class:`Corpus` holds the entries in table order and provides the
query API used by the analysis engine.
"""

from __future__ import annotations

import dataclasses
import json
from collections.abc import Callable, Iterable, Iterator, Mapping

from .._util import slugify
from ..codebook import Codebook, CellValue
from ..errors import CorpusError, UnknownEntryError

__all__ = ["CaseStudyEntry", "Category", "Corpus", "DataOrigin"]


class Category:
    """Table 1 row-group categories, in table order."""

    MALWARE = "Malware & exploitation"
    PASSWORDS = "Password dumps"
    LEAKED_DATABASES = "Leaked databases"
    CLASSIFIED = "Classified materials"
    FINANCIAL = "Financial data"

    ORDER = (MALWARE, PASSWORDS, LEAKED_DATABASES, CLASSIFIED, FINANCIAL)


class DataOrigin:
    """The paper's §1 definition of illicit origin (three clauses)."""

    #: (i) exploitation of a vulnerability in a computer system.
    VULNERABILITY_EXPLOITATION = "vulnerability-exploitation"
    #: (ii) an unintended disclosure by the data owner.
    UNINTENDED_DISCLOSURE = "unintended-disclosure"
    #: (iii) an unauthorized leak by someone with access to the data.
    UNAUTHORIZED_LEAK = "unauthorized-leak"

    ALL = (
        VULNERABILITY_EXPLOITATION,
        UNINTENDED_DISCLOSURE,
        UNAUTHORIZED_LEAK,
    )


@dataclasses.dataclass(frozen=True)
class CaseStudyEntry:
    """One coded row of Table 1.

    Attributes
    ----------
    id:
        Stable slug for the entry, e.g. ``"carna-telescope"``.
    category:
        One of :class:`Category`.
    source_label:
        The ``Sources`` column text, e.g. ``"AT&T database"``. Rows
        that continue a source group leave this equal to the group's
        label.
    reference:
        The bracketed reference number of the coded work.
    year:
        The two-digit ``Year 20XX`` column expanded to four digits.
    footnotes:
        Table 1 footnote markers applying to the row (subset of
        ``a``–``e``).
    peer_reviewed:
        False for rows carrying footnote ``a``.
    is_paper:
        False only for the two raw web sources ([106] Gawker coverage
        and [18] the CAIDA web page); the paper's §5.5 denominator of
        "28 papers" excludes exactly these.
    used_data:
        False for the two rows whose authors did not use the dataset
        ([27] footnote b, [85] footnote c).
    values:
        Closed-dimension coding: dimension id → :class:`CellValue`.
    code_sets:
        Open-dimension coding: dimension id → tuple of member-code
        abbreviations (e.g. ``("SS", "P")``).
    datasets:
        Names of the illicit-origin datasets involved.
    origin:
        One of :class:`DataOrigin` — which §1 clause the data falls
        under.
    summary:
        Short prose summary drawn from §4.
    provenance:
        Notes recording coding decisions, especially where the text
        extraction of Table 1 is ambiguous (dimension id → note).
    cell_notes:
        Per-cell footnotes, e.g. Table 1 footnote ``d`` on the
        fight-malicious-use cell of RFC 7624.
    exemption_reason:
        For REB-exempt rows, the reason the authors gave.
    """

    id: str
    category: str
    source_label: str
    reference: int
    year: int
    footnotes: tuple[str, ...] = ()
    peer_reviewed: bool = True
    is_paper: bool = True
    used_data: bool = True
    values: Mapping[str, CellValue] = dataclasses.field(default_factory=dict)
    code_sets: Mapping[str, tuple[str, ...]] = dataclasses.field(
        default_factory=dict
    )
    datasets: tuple[str, ...] = ()
    origin: str = DataOrigin.UNAUTHORIZED_LEAK
    summary: str = ""
    provenance: Mapping[str, str] = dataclasses.field(default_factory=dict)
    cell_notes: Mapping[str, str] = dataclasses.field(default_factory=dict)
    exemption_reason: str = ""

    def __post_init__(self) -> None:
        if self.id != slugify(self.id):
            raise CorpusError(f"entry id {self.id!r} is not a slug")
        if self.category not in Category.ORDER:
            raise CorpusError(
                f"entry {self.id!r}: unknown category {self.category!r}"
            )
        if self.origin not in DataOrigin.ALL:
            raise CorpusError(
                f"entry {self.id!r}: unknown origin {self.origin!r}"
            )
        if not 1900 <= self.year <= 2100:
            raise CorpusError(f"entry {self.id!r}: implausible year")
        for marker in self.footnotes:
            if marker not in "abcde":
                raise CorpusError(
                    f"entry {self.id!r}: unknown footnote {marker!r}"
                )

    # -- coding accessors ----------------------------------------------
    def value(self, dimension_id: str) -> CellValue:
        """The cell value of a closed dimension."""
        try:
            return self.values[dimension_id]
        except KeyError:
            raise CorpusError(
                f"entry {self.id!r} has no value for {dimension_id!r}"
            ) from None

    def codes(self, dimension_id: str) -> tuple[str, ...]:
        """The member-code abbreviations of an open dimension."""
        return tuple(self.code_sets.get(dimension_id, ()))

    def has_code(self, dimension_id: str, abbrev: str) -> bool:
        return abbrev in self.code_sets.get(dimension_id, ())

    def discussed(self, dimension_id: str) -> bool:
        """True when the closed dimension is coded positively."""
        return self.value(dimension_id).is_positive

    @property
    def legal_issues(self) -> tuple[str, ...]:
        """Ids of legal dimensions coded as applicable."""
        return tuple(
            dim_id
            for dim_id, value in self.values.items()
            if value is CellValue.APPLICABLE
        )

    @property
    def reb_status(self) -> CellValue:
        return self.value("reb-approval")

    @property
    def has_ethics_section(self) -> bool:
        return self.value("ethics-section") is CellValue.DISCUSSED

    def to_dict(self) -> dict:
        """JSON-serialisable representation of the entry."""
        return {
            "id": self.id,
            "category": self.category,
            "source_label": self.source_label,
            "reference": self.reference,
            "year": self.year,
            "footnotes": list(self.footnotes),
            "peer_reviewed": self.peer_reviewed,
            "is_paper": self.is_paper,
            "used_data": self.used_data,
            "values": {k: v.value for k, v in self.values.items()},
            "code_sets": {k: list(v) for k, v in self.code_sets.items()},
            "datasets": list(self.datasets),
            "origin": self.origin,
            "summary": self.summary,
            "provenance": dict(self.provenance),
            "cell_notes": dict(self.cell_notes),
            "exemption_reason": self.exemption_reason,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "CaseStudyEntry":
        """Inverse of :meth:`to_dict`."""
        return cls(
            id=data["id"],
            category=data["category"],
            source_label=data["source_label"],
            reference=data["reference"],
            year=data["year"],
            footnotes=tuple(data.get("footnotes", ())),
            peer_reviewed=data.get("peer_reviewed", True),
            is_paper=data.get("is_paper", True),
            used_data=data.get("used_data", True),
            values={
                k: CellValue(v) for k, v in data.get("values", {}).items()
            },
            code_sets={
                k: tuple(v) for k, v in data.get("code_sets", {}).items()
            },
            datasets=tuple(data.get("datasets", ())),
            origin=data.get("origin", DataOrigin.UNAUTHORIZED_LEAK),
            summary=data.get("summary", ""),
            provenance=dict(data.get("provenance", {})),
            cell_notes=dict(data.get("cell_notes", {})),
            exemption_reason=data.get("exemption_reason", ""),
        )


class Corpus:
    """The coded corpus: Table 1 rows in table order plus a codebook."""

    def __init__(
        self, codebook: Codebook, entries: Iterable[CaseStudyEntry]
    ) -> None:
        self.codebook = codebook
        self._entries: dict[str, CaseStudyEntry] = {}
        for entry in entries:
            if entry.id in self._entries:
                raise CorpusError(f"duplicate entry id {entry.id!r}")
            codebook.validate_coding(entry.values, entry.code_sets)
            self._entries[entry.id] = entry

    # -- container protocol --------------------------------------------
    def __iter__(self) -> Iterator[CaseStudyEntry]:
        return iter(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, entry_id: str) -> bool:
        return entry_id in self._entries

    def __getitem__(self, entry_id: str) -> CaseStudyEntry:
        try:
            return self._entries[entry_id]
        except KeyError:
            raise UnknownEntryError(entry_id) from None

    @property
    def entry_ids(self) -> tuple[str, ...]:
        return tuple(self._entries)

    # -- queries ---------------------------------------------------------
    def filter(
        self, predicate: Callable[[CaseStudyEntry], bool]
    ) -> tuple[CaseStudyEntry, ...]:
        return tuple(e for e in self if predicate(e))

    def by_category(self, category: str) -> tuple[CaseStudyEntry, ...]:
        if category not in Category.ORDER:
            raise CorpusError(f"unknown category {category!r}")
        return self.filter(lambda e: e.category == category)

    def by_year(self, year: int) -> tuple[CaseStudyEntry, ...]:
        return self.filter(lambda e: e.year == year)

    def by_reference(self, number: int) -> CaseStudyEntry:
        """The entry coded for bibliography entry *number*."""
        for entry in self:
            if entry.reference == number:
                return entry
        raise UnknownEntryError(f"[{number}]")

    def papers(self) -> tuple[CaseStudyEntry, ...]:
        """Entries the paper's §5.5 counts as papers (28 of 30)."""
        return self.filter(lambda e: e.is_paper)

    def with_value(
        self, dimension_id: str, value: CellValue
    ) -> tuple[CaseStudyEntry, ...]:
        return self.filter(lambda e: e.values.get(dimension_id) == value)

    def with_code(
        self, dimension_id: str, abbrev: str
    ) -> tuple[CaseStudyEntry, ...]:
        """Entries carrying *abbrev* in the open dimension."""
        self.codebook[dimension_id].code(abbrev)  # validate
        return self.filter(lambda e: e.has_code(dimension_id, abbrev))

    def discussing(self, dimension_id: str) -> tuple[CaseStudyEntry, ...]:
        return self.filter(lambda e: e.discussed(dimension_id))

    # -- serialisation ----------------------------------------------------
    def to_json(self, *, indent: int | None = 2) -> str:
        """Serialise all entries (not the codebook) to JSON."""
        return json.dumps(
            [entry.to_dict() for entry in self], indent=indent
        )

    @classmethod
    def from_json(cls, codebook: Codebook, text: str) -> "Corpus":
        """Load a corpus previously serialised with :meth:`to_json`."""
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CorpusError(f"invalid corpus JSON: {exc}") from exc
        if not isinstance(raw, list):
            raise CorpusError("corpus JSON must be a list of entries")
        return cls(codebook, (CaseStudyEntry.from_dict(d) for d in raw))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Corpus({len(self)} entries)"
