"""The coded corpus of case studies (Table 1 of the paper)."""

from .evidence import (
    EVIDENCE,
    Evidence,
    evidence_for,
    verify_evidence_coverage,
)
from .extensions import (
    EXTENSION_ENTRIES,
    CorpusBuilder,
    extended_corpus,
)
from .model import CaseStudyEntry, Category, Corpus, DataOrigin
from .table1 import TABLE1_FOOTNOTES, table1_corpus, table1_entries

__all__ = [
    "CaseStudyEntry",
    "Category",
    "Corpus",
    "CorpusBuilder",
    "DataOrigin",
    "EVIDENCE",
    "EXTENSION_ENTRIES",
    "Evidence",
    "TABLE1_FOOTNOTES",
    "evidence_for",
    "extended_corpus",
    "table1_corpus",
    "table1_entries",
    "verify_evidence_coverage",
]
