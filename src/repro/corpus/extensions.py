"""Extending the corpus beyond the paper's Table 1.

The framework is not frozen at the paper's 30 rows: §6 expects the
community to keep coding new work ("we are hopeful that in the future
better information on current practice ... will be available"). This
module provides:

* :class:`CorpusBuilder` — a guided way to code a *new* case study
  against the paper's codebook, with the same validation the
  transcribed rows get;
* :func:`extended_corpus` — the Table 1 corpus plus optional extra
  entries;
* :data:`EXTENSION_ENTRIES` — worked examples the paper mentions but
  does not code: the Ashley Madison question ([124], the Zhao Quora
  discussion) and the Encore-adjacent "data of illicit origin you
  decline to use" pattern, coded here the way §4/§5 code comparable
  rows. Extension entries are clearly marked and never enter the
  Table 1 reproduction (E1–E8 always run on the pristine corpus).
"""

from __future__ import annotations

from ..codebook import CellValue, Codebook, paper_codebook
from ..errors import CorpusError
from .model import CaseStudyEntry, Category, Corpus, DataOrigin
from .table1 import table1_entries

__all__ = ["CorpusBuilder", "extended_corpus", "EXTENSION_ENTRIES"]


class CorpusBuilder:
    """Incrementally code a new case study.

    Usage::

        builder = CorpusBuilder(
            id="ashley-madison-2015",
            category=Category.LEAKED_DATABASES,
            source_label="Ashley Madison",
            reference=124,
            year=2015,
        )
        builder.legal("computer-misuse", "data-privacy")
        builder.ethical(identify_harms=True, safeguards=True)
        ...
        entry = builder.build()
    """

    _ETHICAL = {
        "identification_of_stakeholders":
            "identification-of-stakeholders",
        "identify_harms": "identify-harms",
        "safeguards": "safeguards-discussed",
        "justice": "justice",
        "public_interest": "public-interest",
    }
    _JUSTIFICATIONS = {
        "not_the_first": "not-the-first",
        "public_data": "public-data",
        "no_additional_harm": "no-additional-harm",
        "fight_malicious_use": "fight-malicious-use",
        "necessary_data": "necessary-data",
    }

    def __init__(
        self,
        *,
        id: str,
        category: str,
        source_label: str,
        reference: int,
        year: int,
        codebook: Codebook | None = None,
    ) -> None:
        self._codebook = codebook or paper_codebook()
        self._id = id
        self._category = category
        self._source_label = source_label
        self._reference = reference
        self._year = year
        self._values: dict[str, CellValue] = {}
        # Default every closed dimension to the negative value so a
        # builder can be sparse; explicit calls override.
        for dim in self._codebook.closed_dimensions():
            if dim.group == "legal":
                self._values[dim.id] = CellValue.NOT_APPLICABLE
            elif dim.id == "reb-approval":
                self._values[dim.id] = CellValue.NOT_MENTIONED
            else:
                self._values[dim.id] = CellValue.NOT_DISCUSSED
        self._code_sets: dict[str, tuple[str, ...]] = {
            "safeguards": (),
            "harms": (),
            "benefits": (),
        }
        self._kwargs: dict = {}

    # -- coding calls ----------------------------------------------------
    def legal(self, *dimension_ids: str) -> "CorpusBuilder":
        """Mark legal issues as applicable."""
        for dimension_id in dimension_ids:
            dim = self._codebook[dimension_id]
            if dim.group != "legal":
                raise CorpusError(
                    f"{dimension_id!r} is not a legal dimension"
                )
            self._values[dimension_id] = CellValue.APPLICABLE
        return self

    def ethical(self, **flags: bool) -> "CorpusBuilder":
        """Set ethical-issue discussion flags by keyword."""
        for name, discussed in flags.items():
            try:
                dimension_id = self._ETHICAL[name]
            except KeyError:
                raise CorpusError(
                    f"unknown ethical issue {name!r}; one of "
                    f"{sorted(self._ETHICAL)}"
                ) from None
            self._values[dimension_id] = (
                CellValue.DISCUSSED
                if discussed
                else CellValue.NOT_DISCUSSED
            )
        return self

    def justifications(
        self, *, declined: str | None = None, **flags: bool
    ) -> "CorpusBuilder":
        """Set justification usage flags; *declined* marks one
        justification as considered-and-declined (the ``l`` glyph)."""
        for name, used in flags.items():
            try:
                dimension_id = self._JUSTIFICATIONS[name]
            except KeyError:
                raise CorpusError(
                    f"unknown justification {name!r}; one of "
                    f"{sorted(self._JUSTIFICATIONS)}"
                ) from None
            self._values[dimension_id] = (
                CellValue.DISCUSSED
                if used
                else CellValue.NOT_DISCUSSED
            )
        if declined is not None:
            dimension_id = self._JUSTIFICATIONS.get(
                declined, declined
            )
            self._values[dimension_id] = CellValue.DECLINED
        return self

    def ethics_section(self, present: bool) -> "CorpusBuilder":
        """Record whether the paper has an ethics section."""
        self._values["ethics-section"] = (
            CellValue.DISCUSSED if present else CellValue.NOT_DISCUSSED
        )
        return self

    def reb(self, status: str, reason: str = "") -> "CorpusBuilder":
        """Set the REB column: approved / not-mentioned / exempt /
        not-relevant."""
        mapping = {
            "approved": CellValue.APPROVED,
            "not-mentioned": CellValue.NOT_MENTIONED,
            "exempt": CellValue.EXEMPT,
            "not-relevant": CellValue.NOT_RELEVANT,
        }
        try:
            self._values["reb-approval"] = mapping[status]
        except KeyError:
            raise CorpusError(
                f"unknown REB status {status!r}; one of "
                f"{sorted(mapping)}"
            ) from None
        if reason:
            self._kwargs["exemption_reason"] = reason
        return self

    def codes(
        self,
        *,
        safeguards: tuple[str, ...] = (),
        harms: tuple[str, ...] = (),
        benefits: tuple[str, ...] = (),
    ) -> "CorpusBuilder":
        """Set the safeguard/harm/benefit code sets."""
        self._code_sets = {
            "safeguards": safeguards,
            "harms": harms,
            "benefits": benefits,
        }
        return self

    def describe(
        self,
        summary: str,
        *,
        datasets: tuple[str, ...] = (),
        origin: str = DataOrigin.UNAUTHORIZED_LEAK,
        used_data: bool = True,
        peer_reviewed: bool = True,
    ) -> "CorpusBuilder":
        """Attach summary, datasets, origin and flags."""
        self._kwargs.update(
            summary=summary,
            datasets=datasets,
            origin=origin,
            used_data=used_data,
            peer_reviewed=peer_reviewed,
        )
        return self

    def build(self) -> CaseStudyEntry:
        """Validate and return the coded entry."""
        entry = CaseStudyEntry(
            id=self._id,
            category=self._category,
            source_label=self._source_label,
            reference=self._reference,
            year=self._year,
            values=dict(self._values),
            code_sets=dict(self._code_sets),
            provenance={
                "extension": (
                    "coded with CorpusBuilder; not part of the "
                    "paper's Table 1"
                )
            },
            **self._kwargs,
        )
        self._codebook.validate_coding(entry.values, entry.code_sets)
        return entry


def _ashley_madison_entry() -> CaseStudyEntry:
    """The Ashley Madison question ([124]) coded as a case study.

    The paper cites Zhao's Quora discussion of whether research on
    the 2015 Ashley Madison leak is "legal, ethical and publishable"
    but does not code it; this extension codes the *declined-use*
    position that discussion converged on for identity-bearing
    analyses, mirroring the Patreon row's shape.
    """
    return (
        CorpusBuilder(
            id="ashley-madison-discussion",
            category=Category.LEAKED_DATABASES,
            source_label="Ashley Madison",
            reference=124,
            year=2015,
        )
        .legal("computer-misuse", "copyright", "data-privacy")
        .ethical(
            identification_of_stakeholders=True,
            identify_harms=True,
            safeguards=True,
            justice=True,
            public_interest=True,
        )
        .justifications(
            public_data=True, declined="no_additional_harm"
        )
        .ethics_section(True)
        .reb("not-relevant")
        .codes(harms=("SI", "DA", "RH"), benefits=("U", "AT"))
        .describe(
            summary=(
                "Community discussion of research on the Ashley "
                "Madison leak: identity-bearing uses were judged "
                "unjustifiable because membership itself is the "
                "sensitive fact, so any use risks additional harm "
                "including de-anonymisation of users."
            ),
            datasets=("Ashley Madison 2015 dump",),
            used_data=False,
            peer_reviewed=False,
        )
        .build()
    )


def _mirai_source_entry() -> CaseStudyEntry:
    """Research on the released Mirai source code ([60], §4.1.3),
    coded in the shape of the malware-source rows."""
    return (
        CorpusBuilder(
            id="mirai-source-studies",
            category=Category.MALWARE,
            source_label="Mirai source code",
            reference=60,
            year=2016,
        )
        .legal("computer-misuse", "copyright")
        .ethical(identify_harms=True, public_interest=True)
        .justifications(fight_malicious_use=True, public_data=True)
        .ethics_section(False)
        .reb("not-mentioned")
        .codes(
            safeguards=("SS",),
            harms=("PA",),
            benefits=("DM", "AT"),
        )
        .describe(
            summary=(
                "Studies of the publicly released Mirai botnet "
                "source code: defensive analysis of the malware "
                "that, once leaked, spawned myriad derivative "
                "botnets."
            ),
            datasets=("Mirai source code release",),
            origin=DataOrigin.UNAUTHORIZED_LEAK,
        )
        .build()
    )


#: Worked extension entries (never part of the Table 1 reproduction).
EXTENSION_ENTRIES: tuple[CaseStudyEntry, ...] = (
    _mirai_source_entry(),
    _ashley_madison_entry(),
)


def extended_corpus(
    extra: tuple[CaseStudyEntry, ...] = EXTENSION_ENTRIES,
) -> Corpus:
    """The Table 1 corpus plus *extra* entries, category-ordered.

    Entries are re-sorted so category groups stay contiguous (the
    renderers rely on that); within a category, original rows keep
    their order and extensions follow.
    """
    merged = list(table1_entries()) + list(extra)
    order = {category: i for i, category in enumerate(Category.ORDER)}
    merged.sort(key=lambda e: order[e.category])
    return Corpus(paper_codebook(), merged)
