"""The Table 1 corpus: all 30 coded case-study rows.

Each entry transcribes one row of Table 1 of Thomas et al. (IMC 2017).
The tick/cross sequences are taken verbatim from the paper; the column
assignment of the legal-issue bullets (``•``) is reconstructed from the
§3/§4 discussion where the text extraction loses horizontal position
(every reconstruction carries a ``provenance`` note).

Row convention used in this module:

* ``ethical`` is a 5-character string over ``Y``/``N`` coding the five
  §2.1 issues in column order (identification of stakeholders,
  identify harms, safeguards, justice, public interest);
* ``justifications`` is a 5-character string over ``Y``/``N``/``D``
  (``D`` = considered and declined, the ``l`` glyph) for the five §5.1
  justifications in column order (not the first, public data, no
  additional harm, fight malicious use, necessary data);
* ``reb`` is one of ``A`` (approved), ``N`` (not mentioned), ``E``
  (exempt) or ``X`` (not applicable, ``∅``).
"""

from __future__ import annotations

from ..codebook import CellValue, paper_codebook
from ..errors import CorpusError
from .model import CaseStudyEntry, Category, Corpus, DataOrigin

__all__ = ["table1_corpus", "table1_entries", "TABLE1_FOOTNOTES"]

#: The table's footnote legend, verbatim.
TABLE1_FOOTNOTES: dict[str, str] = {
    "a": "These works were not peer reviewed.",
    "b": (
        "This paper analysed the ethics of the Carna scan and its use, "
        "but did not use it."
    ),
    "c": "The authors did not use the leaked database.",
    "d": "Here the argument is that the NSA is the malicious actor.",
    "e": (
        "MS: MySpace, RY: RockYou, FB: Facebook, YV: Yahoo Voices"
    ),
}

_ETHICAL_DIMS = (
    "identification-of-stakeholders",
    "identify-harms",
    "safeguards-discussed",
    "justice",
    "public-interest",
)
_JUSTIFICATION_DIMS = (
    "not-the-first",
    "public-data",
    "no-additional-harm",
    "fight-malicious-use",
    "necessary-data",
)
_LEGAL_DIMS = (
    "computer-misuse",
    "copyright",
    "data-privacy",
    "terrorism",
    "indecent-images",
    "national-security",
)

_FLAG = {"Y": CellValue.DISCUSSED, "N": CellValue.NOT_DISCUSSED}
_JUST = {
    "Y": CellValue.DISCUSSED,
    "N": CellValue.NOT_DISCUSSED,
    "D": CellValue.DECLINED,
}
_REB = {
    "A": CellValue.APPROVED,
    "N": CellValue.NOT_MENTIONED,
    "E": CellValue.EXEMPT,
    "X": CellValue.NOT_RELEVANT,
}


def _entry(
    *,
    id: str,
    category: str,
    source_label: str,
    reference: int,
    year: int,
    legal: tuple[str, ...],
    ethical: str,
    justifications: str,
    ethics_section: str,
    reb: str,
    safeguards: tuple[str, ...] = (),
    harms: tuple[str, ...] = (),
    benefits: tuple[str, ...] = (),
    footnotes: tuple[str, ...] = (),
    peer_reviewed: bool = True,
    is_paper: bool = True,
    used_data: bool = True,
    datasets: tuple[str, ...] = (),
    origin: str = DataOrigin.UNAUTHORIZED_LEAK,
    summary: str = "",
    provenance: dict[str, str] | None = None,
    cell_notes: dict[str, str] | None = None,
    exemption_reason: str = "",
) -> CaseStudyEntry:
    """Expand the compact row spec into a fully-coded entry."""
    if len(ethical) != 5 or len(justifications) != 5:
        raise CorpusError(f"entry {id!r}: bad coding string length")
    values: dict[str, CellValue] = {}
    for dim in _LEGAL_DIMS:
        values[dim] = (
            CellValue.APPLICABLE
            if dim in legal
            else CellValue.NOT_APPLICABLE
        )
    unknown_legal = set(legal) - set(_LEGAL_DIMS)
    if unknown_legal:
        raise CorpusError(f"entry {id!r}: unknown legal dims {unknown_legal}")
    for dim, flag in zip(_ETHICAL_DIMS, ethical):
        values[dim] = _FLAG[flag]
    for dim, flag in zip(_JUSTIFICATION_DIMS, justifications):
        values[dim] = _JUST[flag]
    values["ethics-section"] = _FLAG[ethics_section]
    values["reb-approval"] = _REB[reb]
    code_sets = {
        "safeguards": safeguards,
        "harms": harms,
        "benefits": benefits,
    }
    return CaseStudyEntry(
        id=id,
        category=category,
        source_label=source_label,
        reference=reference,
        year=year,
        footnotes=footnotes,
        peer_reviewed=peer_reviewed,
        is_paper=is_paper,
        used_data=used_data,
        values=values,
        code_sets=code_sets,
        datasets=datasets,
        origin=origin,
        summary=summary,
        provenance=provenance or {},
        cell_notes=cell_notes or {},
        exemption_reason=exemption_reason,
    )


def table1_entries() -> tuple[CaseStudyEntry, ...]:
    """All 30 rows of Table 1, in table order."""
    rows: list[CaseStudyEntry] = []
    add = rows.append

    # ----------------------------------------------------------------
    # Malware & exploitation (§4.1)
    # ----------------------------------------------------------------
    add(_entry(
        id="att-ipad",
        category=Category.MALWARE,
        source_label="AT&T database",
        reference=106,
        year=2010,
        footnotes=("a",),
        peer_reviewed=False,
        is_paper=False,
        legal=("computer-misuse", "data-privacy"),
        ethical="YYNNN",
        justifications="NNNYN",
        ethics_section="N",
        reb="N",
        harms=("I", "PA", "SI", "RH"),
        datasets=("AT&T iPad ICC-ID/email database",),
        origin=DataOrigin.VULNERABILITY_EXPLOITATION,
        summary=(
            "Goatse Security brute forced an AT&T web service to obtain "
            "email addresses of 114,000 3G iPad users, passed them to "
            "Gawker and did not report the vulnerability to AT&T; the "
            "FBI investigation led to a computer-misuse conviction."
        ),
        provenance={
            "legal": (
                "Bullets reconstructed: unauthorised access (computer "
                "misuse) and harvesting of personal email addresses "
                "(data privacy), per §4.1.2."
            ),
        },
    ))
    add(_entry(
        id="pushdo-cutwail",
        category=Category.MALWARE,
        source_label="Pushdo/Cutwail botnet",
        reference=103,
        year=2011,
        legal=("computer-misuse", "copyright", "data-privacy"),
        ethical="YNNYY",
        justifications="NNNNN",
        ethics_section="N",
        reb="N",
        benefits=("R", "U", "DM"),
        datasets=("Pushdo/Cutwail C&C servers",),
        origin=DataOrigin.VULNERABILITY_EXPLOITATION,
        summary=(
            "Stone-Gross et al. obtained access to Pushdo/Cutwail C&C "
            "servers by contacting hosting providers, recovering "
            "infection statistics, target email addresses and the "
            "malware source code."
        ),
        provenance={
            "legal": (
                "Bullets reconstructed: accessing criminal C&C "
                "infrastructure (computer misuse), possession of "
                "malware source code (copyright) and spam target email "
                "addresses (data privacy), per §4.1.3."
            ),
        },
    ))
    add(_entry(
        id="exploit-kits",
        category=Category.MALWARE,
        source_label="30 exploit kits",
        reference=58,
        year=2013,
        legal=("computer-misuse", "copyright"),
        ethical="NNNYY",
        justifications="NNNNN",
        ethics_section="N",
        reb="N",
        benefits=("DM", "AT"),
        datasets=("Leaked exploit-kit source code",),
        origin=DataOrigin.UNAUTHORIZED_LEAK,
        summary=(
            "Kotov and Massacci collected exploit-kit source code from "
            "a public repository and underground forums, analysing "
            "anti-crawling and anti-analysis measures; they note the "
            "leak itself biased the analysis."
        ),
        provenance={
            "legal": (
                "Bullets reconstructed: possession of dual-use attack "
                "tools (computer misuse) and of leaked proprietary "
                "source code (copyright), per §4.1.3."
            ),
        },
    ))
    add(_entry(
        id="carna-caida",
        category=Category.MALWARE,
        source_label="Carna Scan",
        reference=18,
        year=2013,
        footnotes=("a",),
        peer_reviewed=False,
        is_paper=False,
        legal=("computer-misuse",),
        ethical="NNNNY",
        justifications="NNNNY",
        ethics_section="N",
        reb="N",
        datasets=("Internet Census 2012 (Carna botnet scan)",),
        origin=DataOrigin.VULNERABILITY_EXPLOITATION,
        summary=(
            "CAIDA examined the Carna botnet scan data, found proxy "
            "artefacts in port-80 results, noted ethical concerns with "
            "reference to the Menlo report, and restricted analysis to "
            "traffic targeting their own darknet."
        ),
        provenance={
            "legal": (
                "Single bullet: the scan was performed by a botnet of "
                "420,000 devices with default passwords (computer "
                "misuse), per §4.1.1."
            ),
        },
    ))
    add(_entry(
        id="carna-telescope",
        category=Category.MALWARE,
        source_label="Carna Scan",
        reference=70,
        year=2013,
        legal=("computer-misuse",),
        ethical="NYYNY",
        justifications="NYNNY",
        ethics_section="Y",
        reb="N",
        safeguards=("P", "CS"),
        harms=("PA",),
        datasets=("Internet Census 2012 (Carna botnet scan)",),
        origin=DataOrigin.VULNERABILITY_EXPLOITATION,
        summary=(
            "Malecot and Inoue analysed Carna probes of their network "
            "telescope, realised the source IPs identified devices "
            "with weak Telnet passwords, and kept those addresses "
            "confidential pending an ethically acceptable disposal."
        ),
    ))
    add(_entry(
        id="carna-census-note",
        category=Category.MALWARE,
        source_label="Carna Scan",
        reference=62,
        year=2014,
        footnotes=("a",),
        peer_reviewed=False,
        legal=("computer-misuse",),
        ethical="NNNNY",
        justifications="NNNNN",
        ethics_section="Y",
        reb="N",
        datasets=("Internet Census 2012 (Carna botnet scan)",),
        origin=DataOrigin.VULNERABILITY_EXPLOITATION,
        summary=(
            "Krenc, Hohlfeld and Feldmann's editorial note found "
            "numerous technical problems with the Carna data and "
            "concluded the scan was unethical to conduct, while still "
            "using the data for their assessment."
        ),
    ))
    add(_entry(
        id="carna-menlo",
        category=Category.MALWARE,
        source_label="Carna Scan",
        reference=27,
        year=2014,
        footnotes=("b",),
        used_data=False,
        legal=("computer-misuse",),
        ethical="YYYYY",
        justifications="NNNNN",
        ethics_section="Y",
        reb="X",
        harms=("RH", "BC"),
        datasets=("Internet Census 2012 (Carna botnet scan)",),
        origin=DataOrigin.VULNERABILITY_EXPLOITATION,
        summary=(
            "Dittrich, Carpenter and Karir applied the Menlo report to "
            "the Carna botnet as a case study, concluding there is a "
            "lack of a common understanding of ethics in the computer "
            "security field; they analysed but did not use the data."
        ),
    ))
    add(_entry(
        id="malware-metrics",
        category=Category.MALWARE,
        source_label="151 malware pieces",
        reference=17,
        year=2016,
        legal=("computer-misuse", "copyright"),
        ethical="NYYYY",
        justifications="NNNNN",
        ethics_section="N",
        reb="N",
        safeguards=("CS",),
        benefits=("R", "U", "AT"),
        datasets=(
            "vxHeaven", "GitHub malware repositories",
            "hacker magazines", "P2P networks",
        ),
        origin=DataOrigin.UNAUTHORIZED_LEAK,
        summary=(
            "Calleja et al. analysed 151 malware samples from 1975 to "
            "2015 with software metrics; they shared a dataset of the "
            "metrics but not the source code itself, enabling "
            "reproducibility without redistributing malware."
        ),
        provenance={
            "legal": (
                "Bullets reconstructed: possession of malware "
                "(computer misuse) and of leaked third-party source "
                "code (copyright), per §4.1.3."
            ),
        },
    ))

    # ----------------------------------------------------------------
    # Password dumps (§4.2) — footnote e expands dataset abbreviations.
    # ----------------------------------------------------------------
    _pw_legal = ("computer-misuse", "data-privacy")
    _pw_prov = {
        "legal": (
            "Bullets reconstructed: the dumps were produced by criminal "
            "compromise, e.g. SQL injection (computer misuse), and "
            "passwords alone can be sensitive personal data (data "
            "privacy), per §4.2."
        ),
    }
    add(_entry(
        id="pcfg-weir",
        category=Category.PASSWORDS,
        source_label="MS + 2 others",
        reference=121,
        year=2009,
        footnotes=("e",),
        legal=_pw_legal,
        ethical="NYYYY",
        justifications="NNNNY",
        ethics_section="N",
        reb="N",
        safeguards=("SS", "P", "CS"),
        harms=("SI", "BC"),
        benefits=("R", "DM"),
        datasets=("MySpace", "two other password lists"),
        summary=(
            "Weir et al. trained probabilistic context-free grammar "
            "crackers on compromised, publicly disclosed password "
            "lists; they treat all lists as confidential and share "
            "them only with legitimate researchers under accepted "
            "ethical standards."
        ),
        provenance=_pw_prov,
    ))
    add(_entry(
        id="guess-again-kelley",
        category=Category.PASSWORDS,
        source_label="MS,RY + 4 others",
        reference=57,
        year=2012,
        footnotes=("e",),
        legal=_pw_legal,
        ethical="YYYYY",
        justifications="YYYYN",
        ethics_section="Y",
        reb="A",
        safeguards=("P",),
        harms=("SI",),
        benefits=("DM",),
        datasets=("MySpace", "RockYou", "four other password lists"),
        summary=(
            "Kelley et al. used two leaked password datasets plus an "
            "REB-approved online survey; they argue already-public "
            "data does not increase harm when no connection to real "
            "identities is sought, and that defenders benefit."
        ),
        provenance=_pw_prov,
    ))
    add(_entry(
        id="tangled-web-das",
        category=Category.PASSWORDS,
        source_label="MS,YV,FB + 7 others",
        reference=24,
        year=2014,
        footnotes=("e",),
        legal=_pw_legal,
        ethical="NYYYY",
        justifications="YYNYN",
        ethics_section="Y",
        reb="A",
        safeguards=("P",),
        harms=("SI",),
        benefits=("DM", "AT"),
        datasets=(
            "MySpace", "Yahoo Voices", "Facebook",
            "seven other password lists",
        ),
        summary=(
            "Das et al. studied password reuse across sites using "
            "several hundred thousand leaked passwords plus an "
            "REB-approved survey, working only with hashed email "
            "addresses to protect privacy."
        ),
        provenance=_pw_prov,
    ))
    add(_entry(
        id="measuring-ur",
        category=Category.PASSWORDS,
        source_label="MS,RY,YV",
        reference=114,
        year=2015,
        footnotes=("e",),
        legal=_pw_legal,
        ethical="NYYYY",
        justifications="NYYYN",
        ethics_section="N",
        reb="N",
        safeguards=("P",),
        harms=("SI",),
        benefits=("DM",),
        datasets=("MySpace", "RockYou", "Yahoo Voices"),
        summary=(
            "Ur et al. used three password dumps to compare real-world "
            "cracking techniques with those in the research "
            "literature, sharing Kelley et al.'s view that public "
            "dumps enable defenders."
        ),
        provenance=_pw_prov,
    ))
    add(_entry(
        id="omen-durmuth",
        category=Category.PASSWORDS,
        source_label="MS,RY,FB",
        reference=31,
        year=2015,
        footnotes=("e",),
        legal=_pw_legal,
        ethical="NYYYY",
        justifications="YYYYN",
        ethics_section="Y",
        reb="N",
        safeguards=("SS", "P"),
        harms=("SI",),
        benefits=("DM",),
        datasets=("MySpace", "RockYou", "Facebook"),
        summary=(
            "Durmuth et al. evaluated the OMEN ordered-Markov cracker "
            "on leaked MySpace, Facebook and RockYou databases, "
            "arguing prior use and public availability, with careful "
            "treatment of the lists."
        ),
        provenance=_pw_prov,
    ))

    # ----------------------------------------------------------------
    # Leaked databases (§4.3)
    # ----------------------------------------------------------------
    add(_entry(
        id="underground-forums-motoyama",
        category=Category.LEAKED_DATABASES,
        source_label="6 underground forums",
        reference=76,
        year=2011,
        legal=(
            "computer-misuse", "copyright", "data-privacy",
            "terrorism", "indecent-images",
        ),
        ethical="YYNYY",
        justifications="NYYNN",
        ethics_section="N",
        reb="N",
        benefits=("U", "DM", "AT"),
        datasets=("Six leaked underground forum databases",),
        summary=(
            "Motoyama et al. presented one of the first analyses of "
            "underground forums using leaked databases, without an "
            "ethics discussion."
        ),
        provenance={
            "legal": (
                "Five bullets reconstructed: hacked forum databases "
                "(computer misuse), full content redistribution "
                "(copyright), members' personal data and private "
                "messages (data privacy), and possible terrorist or "
                "indecent material within unvetted dumps (§3, §4.3.3)."
            ),
        },
    ))
    add(_entry(
        id="carding-forums-yip",
        category=Category.LEAKED_DATABASES,
        source_label="3 carding forums",
        reference=123,
        year=2013,
        legal=(
            "computer-misuse", "copyright", "data-privacy",
            "indecent-images",
        ),
        ethical="NNNYY",
        justifications="NNNNN",
        ethics_section="N",
        reb="N",
        benefits=("DM", "AT"),
        datasets=("Cardersmarket", "Darkmarket", "Shadowcrew"),
        summary=(
            "Yip et al. performed social network analysis on leaked "
            "databases of three carding forums including private "
            "messages; they note the actors are anonymous so informed "
            "consent is not possible, but do not discuss ethics."
        ),
        provenance={
            "legal": (
                "Four bullets reconstructed: as for underground forums "
                "but without the terrorism column (carding forums "
                "focus on financial information trading), per §4.3.3."
            ),
        },
    ))
    add(_entry(
        id="twbooter-karami",
        category=Category.LEAKED_DATABASES,
        source_label="TwBooter",
        reference=54,
        year=2013,
        legal=("computer-misuse", "copyright", "data-privacy"),
        ethical="YYYNN",
        justifications="YYYNN",
        ethics_section="Y",
        reb="N",
        safeguards=("P",),
        harms=("SI",),
        datasets=("TwBooter database dump",),
        summary=(
            "Karami and McCoy analysed a database dump of the "
            "TwBooter DDoS-for-hire service, publishing no personally "
            "identifiable data except what was already public."
        ),
        provenance={
            "legal": (
                "Three bullets reconstructed: hacked booter database "
                "(computer misuse), database redistribution "
                "(copyright), user accounts / IP logs / payment "
                "records (data privacy), per §4.3.1."
            ),
        },
    ))
    add(_entry(
        id="booters-santanna",
        category=Category.LEAKED_DATABASES,
        source_label="TwBooter, 14 others",
        reference=93,
        year=2015,
        legal=("computer-misuse", "copyright", "data-privacy"),
        ethical="YYYYY",
        justifications="YYYNN",
        ethics_section="Y",
        reb="N",
        safeguards=("P",),
        harms=("SI",),
        datasets=("15 booter database dumps",),
        summary=(
            "Santanna et al. analysed database dumps from 15 distinct "
            "booters, using Karami's procedures as the ethical "
            "justification."
        ),
        provenance={
            "legal": "As for TwBooter (§4.3.1).",
            "year": (
                "The text extraction of the Year column is ambiguous; "
                "we follow the reference metadata (IFIP/IEEE IM 2015)."
            ),
        },
    ))
    add(_entry(
        id="booters-karami-stress",
        category=Category.LEAKED_DATABASES,
        source_label="Asylum, Lizard, Vdos",
        reference=55,
        year=2016,
        legal=("computer-misuse", "copyright", "data-privacy"),
        ethical="YYYYY",
        justifications="YNYNN",
        ethics_section="Y",
        reb="E",
        safeguards=("P",),
        harms=("SI",),
        datasets=(
            "Asylum database dump", "LizardStresser database dump",
            "VDOS scraped data",
        ),
        summary=(
            "Karami et al. analysed dumps from Asylum and "
            "LizardStresser and scraped data from VDOS, obtaining an "
            "REB exemption on the basis the data contained no "
            "personally identifiable information and was publicly "
            "leaked — though the dumps likely contained email "
            "addresses, and IP addresses may be personal data in some "
            "jurisdictions."
        ),
        provenance={
            "legal": "As for TwBooter (§4.3.1).",
            "year": (
                "The text extraction of the Year column is ambiguous; "
                "we follow the reference metadata (WWW 2016)."
            ),
        },
        exemption_reason=(
            "these data did not contain any personally identifiable "
            "information and used publicly leaked data"
        ),
    ))
    add(_entry(
        id="patreon",
        category=Category.LEAKED_DATABASES,
        source_label="Patreon",
        reference=85,
        year=2016,
        footnotes=("c",),
        used_data=False,
        legal=("computer-misuse", "copyright", "data-privacy"),
        ethical="YYYYY",
        justifications="NYDNY",
        ethics_section="Y",
        reb="X",
        harms=("SI", "RH"),
        benefits=("U", "AT"),
        datasets=("Patreon site dump (2015 hack)",),
        summary=(
            "Poor and Davidson, already scraping Patreon, concluded it "
            "would be unethical to use the hacked full-site dump: they "
            "could not distinguish public from private data, use might "
            "legitimise criminal activity, and the data was not "
            "necessary since scraping sufficed."
        ),
        provenance={
            "legal": (
                "Three bullets reconstructed: hacked site (computer "
                "misuse), site content and source code (copyright), "
                "private messages and user records (data privacy), per "
                "§4.3.2."
            ),
        },
    ))
    add(_entry(
        id="udp-ddos-thomas",
        category=Category.LEAKED_DATABASES,
        source_label="Vdos, CMDBooter",
        reference=110,
        year=2017,
        legal=("computer-misuse", "data-privacy"),
        ethical="YYYYY",
        justifications="NNYNY",
        ethics_section="Y",
        reb="E",
        safeguards=("P", "CS"),
        harms=("SI", "BC"),
        benefits=("U", "AT"),
        datasets=("VDOS database dump", "CMDBooter database dump"),
        summary=(
            "Thomas et al. used booter database dumps and scraped data "
            "to evaluate the coverage of honeypot-based DDoS "
            "measurement, arguing there was no other ground truth on "
            "booter-initiated attacks; exempted by their REB."
        ),
        provenance={
            "legal": (
                "Two bullets reconstructed: booter attack logs "
                "(computer misuse) and attack-log IP addresses (data "
                "privacy), per §4.3.1."
            ),
        },
        exemption_reason="no human subjects or ethical concerns",
    ))
    add(_entry(
        id="cybercrime-markets-portnoff",
        category=Category.LEAKED_DATABASES,
        source_label="4 underground forums",
        reference=86,
        year=2017,
        legal=(
            "computer-misuse", "copyright", "data-privacy",
            "terrorism", "indecent-images",
        ),
        ethical="YNNYY",
        justifications="NNNNN",
        ethics_section="N",
        reb="N",
        benefits=("R", "DM", "AT"),
        datasets=("Four underground forum databases",),
        summary=(
            "Portnoff et al. built automated analysis tools for "
            "cybercriminal markets over four forum datasets; some of "
            "the underlying leaked datasets have been publicly "
            "re-released including private information."
        ),
        provenance={
            "legal": "As for the Motoyama forum row (§4.3.3).",
        },
    ))

    # ----------------------------------------------------------------
    # Classified materials (§4.5)
    # ----------------------------------------------------------------
    _manning_legal = (
        "computer-misuse", "data-privacy", "terrorism",
        "national-security",
    )
    _manning_prov = {
        "legal": (
            "Four bullets reconstructed: exfiltration from government "
            "systems (computer misuse), cable contents naming "
            "individuals (data privacy), war/terrorism-related "
            "material (terrorism) and classified status (national "
            "security). Copyright is excluded because US government "
            "works carry no copyright (§4.5.2 Vault 7 discussion)."
        ),
    }
    add(_entry(
        id="manning-berger",
        category=Category.CLASSIFIED,
        source_label="Manning Wikileaks",
        reference=12,
        year=2015,
        legal=_manning_legal,
        ethical="NNNNN",
        justifications="NNNNN",
        ethics_section="N",
        reb="N",
        datasets=("Manning WikiLeaks cables",),
        summary=(
            "Berger referenced several Manning cables to study "
            "international restrictions on the North Korean arms "
            "trade, without discussing the ethics of doing so."
        ),
        provenance=_manning_prov,
    ))
    add(_entry(
        id="manning-barnard",
        category=Category.CLASSIFIED,
        source_label="Manning Wikileaks",
        reference=9,
        year=2016,
        footnotes=("a",),
        peer_reviewed=False,
        legal=_manning_legal,
        ethical="NNNNN",
        justifications="NYNNN",
        ethics_section="Y",
        reb="N",
        datasets=("Manning WikiLeaks cables",),
        summary=(
            "Barnard borrowed classified documents from WikiLeaks to "
            "analyse covert US-South Africa relationships, claiming no "
            "ethical dilemma because the data was open source and "
            "declassified — though there is no evidence of "
            "declassification."
        ),
        provenance=_manning_prov,
    ))
    add(_entry(
        id="manning-talarico",
        category=Category.CLASSIFIED,
        source_label="Manning Wikileaks",
        reference=105,
        year=2017,
        legal=_manning_legal,
        ethical="NNNNN",
        justifications="NNNNN",
        ethics_section="N",
        reb="N",
        datasets=("Manning WikiLeaks cables",),
        summary=(
            "Talarico and Zamparini used a confidential American "
            "Embassy document obtained through WikiLeaks in their "
            "analysis of tobacco smuggling in Italy, without ethical "
            "discussion."
        ),
        provenance=_manning_prov,
    ))
    _snowden_legal = (
        "computer-misuse", "copyright", "data-privacy", "terrorism",
        "national-security",
    )
    _snowden_prov = {
        "legal": (
            "Five bullets reconstructed: exfiltration from NSA systems "
            "(computer misuse), GCHQ material under Crown copyright "
            "(copyright), surveillance data about individuals (data "
            "privacy), counter-terrorism material (terrorism) and "
            "classified status (national security), per §4.5.2."
        ),
    }
    add(_entry(
        id="snowden-landau",
        category=Category.CLASSIFIED,
        source_label="Snowden NSA leaks",
        reference=64,
        year=2013,
        legal=_snowden_legal,
        ethical="NNNNY",
        justifications="NYNNY",
        ethics_section="N",
        reb="N",
        datasets=("Snowden NSA/GCHQ documents",),
        summary=(
            "Landau surveyed what the Snowden documents revealed, "
            "criticising the ethics of some individual leaks while "
            "being mostly positive about Snowden's actions."
        ),
        provenance=_snowden_prov,
    ))
    add(_entry(
        id="snowden-schneier",
        category=Category.CLASSIFIED,
        source_label="Snowden NSA leaks",
        reference=95,
        year=2013,
        footnotes=("a",),
        peer_reviewed=False,
        legal=_snowden_legal,
        ethical="NNNNN",
        justifications="NNNNN",
        ethics_section="N",
        reb="N",
        datasets=("Snowden NSA/GCHQ documents",),
        summary=(
            "Schneier used Snowden documents in a newspaper article to "
            "explain how the NSA exploits Tor users' browsers, with no "
            "mention of the ethics of using the leaked material."
        ),
        provenance=_snowden_prov,
    ))
    add(_entry(
        id="snowden-rfc7624",
        category=Category.CLASSIFIED,
        source_label="Snowden NSA leaks",
        reference=10,
        year=2015,
        legal=_snowden_legal,
        ethical="NNNYY",
        justifications="NNNYN",
        ethics_section="N",
        reb="N",
        datasets=("Snowden NSA/GCHQ documents",),
        summary=(
            "RFC 7624 used the Snowden leaks to build a threat model "
            "for pervasive surveillance so that protocol design can "
            "make the revealed activities more difficult in future."
        ),
        provenance=_snowden_prov,
        cell_notes={
            "fight-malicious-use": TABLE1_FOOTNOTES["d"],
        },
    ))
    add(_entry(
        id="snowden-walsh",
        category=Category.CLASSIFIED,
        source_label="Snowden NSA leaks",
        reference=118,
        year=2016,
        legal=_snowden_legal,
        ethical="NNNNN",
        justifications="NNNNN",
        ethics_section="N",
        reb="N",
        datasets=("Snowden NSA/GCHQ documents",),
        summary=(
            "Walsh and Miller provided an ethical and policy analysis "
            "of intelligence-agency activity based on what Snowden "
            "revealed, without discussing the ethics of using the "
            "leaked material itself."
        ),
        provenance=_snowden_prov,
    ))

    # ----------------------------------------------------------------
    # Financial data (§4.4)
    # ----------------------------------------------------------------
    _panama_legal = (
        "computer-misuse", "copyright", "data-privacy",
        "national-security",
    )
    _panama_prov = {
        "legal": (
            "Four bullets reconstructed: the firm's database was "
            "exfiltrated (computer misuse), internal documents are "
            "copyright works (copyright), client records identify "
            "individuals (data privacy); the fourth bullet is the "
            "least certain reconstruction and is coded as national "
            "security given the implication of world leaders and "
            "state-linked actors (§4.4)."
        ),
    }
    add(_entry(
        id="panama-omartian",
        category=Category.FINANCIAL,
        source_label="Mossack Fonseca database",
        reference=82,
        year=2016,
        legal=_panama_legal,
        ethical="NNNYY",
        justifications="NNNNY",
        ethics_section="N",
        reb="N",
        benefits=("DM",),
        datasets=("Panama Papers (Mossack Fonseca leak)",),
        summary=(
            "Omartian used the Panama papers to study investor "
            "response to tax-information-exchange legislation, "
            "treating the legislation as natural experiments on "
            "offshore entity usage."
        ),
        provenance=_panama_prov,
    ))
    add(_entry(
        id="panama-odonovan",
        category=Category.FINANCIAL,
        source_label="Mossack Fonseca database",
        reference=79,
        year=2016,
        legal=_panama_legal,
        ethical="NYNNY",
        justifications="NNNNY",
        ethics_section="N",
        reb="N",
        harms=("BC",),
        datasets=("Panama Papers (Mossack Fonseca leak)",),
        summary=(
            "O'Donovan et al. evaluated the impact of the Panama "
            "papers on firm values, finding the leak reduced the "
            "market capitalisation of 397 implicated firms by about "
            "US$135 billion (0.7%)."
        ),
        provenance=_panama_prov,
    ))

    return tuple(rows)


def table1_corpus() -> Corpus:
    """Build the full Table 1 corpus with the paper's codebook."""
    return Corpus(paper_codebook(), table1_entries())
