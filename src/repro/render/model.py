"""The report data model shared by every report renderer.

:func:`build_report_model` assembles everything a report needs —
the Table 1 layout (the same :class:`~repro.tables.layout.TableLayout`
the text/markdown/LaTeX renderers consume), the recomputed §5
statistics, the paper-claim verification results, and per-category
breakdowns — into one frozen :class:`ReportModel`. Renderers
serialise the model without re-deriving any semantics, so report
formats cannot drift from the terminal table formats.
"""

from __future__ import annotations

import dataclasses

from ..analysis.section5 import (
    ClaimCheck,
    Section5Statistics,
    section5_statistics,
    verify_section5,
)
from ..corpus import CaseStudyEntry, Corpus
from ..tables.layout import TableLayout, build_table1_layout

__all__ = ["CategoryBreakdown", "ReportModel", "build_report_model"]


@dataclasses.dataclass(frozen=True)
class CategoryBreakdown:
    """Aggregates for one Table 1 row-group category."""

    category: str
    entries: int
    papers: int
    ethics_sections: int
    reb_engaged: int
    safeguard_counts: dict[str, int]
    entry_ids: tuple[str, ...]


@dataclasses.dataclass(frozen=True)
class ReportModel:
    """Everything a report renderer needs, fully precomputed.

    ``corpus_digest`` is the BLAKE2b content digest of the corpus
    (see :meth:`repro.ops.context.RunContext.corpus_digest`) embedded
    as provenance: two reports with the same digest were rendered
    from byte-identical corpus content.
    """

    title: str
    corpus_digest: str
    layout: TableLayout
    statistics: Section5Statistics
    checks: tuple[ClaimCheck, ...]
    categories: tuple[CategoryBreakdown, ...]


def _breakdown(
    category: str, entries: tuple[CaseStudyEntry, ...]
) -> CategoryBreakdown:
    safeguards: dict[str, int] = {}
    for entry in entries:
        for abbrev in entry.codes("safeguards"):
            safeguards[abbrev] = safeguards.get(abbrev, 0) + 1
    return CategoryBreakdown(
        category=category,
        entries=len(entries),
        papers=sum(1 for e in entries if e.is_paper),
        ethics_sections=sum(
            1 for e in entries if e.is_paper and e.has_ethics_section
        ),
        reb_engaged=sum(
            1
            for e in entries
            if e.reb_status.value in ("exempt", "approved")
        ),
        safeguard_counts=dict(sorted(safeguards.items())),
        entry_ids=tuple(e.id for e in entries),
    )


def build_report_model(
    corpus: Corpus, digest: str = "", title: str | None = None
) -> ReportModel:
    """Assemble the full report model from a coded corpus.

    Pure and deterministic: the output depends only on the corpus
    content and the arguments, never on the clock or environment.
    """
    categories: list[CategoryBreakdown] = []
    seen: list[str] = []
    for entry in corpus:
        if entry.category not in seen:
            seen.append(entry.category)
    for category in seen:
        categories.append(
            _breakdown(category, corpus.by_category(category))
        )
    return ReportModel(
        title=title
        or (
            "Ethical issues in research using datasets of illicit "
            "origin — coded corpus report"
        ),
        corpus_digest=digest,
        layout=build_table1_layout(corpus),
        statistics=section5_statistics(corpus),
        checks=tuple(verify_section5(corpus)),
        categories=tuple(categories),
    )
