"""The deterministic single-file static HTML report.

:func:`render_html_report` serialises a
:class:`~repro.render.model.ReportModel` into one self-contained HTML
document: inline CSS, no scripts, no external resources, and — by
construction — no timestamps or randomness, so rendering the same
corpus twice (or through the batch executor at any worker count)
produces byte-identical files. The corpus content digest is embedded
in the provenance footer so a report can be tied back to the exact
corpus bytes it was rendered from.
"""

from __future__ import annotations

import dataclasses
import html as _html

from ..tables.renderers import render_html as _render_table_html
from .model import ReportModel

__all__ = ["render_html_report"]

#: Inline stylesheet. Static text — part of the byte-stability
#: contract, so edits here intentionally change the report bytes.
_CSS = """\
body { font-family: Georgia, 'Times New Roman', serif; margin: 2rem auto;
       max-width: 72rem; color: #1a1a1a; line-height: 1.5; }
h1 { font-size: 1.5rem; border-bottom: 2px solid #1a1a1a; }
h2 { font-size: 1.2rem; margin-top: 2rem; }
table { border-collapse: collapse; font-size: 0.85rem; }
caption { caption-side: top; text-align: left; font-style: italic;
          padding-bottom: 0.5rem; }
th, td { border: 1px solid #999; padding: 0.15rem 0.4rem; }
th { background: #eee; }
pre { background: #f6f6f6; padding: 0.5rem; font-size: 0.8rem;
      overflow-x: auto; }
.ok { color: #1a6b1a; }
.fail { color: #a11a1a; font-weight: bold; }
.counts td:last-child { text-align: right; }
footer { margin-top: 3rem; border-top: 1px solid #999;
         font-size: 0.8rem; color: #555; }
code { font-family: 'DejaVu Sans Mono', monospace; }
"""

#: Human-readable labels for the scalar §5 statistics, in report
#: order. Every non-dict field of Section5Statistics must appear here
#: (asserted in tests) so new statistics cannot silently drop out of
#: the report.
_SCALAR_LABELS = {
    "total_entries": "Table 1 entries",
    "total_papers": "Peer-production papers (§5.5 denominator)",
    "reb_exempt": "REB exempt",
    "reb_approved": "REB approved",
    "reb_not_mentioned": "REB not mentioned",
    "reb_not_applicable": "REB not applicable",
    "ethics_sections": "Papers with explicit ethics sections",
    "controlled_sharing": "Papers discussing controlled sharing",
    "exempt_entries": "REB-exempt entries",
    "approved_entries": "REB-approved entries",
    "exempt_used_safeguards": "Exempt works used safeguards",
    "exempt_identified_harms": "Exempt works identified harms",
    "approved_also_did_surveys": "Approvals obtained for surveys",
    "most_common_safeguard": "Most common safeguard",
    "most_common_harm": "Most common harm",
    "most_common_benefit": "Most common benefit",
    "harms_mentions": "Total harm mentions",
    "benefits_mentions": "Total benefit mentions",
}

#: Section headings for the per-dimension count tables.
_COUNT_LABELS = {
    "safeguard_counts": "Safeguards applied",
    "harm_counts": "Harms identified",
    "benefit_counts": "Benefits identified",
    "justification_counts": "Justifications discussed",
    "ethical_issue_counts": "Ethical issues discussed",
    "legal_issue_counts": "Legal issues applicable",
}


def _cell(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, tuple):
        return ", ".join(str(v) for v in value)
    if isinstance(value, (set, frozenset)):
        # Set iteration order varies with the process hash seed;
        # sorting keeps the report bytes stable across runs.
        return ", ".join(sorted(str(v) for v in value))
    return str(value)


def _scalar_rows(model: ReportModel) -> list[str]:
    rows: list[str] = []
    for field in dataclasses.fields(model.statistics):
        if field.name in _COUNT_LABELS:
            continue
        label = _SCALAR_LABELS.get(field.name, field.name)
        value = getattr(model.statistics, field.name)
        rows.append(
            f"    <tr><td>{_html.escape(label)}</td>"
            f"<td><code>{_html.escape(_cell(value))}</code></td></tr>"
        )
    return rows


def _count_table(title: str, counts: dict[str, int]) -> list[str]:
    parts = [
        '  <table class="counts">',
        f"    <caption>{_html.escape(title)}</caption>",
        "    <tr><th>Code</th><th>Papers</th></tr>",
    ]
    for key, value in counts.items():
        parts.append(
            f"    <tr><td>{_html.escape(key)}</td><td>{value}</td></tr>"
        )
    parts.append("  </table>")
    return parts


def _category_section(model: ReportModel) -> list[str]:
    parts = [
        "  <table>",
        "    <caption>Per-category breakdown</caption>",
        "    <tr><th>Category</th><th>Entries</th><th>Papers</th>"
        "<th>Ethics sections</th><th>REB engaged</th>"
        "<th>Safeguards</th></tr>",
    ]
    for cat in model.categories:
        safeguards = ", ".join(
            f"{abbrev}&times;{count}"
            for abbrev, count in cat.safeguard_counts.items()
        )
        parts.append(
            f"    <tr><td>{_html.escape(cat.category)}</td>"
            f"<td>{cat.entries}</td><td>{cat.papers}</td>"
            f"<td>{cat.ethics_sections}</td><td>{cat.reb_engaged}</td>"
            f"<td>{safeguards}</td></tr>"
        )
    parts.append("  </table>")
    return parts


def _verification_section(model: ReportModel) -> list[str]:
    parts = [
        "  <table>",
        "    <caption>Paper-claim verification "
        "(recomputed vs published)</caption>",
        "    <tr><th>Claim</th><th>Paper</th><th>Measured</th>"
        "<th>Status</th></tr>",
    ]
    for check in model.checks:
        status = (
            '<span class="ok">OK</span>'
            if check.ok
            else '<span class="fail">FAIL</span>'
        )
        parts.append(
            f"    <tr><td>{_html.escape(check.claim)}</td>"
            f"<td><code>{_html.escape(_cell(check.expected))}</code></td>"
            f"<td><code>{_html.escape(_cell(check.measured))}</code></td>"
            f"<td>{status}</td></tr>"
        )
    parts.append("  </table>")
    return parts


def render_html_report(model: ReportModel) -> str:
    """Render the model as one self-contained HTML document.

    Pure: the output is a function of the model alone. The document
    embeds Table 1 (via the shared table layout), every §5 statistic,
    the per-category breakdowns, the claim-verification results and
    the corpus digest, and ends with a trailing newline so the bytes
    round-trip cleanly through POSIX text tools.
    """
    stats = model.statistics
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en">',
        "<head>",
        '<meta charset="utf-8">',
        f"<title>{_html.escape(model.title)}</title>",
        f"<style>\n{_CSS}</style>",
        "</head>",
        "<body>",
        f"<h1>{_html.escape(model.title)}</h1>",
        "<p>Static reproduction report for Thomas, Pastrana, "
        "Hutchings, Clayton &amp; Beresford, <em>Ethical issues in "
        "research using datasets of illicit origin</em>, IMC 2017. "
        "Every number below is recomputed from the coded corpus — "
        "nothing is transcribed from the paper except the expected "
        "values in the verification table.</p>",
        "<h2>Table 1 — the coded corpus</h2>",
    ]
    parts.append(_render_table_html(model.layout, legend=True))
    parts.append("<h2>§5 statistics</h2>")
    parts.append("  <table>")
    parts.append("    <caption>Scalar claims</caption>")
    parts.extend(_scalar_rows(model))
    parts.append("  </table>")
    for field_name, title in _COUNT_LABELS.items():
        parts.extend(_count_table(title, getattr(stats, field_name)))
    parts.append("<h2>Per-category breakdown</h2>")
    parts.extend(_category_section(model))
    parts.append("<h2>Verification</h2>")
    parts.extend(_verification_section(model))
    parts.extend(
        [
            "<footer>",
            "  <p>Provenance: corpus content digest "
            f"<code>{_html.escape(model.corpus_digest)}</code> "
            f"over {stats.total_entries} entries. This report is a "
            "pure function of the corpus: rendering the same digest "
            "always yields byte-identical HTML (no timestamps, no "
            "randomness, any batch worker count).</p>",
            "</footer>",
            "</body>",
            "</html>",
        ]
    )
    return "\n".join(parts) + "\n"
