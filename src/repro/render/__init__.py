"""Static report rendering: deterministic, self-contained artifacts.

The package turns a coded corpus into shareable documents — currently
a single-file static HTML report embedding Table 1, every §5
statistic, per-category breakdowns and the corpus content digest as
provenance. Rendering is a pure function of the corpus: no
timestamps, no randomness, no environment reads, so the same corpus
always produces byte-identical output (at any batch worker count).
"""

from __future__ import annotations

from .html import render_html_report
from .model import CategoryBreakdown, ReportModel, build_report_model

__all__ = [
    "CategoryBreakdown",
    "ReportModel",
    "build_report_model",
    "render_html_report",
]
