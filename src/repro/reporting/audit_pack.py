"""One-call generation of the complete governance document pack.

For a project that survives assessment, the researcher needs four
documents plus two annexes; this module produces all of them
consistently from a single :class:`EthicsAssessment`:

* the ethics section (for the paper),
* the REB application (for the board),
* the data-management plan (for the institution),
* a human-rights annex (when rights are engaged),
* a travel advisory annex (when an itinerary is supplied),
* a checklist report.
"""

from __future__ import annotations

from ..assessment import EthicsAssessment, publication_checklist
from ..legal import Jurisdiction, JurisdictionSet, travel_advisory
from .dmp import generate_data_management_plan
from .ethics_section import generate_ethics_section
from .reb_application import generate_reb_application

__all__ = ["generate_audit_pack"]


def _rights_annex(assessment: EthicsAssessment) -> str:
    lines = ["HUMAN-RIGHTS ANNEX", "=" * 18]
    if not assessment.rights_risks:
        lines.append(
            "No rights of data subjects were assessed as engaged "
            "by this research design."
        )
        return "\n".join(lines)
    lines.append(
        "The following rights (UDHR) are engaged; each entry states "
        "the mechanism and must be addressed in review:"
    )
    for risk in assessment.rights_risks:
        lines.append(
            f"- {risk.right.name} (Article "
            f"{risk.right.udhr_article}): {risk.mechanism}"
        )
    return "\n".join(lines)


def generate_audit_pack(
    assessment: EthicsAssessment,
    *,
    home: Jurisdiction | None = None,
    travel_destinations: JurisdictionSet | None = None,
) -> dict[str, str]:
    """All governance documents as a name → text mapping.

    The travel annex is included only when both *home* and
    *travel_destinations* are given.
    """
    pack: dict[str, str] = {
        "ethics-section": generate_ethics_section(assessment),
        "reb-application": generate_reb_application(assessment),
        "data-management-plan": generate_data_management_plan(
            assessment.project
        ),
        "rights-annex": _rights_annex(assessment),
        "checklist": publication_checklist().report(assessment),
    }
    if home is not None and travel_destinations is not None:
        advisory = travel_advisory(
            assessment.project.profile,
            home=home,
            destinations=travel_destinations,
        )
        pack["travel-advisory"] = advisory.describe()
    return pack
