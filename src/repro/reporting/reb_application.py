"""REB application generator.

Turns an assessment into the structured application document an REB
administrator expects: project summary, stakeholder analysis with
consent status, the Menlo findings, the multi-party risk-benefit
grid, legal analysis, planned safeguards and the ask (approval /
exemption with reasons). Encodes the paper's position that exemption
requests should be argued from risk, not from the absence of "human
subjects".
"""

from __future__ import annotations

from .._util import wrap_text
from ..assessment import EthicsAssessment

__all__ = ["generate_reb_application"]


def _heading(title: str) -> list[str]:
    return ["", title, "-" * len(title)]


def generate_reb_application(assessment: EthicsAssessment) -> str:
    """Render the full REB application as plain text."""
    project = assessment.project
    lines: list[str] = [
        "RESEARCH ETHICS BOARD APPLICATION",
        "=" * 33,
        f"Project: {project.title}",
    ]
    lines.extend(
        wrap_text(f"Research question: {project.research_question}")
    )
    lines.extend(wrap_text(f"Data: {project.data_description}"))

    lines.extend(_heading("1. Stakeholders and consent"))
    for stakeholder in project.stakeholders:
        lines.extend(
            wrap_text(
                f"{stakeholder.name} ({stakeholder.role}; consent: "
                f"{stakeholder.consent}"
                + ("; vulnerable" if stakeholder.vulnerable else "")
                + ")",
                indent="  ",
            )
        )

    lines.extend(_heading("2. Risk-benefit analysis (multi-party)"))
    lines.append(assessment.grid.render_text())

    lines.extend(_heading("3. Menlo principles"))
    for finding in assessment.menlo:
        lines.append(finding.describe())

    lines.extend(_heading("4. Legal analysis"))
    lines.extend(
        wrap_text(
            f"Overall residual legal risk: "
            f"{assessment.legal.overall_risk}. Applicable issues: "
            + (
                ", ".join(assessment.applicable_legal_issues)
                or "none"
            )
            + "."
        )
    )

    lines.extend(_heading("5. Safeguards"))
    codes = project.safeguards.codes()
    lines.extend(
        wrap_text(
            "Planned safeguard families: "
            + (", ".join(codes) if codes else "none declared")
            + " (SS secure storage, P privacy, CS controlled sharing)."
        )
    )
    if project.safeguards.acceptable_use_policy:
        lines.extend(
            wrap_text(
                "Acceptable usage policy (citable): "
                + project.safeguards.acceptable_use_policy
            )
        )

    lines.extend(_heading("6. Request"))
    if assessment.grid.total_risk() == 0 and not project.harms:
        lines.extend(
            wrap_text(
                "We request EXEMPTION. Grounds: the residual risk to "
                "humans is nil after safeguards — not merely the "
                "absence of direct human subjects, which we accept "
                "is an insufficient basis (Thomas et al. 2017, §6)."
            )
        )
    else:
        lines.extend(
            wrap_text(
                "We request APPROVAL. The work has potential to "
                "affect humans even though there are no direct human "
                "subjects; we therefore seek review on a risk basis "
                "and will comply with any conditions the board sets."
            )
        )
    if assessment.required_actions:
        lines.extend(_heading("7. Open actions from self-assessment"))
        for action in assessment.required_actions:
            lines.extend(wrap_text(f"- {action}", indent="  "))
    return "\n".join(lines)
