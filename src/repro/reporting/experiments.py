"""Experiment report builder: paper-vs-measured for every artifact.

Runs the complete reproduction battery (Table 1 regeneration, every
§5 claim, the legal reconstruction, the REB policy ablation) and
renders a paper-vs-measured report — the generator behind
EXPERIMENTS.md and the integration test of the whole pipeline.
"""

from __future__ import annotations

import dataclasses

from ..analysis import section5_statistics, verify_section5
from ..assessment import validate_legal_reconstruction
from ..corpus import Corpus, table1_corpus
from ..reb import run_policy_experiment
from ..tables import render_table1

__all__ = ["ExperimentOutcome", "run_reproduction", "render_report"]


@dataclasses.dataclass(frozen=True)
class ExperimentOutcome:
    """One experiment's result."""

    experiment_id: str
    description: str
    expected: str
    measured: str
    passed: bool


def run_reproduction(
    corpus: Corpus | None = None,
) -> list[ExperimentOutcome]:
    """Run E1–E3-style checks and return the outcomes."""
    corpus = corpus or table1_corpus()
    outcomes: list[ExperimentOutcome] = []

    # E1: Table 1 regenerates with the right shape.
    table = render_table1(corpus, "csv")
    rows = table.strip().splitlines()
    outcomes.append(
        ExperimentOutcome(
            experiment_id="E1",
            description="Table 1 regenerated (30 rows, 5 categories)",
            expected="30 data rows",
            measured=f"{len(rows) - 1} data rows",
            passed=len(rows) - 1 == 30,
        )
    )

    # E2–E8: the §5 claims.
    for check in verify_section5(corpus):
        outcomes.append(
            ExperimentOutcome(
                experiment_id="E2-E8",
                description=f"§5 claim: {check.claim}",
                expected=repr(check.expected),
                measured=repr(check.measured),
                passed=check.ok,
            )
        )

    # E10: legal reconstruction.
    legal_checks = validate_legal_reconstruction(corpus)
    failures = [c for c in legal_checks if not c.ok]
    outcomes.append(
        ExperimentOutcome(
            experiment_id="E10",
            description=(
                "legal bullets re-derived from data profiles for all "
                "30 entries"
            ),
            expected="0 mismatches",
            measured=f"{len(failures)} mismatches",
            passed=not failures,
        )
    )

    # E13: REB policy ablation.
    comparison = run_policy_experiment(corpus)
    outcomes.append(
        ExperimentOutcome(
            experiment_id="E13",
            description=(
                "risk-based REB trigger dominates the human-subjects "
                "trigger"
            ),
            expected="risk-based reviews a superset incl. the two "
            "exempted studies",
            measured=comparison.describe(),
            passed=comparison.risk_based_dominates
            and {"booters-karami-stress", "udp-ddos-thomas"}
            <= set(comparison.flipped),
        )
    )
    return outcomes


def render_report(corpus: Corpus | None = None) -> str:
    """The paper-vs-measured report as Markdown."""
    corpus = corpus or table1_corpus()
    outcomes = run_reproduction(corpus)
    stats = section5_statistics(corpus)
    lines = [
        "# Reproduction report",
        "",
        "| Exp | Check | Paper | Measured | OK |",
        "|---|---|---|---|---|",
    ]
    for outcome in outcomes:
        ok = "yes" if outcome.passed else "**NO**",
        lines.append(
            f"| {outcome.experiment_id} | {outcome.description} | "
            f"{outcome.expected} | {outcome.measured} | {ok[0]} |"
        )
    lines.extend(
        [
            "",
            "## Code profiles (measured)",
            "",
            f"- Safeguards: {stats.safeguard_counts}",
            f"- Harms: {stats.harm_counts}",
            f"- Benefits: {stats.benefit_counts}",
            f"- Justifications: {stats.justification_counts}",
        ]
    )
    return "\n".join(lines)
