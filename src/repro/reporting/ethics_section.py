"""Ethics-section generator (§6: "papers using data of illicit origin
should always have an ethics section, explaining how these data were
obtained, how it has been protected, analysing the harms, benefits,
and need for using such data").

Generates publication-ready prose from an
:class:`~repro.assessment.engine.EthicsAssessment`, covering exactly
the elements the paper requires, plus the AUP citation when one
exists (the §6 recommendation that usage policies be citable).
"""

from __future__ import annotations

from .._util import oxford_join
from ..assessment import EthicsAssessment
from ..codebook.paper import BENEFIT_CODES, HARM_CODES
from ..corpus import DataOrigin
from ..errors import ReportingError

__all__ = ["generate_ethics_section"]

_ORIGIN_PHRASES = {
    DataOrigin.VULNERABILITY_EXPLOITATION: (
        "was originally obtained through the exploitation of a "
        "vulnerability in a computer system"
    ),
    DataOrigin.UNINTENDED_DISCLOSURE: (
        "became available through an unintended disclosure by the "
        "data owner"
    ),
    DataOrigin.UNAUTHORIZED_LEAK: (
        "was leaked without authorization by someone with access to "
        "the data"
    ),
}

_HARM_NAMES = {code.abbrev: code.name.lower() for code in HARM_CODES}
_BENEFIT_NAMES = {
    code.abbrev: code.name.lower() for code in BENEFIT_CODES
}


def generate_ethics_section(assessment: EthicsAssessment) -> str:
    """Render the assessment as an ethics section.

    The output is structured prose: provenance, stakeholders, harms
    and safeguards, benefits and justification, legal position, and
    REB status.
    """
    project = assessment.project
    paragraphs: list[str] = []

    # Provenance — "how these data were obtained".
    origin = _ORIGIN_PHRASES.get(project.profile.origin)
    if origin is None:  # pragma: no cover - guarded by DataProfile
        raise ReportingError("unknown data origin")
    paragraphs.append(
        f"Ethical considerations. {project.data_description} The "
        f"dataset {origin}; we took no part in that collection and "
        "obtained the data only after it became available."
    )

    # Stakeholders.
    primary = oxford_join(
        [s.name for s in project.stakeholders.primary]
    )
    secondary = oxford_join(
        [s.name for s in project.stakeholders.secondary]
    )
    stakeholder_text = (
        f"The primary stakeholders are {primary}."
        if primary
        else "No primary stakeholders were identified."
    )
    if secondary:
        stakeholder_text += (
            f" Secondary stakeholders include {secondary}."
        )
    consentless = project.stakeholders.unprotected()
    if consentless:
        stakeholder_text += (
            " Informed consent could not be obtained from "
            f"{oxford_join([s.name for s in consentless])}; their "
            "interests are protected through the safeguards below"
            + (
                " and the oversight of our Research Ethics Board."
                if project.reb_approved
                else "."
            )
        )
    paragraphs.append(stakeholder_text)

    # Harms and safeguards — "how it has been protected".
    if project.harms:
        kinds = sorted({h.kind for h in project.harms})
        harm_text = (
            "We identified the following potential harms: "
            + oxford_join([_HARM_NAMES[k] for k in kinds])
            + "."
        )
    else:
        harm_text = (
            "We did not identify concrete harms; we record this "
            "explicitly rather than leaving the analysis implicit."
        )
    controls: list[str] = []
    safeguards = project.safeguards
    if safeguards.secure_storage or safeguards.encryption_at_rest:
        controls.append(
            "the data is stored encrypted with access restricted to "
            "named researchers"
        )
    if safeguards.privacy_preserved:
        controls.append(
            "we do not attempt to deanonymise anyone and no "
            "identities are revealed in our results"
        )
    if safeguards.pseudonymisation:
        controls.append("identifiers are pseudonymised before analysis")
    if safeguards.data_minimisation:
        controls.append(
            "we retain only the fields our research questions require"
        )
    if safeguards.retention_limit_days:
        controls.append(
            "the data will be destroyed after "
            f"{safeguards.retention_limit_days} days"
        )
    if controls:
        harm_text += (
            " As safeguards, " + oxford_join(controls) + "."
        )
    paragraphs.append(harm_text)

    # Benefits and need — "analysing the ... benefits, and need".
    if project.benefits:
        kinds = sorted({b.kind for b in project.benefits})
        benefit_text = (
            "The benefits of this research include "
            + oxford_join([_BENEFIT_NAMES[k] for k in kinds])
            + "."
        )
    else:
        benefit_text = "We have not claimed benefits we cannot deliver."
    strong = [
        j
        for j in assessment.acceptable_justifications
        if j.weight in ("supporting", "strong")
    ]
    if strong:
        benefit_text += (
            " Our use of this data rests on the following "
            "justifications: "
            + "; ".join(j.critique for j in strong)
            + "."
        )
    paragraphs.append(benefit_text)

    # Legal position.
    issues = assessment.applicable_legal_issues
    if issues:
        legal_text = (
            "We considered the applicable legal issues ("
            + oxford_join([i.replace("-", " ") for i in issues])
            + f"); our residual legal risk assessment is "
            f"'{assessment.legal.overall_risk}'."
        )
    else:
        legal_text = "We identified no applicable legal issues."
    paragraphs.append(legal_text)

    # REB status.
    if project.reb_approved:
        reb_text = (
            "This research was reviewed and approved by our Research "
            "Ethics Board."
        )
    else:
        reb_text = (
            "This research has not yet received Research Ethics Board "
            "approval; given the potential for harm to humans "
            "identified above, we will seek review before the work "
            "proceeds."
            if assessment.grid.total_risk() > 0
            else "We assessed the residual risk to humans as nil; we "
            "nonetheless document our reasoning here for review."
        )
    paragraphs.append(reb_text)

    # Sharing.
    if safeguards.controlled_sharing:
        sharing = (
            "To support reproduction we share data with verified "
            "researchers under a written acceptable usage policy"
        )
        if safeguards.acceptable_use_policy:
            sharing += (
                f" (cite as: {safeguards.acceptable_use_policy})"
            )
        sharing += "; the raw dataset is not published."
        paragraphs.append(sharing)

    return "\n\n".join(paragraphs)
