"""Report generators: ethics sections, REB applications, DMPs and the
reproduction report."""

from .audit_pack import generate_audit_pack
from .dmp import generate_data_management_plan
from .ethics_section import generate_ethics_section
from .experiments import (
    ExperimentOutcome,
    render_report,
    run_reproduction,
)
from .reb_application import generate_reb_application

__all__ = [
    "ExperimentOutcome",
    "generate_audit_pack",
    "generate_data_management_plan",
    "generate_ethics_section",
    "generate_reb_application",
    "render_report",
    "run_reproduction",
]
