"""Data-management plan generator.

Produces the operational companion to the ethics section: what is
held, at which sensitivity, under which retention limit, who may
access it, and how it will be shared — aligned with the GDPR
safeguards (§3) and the controlled-sharing guidance (§5.2).
"""

from __future__ import annotations

from .._util import wrap_text
from ..assessment import ResearchProject
from ..safeguards import RetentionPolicy, Sensitivity

__all__ = ["generate_data_management_plan"]

_SENSITIVITY_GUIDANCE = {
    Sensitivity.DERIVED: (
        "aggregates and metrics only; may be retained indefinitely "
        "and shared openly"
    ),
    Sensitivity.PSEUDONYMISED: (
        "identifiers replaced by keyed pseudonyms; retained under the "
        "policy limit, shared only under agreement"
    ),
    Sensitivity.IDENTIFIABLE: (
        "contains personal data; encrypted at rest, access-controlled "
        "and audit-logged; never shared"
    ),
    Sensitivity.TOXIC: (
        "malware, classified or other high-hazard material; encrypted, "
        "isolated, destroyed at the earliest opportunity"
    ),
}


def generate_data_management_plan(
    project: ResearchProject,
    policy: RetentionPolicy | None = None,
) -> str:
    """Render a data-management plan for the project."""
    policy = policy or RetentionPolicy()
    lines = [
        f"DATA MANAGEMENT PLAN — {project.title}",
        "",
        "Dataset:",
    ]
    lines.extend(wrap_text(project.data_description, indent="  "))
    lines.append("")
    lines.append("Sensitivity classes and retention limits:")
    for sensitivity in Sensitivity.ORDER:
        limit = policy.limit_for(sensitivity)
        limit_text = (
            "indefinite" if limit is None else f"{limit} days"
        )
        lines.extend(
            wrap_text(
                f"{sensitivity}: {limit_text} — "
                f"{_SENSITIVITY_GUIDANCE[sensitivity]}",
                indent="  ",
            )
        )
    lines.append("")
    lines.append("Controls in place:")
    safeguards = project.safeguards
    controls = [
        ("encryption at rest", safeguards.encryption_at_rest
         or safeguards.secure_storage),
        ("access control", safeguards.access_control
         or safeguards.secure_storage),
        ("pseudonymisation", safeguards.pseudonymisation),
        ("data minimisation", safeguards.data_minimisation),
        ("controlled sharing", safeguards.controlled_sharing),
    ]
    for name, enabled in controls:
        lines.append(f"  [{'x' if enabled else ' '}] {name}")
    if safeguards.retention_limit_days:
        lines.append(
            f"  project-specific destruction after "
            f"{safeguards.retention_limit_days} days"
        )
    lines.append("")
    if safeguards.controlled_sharing:
        lines.extend(
            wrap_text(
                "Sharing: with verified researchers under a written "
                "acceptable usage policy"
                + (
                    f" ({safeguards.acceptable_use_policy})"
                    if safeguards.acceptable_use_policy
                    else ""
                )
                + "; the raw dataset is never published."
            )
        )
    else:
        lines.extend(
            wrap_text(
                "Sharing: none planned; consider controlled sharing "
                "to support reproducibility (Thomas et al. 2017, "
                "§5.5)."
            )
        )
    return "\n".join(lines)
