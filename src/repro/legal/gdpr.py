"""GDPR research-provision compliance checker (§3).

The GDPR "provides specific measures to allow processing of personal
data for scientific research in the public interest, subject to
appropriate safeguards such as encryption, pseudonymisation, and data
minimisation", requires that personal data not be included in
publications, and (Article 14.5.b) that processing information be made
publicly available. :class:`GDPRChecker` turns those conditions into a
pass/fail checklist with remediation items.
"""

from __future__ import annotations

import dataclasses

__all__ = ["GDPRPosition", "GDPRResult", "GDPRChecker", "GDPR_MAX_FINE"]

#: "fines of up to EUR 20 million, or 4% of worldwide turnover,
#: whichever is higher."
GDPR_MAX_FINE = {"eur": 20_000_000, "turnover_fraction": 0.04}


@dataclasses.dataclass(frozen=True)
class GDPRPosition:
    """The project's GDPR-relevant posture."""

    processes_personal_data: bool = True
    scientific_research: bool = True
    public_interest: bool = False
    # Appropriate safeguards (Recital 156 / Article 89):
    encrypted_at_rest: bool = False
    pseudonymised: bool = False
    data_minimised: bool = False
    # Publication and transparency:
    personal_data_in_publications: bool = False
    processing_info_public: bool = False
    responsible_party_named: bool = False
    # Repurposing (Article 5(1)(b)): data collected for other purposes
    # may be processed for scientific/historical research.
    repurposed_data: bool = True
    # Code of conduct (encouraged but not required).
    follows_code_of_conduct: bool = False


@dataclasses.dataclass(frozen=True)
class GDPRResult:
    """Outcome of the compliance check."""

    applicable: bool
    compliant: bool
    satisfied: tuple[str, ...]
    missing: tuple[str, ...]
    advisory: tuple[str, ...]

    def describe(self) -> str:
        """Human-readable compliance report."""
        if not self.applicable:
            return "GDPR: not applicable (no personal data processed)"
        status = "compliant" if self.compliant else "NOT compliant"
        lines = [f"GDPR research provisions: {status}"]
        lines.extend(f"  ok: {item}" for item in self.satisfied)
        lines.extend(f"  missing: {item}" for item in self.missing)
        lines.extend(f"  advisory: {item}" for item in self.advisory)
        return "\n".join(lines)


class GDPRChecker:
    """Check a :class:`GDPRPosition` against the research provisions."""

    def max_fine(self, worldwide_turnover_eur: float) -> float:
        """The maximum fine exposure for an organisation."""
        return max(
            GDPR_MAX_FINE["eur"],
            GDPR_MAX_FINE["turnover_fraction"] * worldwide_turnover_eur,
        )

    def check(self, position: GDPRPosition) -> GDPRResult:
        """Evaluate the position against the research provisions."""
        if not position.processes_personal_data:
            return GDPRResult(
                applicable=False,
                compliant=True,
                satisfied=(),
                missing=(),
                advisory=(),
            )
        satisfied: list[str] = []
        missing: list[str] = []
        advisory: list[str] = []

        def require(condition: bool, ok: str, fix: str) -> None:
            (satisfied if condition else missing).append(
                ok if condition else fix
            )

        require(
            position.scientific_research,
            "processing is for scientific research",
            "establish that the processing qualifies as scientific "
            "research (increasing knowledge)",
        )
        require(
            position.public_interest,
            "the research is in the public interest",
            "articulate the public interest of the research",
        )
        require(
            position.encrypted_at_rest,
            "data is encrypted",
            "encrypt the data at rest",
        )
        require(
            position.pseudonymised,
            "identifiers are pseudonymised",
            "pseudonymise identifiers before analysis",
        )
        require(
            position.data_minimised,
            "data minimisation applied",
            "minimise the data to what the research question needs",
        )
        require(
            not position.personal_data_in_publications,
            "publications exclude personal data",
            "remove personal data from publications",
        )
        require(
            position.processing_info_public,
            "processing information is publicly available "
            "(Article 14.5.b)",
            "publish what data is held, how it is processed and "
            "safeguarded (Article 14.5.b)",
        )
        require(
            position.responsible_party_named,
            "a responsible party is named",
            "name the party responsible for the processing",
        )
        if position.repurposed_data:
            satisfied.append(
                "repurposing for research is permitted by Article 5"
            )
        if not position.follows_code_of_conduct:
            advisory.append(
                "adopt (or help develop) an approved research code of "
                "conduct for data processing"
            )
        return GDPRResult(
            applicable=True,
            compliant=not missing,
            satisfied=tuple(satisfied),
            missing=tuple(missing),
            advisory=tuple(advisory),
        )
