"""Jurisdiction model (§3).

The paper stresses that the laws of multiple jurisdictions are likely
to apply: where the data subjects reside, where the data was stored,
where the researchers work, countries the data transited, and
countries the researchers travel to. :class:`JurisdictionSet` captures
that multiplicity and the legal engine evaluates every member.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Iterator

from ..errors import LegalModelError

__all__ = [
    "Jurisdiction",
    "JurisdictionSet",
    "UK",
    "US",
    "GERMANY",
    "EU",
    "GENERIC",
    "ALL_JURISDICTIONS",
    "relevant_jurisdictions",
]


@dataclasses.dataclass(frozen=True)
class Jurisdiction:
    """A legal jurisdiction.

    ``ip_addresses_personal`` records whether IP addresses are treated
    as personal data (true in Germany per [115], and EU-wide for many
    purposes after Breyer [48]); ``research_data_exemption`` whether a
    statutory research exemption for personal data exists;
    ``must_report_terrorism`` whether failing to report terrorist
    material is itself an offence (UK Terrorism Act 2000 s.38B).
    """

    code: str
    name: str
    ip_addresses_personal: bool = False
    research_data_exemption: bool = False
    must_report_terrorism: bool = False
    indecent_images_research_exemption: bool = False
    gdpr_applies: bool = False

    def __post_init__(self) -> None:
        if not self.code or not self.code.isupper():
            raise LegalModelError(
                f"jurisdiction code must be upper-case: {self.code!r}"
            )


UK = Jurisdiction(
    code="UK",
    name="United Kingdom",
    ip_addresses_personal=True,  # post-GDPR treatment
    research_data_exemption=True,
    must_report_terrorism=True,
    indecent_images_research_exemption=False,
    gdpr_applies=True,
)

US = Jurisdiction(
    code="US",
    name="United States",
    ip_addresses_personal=False,
    research_data_exemption=False,
    must_report_terrorism=False,
    indecent_images_research_exemption=False,
    gdpr_applies=False,
)

GERMANY = Jurisdiction(
    code="DE",
    name="Germany",
    ip_addresses_personal=True,  # [115, p29]
    research_data_exemption=True,  # BDSG §28.2.3
    must_report_terrorism=False,
    indecent_images_research_exemption=False,
    gdpr_applies=True,
)

EU = Jurisdiction(
    code="EU",
    name="European Union",
    ip_addresses_personal=True,  # Breyer v Germany [48]
    research_data_exemption=True,  # GDPR research provisions
    must_report_terrorism=False,
    indecent_images_research_exemption=False,
    gdpr_applies=True,
)

GENERIC = Jurisdiction(
    code="XX",
    name="Generic jurisdiction",
    ip_addresses_personal=False,
    research_data_exemption=False,
    must_report_terrorism=False,
    indecent_images_research_exemption=False,
    gdpr_applies=False,
)

ALL_JURISDICTIONS: tuple[Jurisdiction, ...] = (UK, US, GERMANY, EU)

_BY_CODE = {j.code: j for j in (*ALL_JURISDICTIONS, GENERIC)}


class JurisdictionSet:
    """The set of jurisdictions relevant to one research project."""

    def __init__(self, jurisdictions: Iterable[Jurisdiction]) -> None:
        members: dict[str, Jurisdiction] = {}
        for jurisdiction in jurisdictions:
            members[jurisdiction.code] = jurisdiction
        if not members:
            raise LegalModelError(
                "a project must name at least one jurisdiction"
            )
        self._members = members

    @classmethod
    def from_codes(cls, codes: Iterable[str]) -> "JurisdictionSet":
        members = []
        for code in codes:
            try:
                members.append(_BY_CODE[code.upper()])
            except KeyError:
                raise LegalModelError(
                    f"unknown jurisdiction code {code!r}"
                ) from None
        return cls(members)

    def __iter__(self) -> Iterator[Jurisdiction]:
        return iter(self._members.values())

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, code: str) -> bool:
        return code in self._members

    def __getitem__(self, code: str) -> Jurisdiction:
        try:
            return self._members[code]
        except KeyError:
            raise LegalModelError(
                f"jurisdiction {code!r} not in set"
            ) from None

    @property
    def codes(self) -> tuple[str, ...]:
        return tuple(self._members)

    def any_gdpr(self) -> bool:
        return any(j.gdpr_applies for j in self)

    def any_ip_personal(self) -> bool:
        return any(j.ip_addresses_personal for j in self)

    def any_terrorism_reporting_duty(self) -> bool:
        return any(j.must_report_terrorism for j in self)


def relevant_jurisdictions(
    researcher_locations: Iterable[str] = ("UK",),
    data_storage_locations: Iterable[str] = (),
    subject_locations: Iterable[str] = (),
    travel_destinations: Iterable[str] = (),
) -> JurisdictionSet:
    """Assemble the jurisdiction set the paper says to consider.

    Unknown location codes fall back to the generic jurisdiction so
    analysis errs toward conservatism rather than silently dropping a
    country.
    """
    codes: list[str] = []
    for group in (
        researcher_locations,
        data_storage_locations,
        subject_locations,
        travel_destinations,
    ):
        for code in group:
            code = code.upper()
            codes.append(code if code in _BY_CODE else "XX")
    return JurisdictionSet.from_codes(codes or ["XX"])
