"""Legal applicability rules engine (§3).

Given a :class:`DataProfile` — the legally relevant facts about a
dataset of illicit origin and its planned use — and a
:class:`~repro.legal.jurisdictions.JurisdictionSet`, the engine
determines which of the paper's legal issues apply, cites the relevant
statutes, attaches the available defences, and grades the residual
legal risk. Experiment E10 validates the engine by re-deriving the
legal bullets of every Table 1 row from first principles.

The rules themselves are no longer code: they live as declarative
rows in the default policy pack (:mod:`repro.policy.defaults`) and
:func:`analyze_legal` evaluates the compiled decision tables. The
issue catalogue is likewise derived from the pack, so adding an
issue or a venue variant is a data change, not a code change.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

from ..corpus import DataOrigin
from ..errors import LegalModelError
from ..policy.defaults import legal_issue_ids
from .jurisdictions import Jurisdiction, JurisdictionSet
from .statutes import Statute

__all__ = [
    "DataProfile",
    "RiskLevel",
    "LegalFinding",
    "LegalReport",
    "analyze_legal",
    "LEGAL_ISSUE_IDS",
]

#: Canonical issue order, taken from the default policy pack.
LEGAL_ISSUE_IDS: tuple[str, ...] = legal_issue_ids()


@dataclasses.dataclass(frozen=True)
class DataProfile:
    """Legally relevant facts about a dataset and its intended use.

    Content flags describe what the data (potentially) contains;
    action flags describe what the researchers did or plan to do.
    """

    origin: str = DataOrigin.UNAUTHORIZED_LEAK
    # -- content ------------------------------------------------------
    contains_personal_data: bool = False
    contains_credentials: bool = False
    contains_email_addresses: bool = False
    contains_ip_addresses: bool = False
    contains_private_messages: bool = False
    contains_financial_records: bool = False
    contains_malware_or_exploits: bool = False
    copyrighted_material: bool = False
    us_government_work: bool = False
    classified: bool = False
    #: Not classified, but reveals the conduct of states or
    #: state-linked persons (e.g. the Panama papers), engaging foreign
    #: secrecy / national-security legislation at lower intensity.
    state_sensitive: bool = False
    terrorism_related: bool = False
    may_contain_indecent_images: bool = False
    publicly_available: bool = False
    # -- researcher actions --------------------------------------------
    collected_by_researcher_intrusion: bool = False
    paid_offenders: bool = False
    plans_public_redistribution: bool = False
    plans_controlled_sharing: bool = False
    plans_deanonymization: bool = False
    violates_terms_of_service: bool = False

    def __post_init__(self) -> None:
        if self.origin not in DataOrigin.ALL:
            raise LegalModelError(f"unknown data origin {self.origin!r}")

    @property
    def any_personal_data(self) -> bool:
        """Personal data in the broad (GDPR-style) sense."""
        return (
            self.contains_personal_data
            or self.contains_credentials
            or self.contains_email_addresses
            or self.contains_private_messages
            or self.contains_financial_records
        )


class RiskLevel:
    """Ordinal legal-risk grading for findings and reports."""

    NONE = "none"
    LOW = "low"
    MEDIUM = "medium"
    HIGH = "high"
    SEVERE = "severe"

    ORDER = (NONE, LOW, MEDIUM, HIGH, SEVERE)
    _RANK = {level: index for index, level in enumerate(ORDER)}

    @classmethod
    def worst(cls, levels: Sequence[str]) -> str:
        """The most severe of *levels* (``NONE`` when empty).

        Unknown levels raise :class:`LegalModelError` naming the
        offending value rather than a bare ``ValueError``.
        """
        if not levels:
            return cls.NONE
        rank = cls._RANK
        worst = 0
        for level in levels:
            position = rank.get(level)
            if position is None:
                raise LegalModelError(
                    f"unknown risk level {level!r}"
                )
            if position > worst:
                worst = position
        return cls.ORDER[worst]


@dataclasses.dataclass(frozen=True)
class LegalFinding:
    """One (issue, jurisdiction) determination."""

    issue: str
    jurisdiction: Jurisdiction
    applicable: bool
    risk: str
    rationale: str
    statutes: tuple[Statute, ...] = ()
    defences: tuple[str, ...] = ()
    mitigations: tuple[str, ...] = ()

    def describe(self) -> str:
        """Multi-line rendering with statutes and mitigations."""
        head = (
            f"{self.issue} [{self.jurisdiction.code}]: "
            f"{'applies' if self.applicable else 'not applicable'}"
            f" (risk: {self.risk})"
        )
        lines = [head, f"  {self.rationale}"]
        for statute in self.statutes:
            lines.append(f"  statute: {statute.name}")
        for defence in self.defences:
            lines.append(f"  defence: {defence}")
        for mitigation in self.mitigations:
            lines.append(f"  mitigate: {mitigation}")
        return "\n".join(lines)


@dataclasses.dataclass(frozen=True)
class LegalReport:
    """The full multi-jurisdiction analysis."""

    profile: DataProfile
    findings: tuple[LegalFinding, ...]

    @property
    def overall_risk(self) -> str:
        return RiskLevel.worst([f.risk for f in self.findings])

    def applicable_issues(self) -> tuple[str, ...]:
        """Issue ids applicable in at least one jurisdiction, in the
        canonical order."""
        seen = {f.issue for f in self.findings if f.applicable}
        return tuple(i for i in LEGAL_ISSUE_IDS if i in seen)

    def findings_for(self, issue: str) -> tuple[LegalFinding, ...]:
        return tuple(f for f in self.findings if f.issue == issue)

    @property
    def lawful_with_safeguards(self) -> bool:
        """No finding is graded high or severe."""
        return self.overall_risk not in (RiskLevel.HIGH, RiskLevel.SEVERE)

    def describe(self) -> str:
        """Human-readable report of the applicable findings."""
        lines = [f"Overall legal risk: {self.overall_risk}"]
        for finding in self.findings:
            if finding.applicable:
                lines.append(finding.describe())
        return "\n".join(lines)


def analyze_legal(
    profile: DataProfile,
    jurisdictions: JurisdictionSet,
    *,
    reb_approved: bool = False,
) -> LegalReport:
    """Evaluate every legal issue in every jurisdiction.

    The rules implement §3 of the paper as declarative rows in the
    default policy pack; each finding cites the statutes from
    :mod:`repro.legal.statutes` and carries the generic defences plus
    issue-specific mitigations. Evaluation runs on the compiled
    decision tables of :func:`repro.policy.default_policy`.
    """
    from ..policy.runtime import default_policy

    return default_policy().legal_report(
        profile, jurisdictions, reb_approved=reb_approved
    )
