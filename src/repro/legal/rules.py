"""Legal applicability rules engine (§3).

Given a :class:`DataProfile` — the legally relevant facts about a
dataset of illicit origin and its planned use — and a
:class:`~repro.legal.jurisdictions.JurisdictionSet`, the engine
determines which of the paper's legal issues apply, cites the relevant
statutes, attaches the available defences, and grades the residual
legal risk. Experiment E10 validates the engine by re-deriving the
legal bullets of every Table 1 row from first principles.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

from ..corpus import DataOrigin
from ..errors import LegalModelError
from .jurisdictions import GENERIC, Jurisdiction, JurisdictionSet
from .statutes import Statute, statutes_for

__all__ = [
    "DataProfile",
    "RiskLevel",
    "LegalFinding",
    "LegalReport",
    "analyze_legal",
    "LEGAL_ISSUE_IDS",
]

LEGAL_ISSUE_IDS = (
    "computer-misuse",
    "copyright",
    "data-privacy",
    "terrorism",
    "indecent-images",
    "national-security",
    "contracts",
)


@dataclasses.dataclass(frozen=True)
class DataProfile:
    """Legally relevant facts about a dataset and its intended use.

    Content flags describe what the data (potentially) contains;
    action flags describe what the researchers did or plan to do.
    """

    origin: str = DataOrigin.UNAUTHORIZED_LEAK
    # -- content ------------------------------------------------------
    contains_personal_data: bool = False
    contains_credentials: bool = False
    contains_email_addresses: bool = False
    contains_ip_addresses: bool = False
    contains_private_messages: bool = False
    contains_financial_records: bool = False
    contains_malware_or_exploits: bool = False
    copyrighted_material: bool = False
    us_government_work: bool = False
    classified: bool = False
    #: Not classified, but reveals the conduct of states or
    #: state-linked persons (e.g. the Panama papers), engaging foreign
    #: secrecy / national-security legislation at lower intensity.
    state_sensitive: bool = False
    terrorism_related: bool = False
    may_contain_indecent_images: bool = False
    publicly_available: bool = False
    # -- researcher actions --------------------------------------------
    collected_by_researcher_intrusion: bool = False
    paid_offenders: bool = False
    plans_public_redistribution: bool = False
    plans_controlled_sharing: bool = False
    plans_deanonymization: bool = False
    violates_terms_of_service: bool = False

    def __post_init__(self) -> None:
        if self.origin not in DataOrigin.ALL:
            raise LegalModelError(f"unknown data origin {self.origin!r}")

    @property
    def any_personal_data(self) -> bool:
        """Personal data in the broad (GDPR-style) sense."""
        return (
            self.contains_personal_data
            or self.contains_credentials
            or self.contains_email_addresses
            or self.contains_private_messages
            or self.contains_financial_records
        )


class RiskLevel:
    """Ordinal legal-risk grading for findings and reports."""

    NONE = "none"
    LOW = "low"
    MEDIUM = "medium"
    HIGH = "high"
    SEVERE = "severe"

    ORDER = (NONE, LOW, MEDIUM, HIGH, SEVERE)

    @classmethod
    def worst(cls, levels: Sequence[str]) -> str:
        if not levels:
            return cls.NONE
        return max(levels, key=cls.ORDER.index)


@dataclasses.dataclass(frozen=True)
class LegalFinding:
    """One (issue, jurisdiction) determination."""

    issue: str
    jurisdiction: Jurisdiction
    applicable: bool
    risk: str
    rationale: str
    statutes: tuple[Statute, ...] = ()
    defences: tuple[str, ...] = ()
    mitigations: tuple[str, ...] = ()

    def describe(self) -> str:
        """Multi-line rendering with statutes and mitigations."""
        head = (
            f"{self.issue} [{self.jurisdiction.code}]: "
            f"{'applies' if self.applicable else 'not applicable'}"
            f" (risk: {self.risk})"
        )
        lines = [head, f"  {self.rationale}"]
        for statute in self.statutes:
            lines.append(f"  statute: {statute.name}")
        for defence in self.defences:
            lines.append(f"  defence: {defence}")
        for mitigation in self.mitigations:
            lines.append(f"  mitigate: {mitigation}")
        return "\n".join(lines)


@dataclasses.dataclass(frozen=True)
class LegalReport:
    """The full multi-jurisdiction analysis."""

    profile: DataProfile
    findings: tuple[LegalFinding, ...]

    @property
    def overall_risk(self) -> str:
        return RiskLevel.worst([f.risk for f in self.findings])

    def applicable_issues(self) -> tuple[str, ...]:
        """Issue ids applicable in at least one jurisdiction, in the
        canonical order."""
        seen = {f.issue for f in self.findings if f.applicable}
        return tuple(i for i in LEGAL_ISSUE_IDS if i in seen)

    def findings_for(self, issue: str) -> tuple[LegalFinding, ...]:
        return tuple(f for f in self.findings if f.issue == issue)

    @property
    def lawful_with_safeguards(self) -> bool:
        """No finding is graded high or severe."""
        return self.overall_risk not in (RiskLevel.HIGH, RiskLevel.SEVERE)

    def describe(self) -> str:
        """Human-readable report of the applicable findings."""
        lines = [f"Overall legal risk: {self.overall_risk}"]
        for finding in self.findings:
            if finding.applicable:
                lines.append(finding.describe())
        return "\n".join(lines)


def _base_defences(reb_approved: bool) -> tuple[str, ...]:
    defences = [
        "mens rea: demonstrating lack of criminal intent may defeat "
        "prosecution",
        "prosecution may not be in the public interest (uncertain)",
    ]
    if reb_approved:
        defences.insert(
            0,
            "REB approval evidences lack of criminal intent and engages "
            "institutional legal support",
        )
    return tuple(defences)


def analyze_legal(
    profile: DataProfile,
    jurisdictions: JurisdictionSet,
    *,
    reb_approved: bool = False,
) -> LegalReport:
    """Evaluate every legal issue in every jurisdiction.

    The rules implement §3 of the paper; each finding cites the
    statutes from :mod:`repro.legal.statutes` and carries the generic
    defences plus issue-specific mitigations.
    """
    findings: list[LegalFinding] = []
    defences = _base_defences(reb_approved)
    for jurisdiction in jurisdictions:
        findings.extend(
            _evaluate_jurisdiction(profile, jurisdiction, defences)
        )
    return LegalReport(profile=profile, findings=tuple(findings))


def _evaluate_jurisdiction(
    profile: DataProfile,
    jurisdiction: Jurisdiction,
    defences: tuple[str, ...],
) -> list[LegalFinding]:
    findings = [
        _computer_misuse(profile, jurisdiction, defences),
        _copyright(profile, jurisdiction),
        _data_privacy(profile, jurisdiction),
        _terrorism(profile, jurisdiction, defences),
        _indecent_images(profile, jurisdiction),
        _national_security(profile, jurisdiction),
        _contracts(profile, jurisdiction),
    ]
    return findings


def _computer_misuse(
    profile: DataProfile,
    jurisdiction: Jurisdiction,
    defences: tuple[str, ...],
) -> LegalFinding:
    statutes = statutes_for("computer-misuse", jurisdiction.code)
    if profile.collected_by_researcher_intrusion:
        return LegalFinding(
            issue="computer-misuse",
            jurisdiction=jurisdiction,
            applicable=True,
            risk=RiskLevel.SEVERE,
            rationale=(
                "the researchers themselves gained unauthorised access "
                "(cf. the AT&T iPad case: conviction and 41 months)"
            ),
            statutes=statutes,
            defences=defences,
            mitigations=(
                "do not collect by intrusion; use existing data or "
                "lawful collection",
            ),
        )
    applicable = (
        profile.origin
        in (
            DataOrigin.VULNERABILITY_EXPLOITATION,
            DataOrigin.UNAUTHORIZED_LEAK,
        )
        or profile.contains_malware_or_exploits
    )
    if not applicable:
        return LegalFinding(
            issue="computer-misuse",
            jurisdiction=jurisdiction,
            applicable=False,
            risk=RiskLevel.NONE,
            rationale=(
                "the data arose from an unintended disclosure and "
                "contains no attack tooling"
            ),
        )
    risk = RiskLevel.LOW
    rationale = (
        "the data was originally obtained by computer misuse; "
        "secondary use is lower risk but possession of the proceeds "
        "needs care"
    )
    mitigations = ["document provenance and lack of involvement in the "
                   "original offence"]
    if profile.contains_malware_or_exploits:
        risk = RiskLevel.MEDIUM
        rationale += (
            "; the dataset contains malware or exploit code whose "
            "possession/supply may engage dual-use tool offences"
        )
        mitigations.append(
            "store malware encrypted, do not redistribute it, and "
            "share derived metrics instead (Calleja et al.)"
        )
    if profile.paid_offenders:
        risk = RiskLevel.HIGH
        rationale += "; paying offenders for data is itself illicit"
    return LegalFinding(
        issue="computer-misuse",
        jurisdiction=jurisdiction,
        applicable=True,
        risk=risk,
        rationale=rationale,
        statutes=statutes,
        defences=defences,
        mitigations=tuple(mitigations),
    )


def _copyright(
    profile: DataProfile, jurisdiction: Jurisdiction
) -> LegalFinding:
    statutes = statutes_for("copyright", jurisdiction.code)
    if profile.us_government_work:
        return LegalFinding(
            issue="copyright",
            jurisdiction=jurisdiction,
            applicable=False,
            risk=RiskLevel.NONE,
            rationale=(
                "US government works carry no copyright (cf. the "
                "Vault 7 discussion in §4.5.2)"
            ),
        )
    if not profile.copyrighted_material:
        return LegalFinding(
            issue="copyright",
            jurisdiction=jurisdiction,
            applicable=False,
            risk=RiskLevel.NONE,
            rationale="no copyright works in the dataset",
        )
    risk = RiskLevel.LOW
    mitigations = ["rely on fair use / fair dealing for analysis"]
    if profile.plans_public_redistribution:
        risk = RiskLevel.MEDIUM
        mitigations.append(
            "do not redistribute the raw data; share under a written "
            "agreement with verified researchers (Allman & Paxson)"
        )
    return LegalFinding(
        issue="copyright",
        jurisdiction=jurisdiction,
        applicable=True,
        risk=risk,
        rationale=(
            "the dataset contains copyright works; further sharing "
            "creates copies"
        ),
        statutes=statutes,
        mitigations=tuple(mitigations),
    )


def _data_privacy(
    profile: DataProfile, jurisdiction: Jurisdiction
) -> LegalFinding:
    statutes = statutes_for("data-privacy", jurisdiction.code)
    personal = profile.any_personal_data or (
        profile.contains_ip_addresses
        and jurisdiction.ip_addresses_personal
    )
    if not personal:
        rationale = "no personal data under this jurisdiction's rules"
        if profile.contains_ip_addresses:
            rationale = (
                "IP addresses are not personal data in this "
                "jurisdiction (they would be in Germany/EU)"
            )
        return LegalFinding(
            issue="data-privacy",
            jurisdiction=jurisdiction,
            applicable=False,
            risk=RiskLevel.NONE,
            rationale=rationale,
        )
    risk = RiskLevel.MEDIUM
    mitigations = [
        "pseudonymise identifiers (hash emails, prefix-preserving "
        "anonymisation of IP addresses)",
        "apply data minimisation and encrypt at rest",
        "keep personal data out of publications",
    ]
    if profile.plans_deanonymization:
        risk = RiskLevel.HIGH
        mitigations.insert(
            0, "do not attempt to deanonymise or re-identify anyone"
        )
    if jurisdiction.research_data_exemption:
        risk = RiskLevel.LOW if risk == RiskLevel.MEDIUM else risk
        rationale = (
            "personal data is present but a research exemption is "
            "available subject to safeguards (GDPR Art. 89 / BDSG "
            "§28.2.3 style)"
        )
    else:
        rationale = (
            "personal data is present and no statutory research "
            "exemption applies"
        )
    return LegalFinding(
        issue="data-privacy",
        jurisdiction=jurisdiction,
        applicable=True,
        risk=risk,
        rationale=rationale,
        statutes=statutes,
        mitigations=tuple(mitigations),
    )


def _terrorism(
    profile: DataProfile,
    jurisdiction: Jurisdiction,
    defences: tuple[str, ...],
) -> LegalFinding:
    statutes = statutes_for("terrorism", jurisdiction.code)
    if not profile.terrorism_related:
        return LegalFinding(
            issue="terrorism",
            jurisdiction=jurisdiction,
            applicable=False,
            risk=RiskLevel.NONE,
            rationale="no terrorist material expected in the data",
        )
    mitigations = [
        "obtain REB approval and institutional oversight before "
        "handling terrorist materials (Universities UK guidance)",
    ]
    if jurisdiction.must_report_terrorism:
        mitigations.append(
            "report discovered terrorist activity: failure to report "
            "is itself an offence in this jurisdiction"
        )
    return LegalFinding(
        issue="terrorism",
        jurisdiction=jurisdiction,
        applicable=True,
        risk=RiskLevel.HIGH
        if jurisdiction.must_report_terrorism
        else RiskLevel.MEDIUM,
        rationale=(
            "the data may contain terrorist material; possession "
            "requires research exceptions and discovery may trigger "
            "reporting duties"
        ),
        statutes=statutes,
        defences=defences,
        mitigations=tuple(mitigations),
    )


def _indecent_images(
    profile: DataProfile, jurisdiction: Jurisdiction
) -> LegalFinding:
    statutes = statutes_for("indecent-images", jurisdiction.code)
    if not profile.may_contain_indecent_images:
        return LegalFinding(
            issue="indecent-images",
            jurisdiction=jurisdiction,
            applicable=False,
            risk=RiskLevel.NONE,
            rationale="no risk of indecent imagery in the data",
        )
    return LegalFinding(
        issue="indecent-images",
        jurisdiction=jurisdiction,
        applicable=True,
        risk=RiskLevel.SEVERE,
        rationale=(
            "possession of indecent images of children is an offence "
            "with, in general, no research exemption; every viewing is "
            "additional abuse of the victim"
        ),
        statutes=statutes,
        mitigations=(
            "filter dumps without viewing content (hash matching), "
            "delete immediately on discovery, and report to the "
            "relevant authority",
        ),
    )


def _national_security(
    profile: DataProfile, jurisdiction: Jurisdiction
) -> LegalFinding:
    statutes = statutes_for("national-security", jurisdiction.code)
    if not profile.classified and not profile.state_sensitive:
        return LegalFinding(
            issue="national-security",
            jurisdiction=jurisdiction,
            applicable=False,
            risk=RiskLevel.NONE,
            rationale="the data is not classified",
        )
    if not profile.classified:
        return LegalFinding(
            issue="national-security",
            jurisdiction=jurisdiction,
            applicable=True,
            risk=RiskLevel.LOW,
            rationale=(
                "the data is not classified but reveals the conduct of "
                "states or state-linked persons; secrecy and "
                "national-security legislation of affected states may "
                "be engaged"
            ),
            statutes=statutes,
            mitigations=(
                "assess exposure under the laws of the states the data "
                "concerns before publication",
            ),
        )
    return LegalFinding(
        issue="national-security",
        jurisdiction=jurisdiction,
        applicable=True,
        risk=RiskLevel.HIGH,
        rationale=(
            "the data remains classified despite public availability; "
            "institutions with facility security clearances risk "
            "spillage handling (the Purdue incident) and researchers "
            "risk prosecution"
        ),
        statutes=statutes,
        mitigations=(
            "check institutional clearance status before handling",
            "consider working from journalistic reporting instead of "
            "raw documents",
        ),
    )


def _contracts(
    profile: DataProfile, jurisdiction: Jurisdiction
) -> LegalFinding:
    statutes = statutes_for("contracts", jurisdiction.code)
    if not profile.violates_terms_of_service:
        return LegalFinding(
            issue="contracts",
            jurisdiction=jurisdiction,
            applicable=False,
            risk=RiskLevel.NONE,
            rationale="no contract or terms-of-service breach",
        )
    return LegalFinding(
        issue="contracts",
        jurisdiction=jurisdiction,
        applicable=True,
        risk=RiskLevel.LOW,
        rationale=(
            "use of the data breaches terms of service, creating civil "
            "liability exposure"
        ),
        statutes=statutes,
        mitigations=("seek institutional legal advice before use",),
    )
