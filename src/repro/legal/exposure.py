"""Cross-jurisdiction exposure reports and travel advisories (§3).

The paper: "Researchers often travel and so they should consider the
impact of committing offences, both in their home jurisdiction and in
countries that they visit or that they might be extradited to."

:func:`exposure_matrix` compares one data profile across
jurisdictions issue by issue; :func:`travel_advisory` turns that into
the practical artefact — given where the research is lawful-ish and
where the researcher plans to travel, which legs of the itinerary
raise exposure, and what to do about each.
"""

from __future__ import annotations

import dataclasses

from .._util import wrap_text
from ..errors import LegalModelError
from .jurisdictions import Jurisdiction, JurisdictionSet
from .rules import DataProfile, RiskLevel, analyze_legal

__all__ = ["ExposureCell", "TravelAdvisory", "exposure_matrix",
           "travel_advisory"]


@dataclasses.dataclass(frozen=True)
class ExposureCell:
    """One (issue, jurisdiction) cell of the comparison matrix."""

    issue: str
    jurisdiction_code: str
    applicable: bool
    risk: str


def exposure_matrix(
    profile: DataProfile, jurisdictions: JurisdictionSet
) -> dict[str, dict[str, ExposureCell]]:
    """issue → jurisdiction code → cell, across the whole set."""
    report = analyze_legal(profile, jurisdictions)
    matrix: dict[str, dict[str, ExposureCell]] = {}
    for finding in report.findings:
        matrix.setdefault(finding.issue, {})[
            finding.jurisdiction.code
        ] = ExposureCell(
            issue=finding.issue,
            jurisdiction_code=finding.jurisdiction.code,
            applicable=finding.applicable,
            risk=finding.risk,
        )
    return matrix


@dataclasses.dataclass(frozen=True)
class TravelAdvisory:
    """Exposure assessment for one travel itinerary."""

    home_code: str
    legs: tuple[tuple[str, str, tuple[str, ...]], ...]
    # (jurisdiction code, worst risk, issues at or above home risk)

    @property
    def risky_legs(self) -> tuple[str, ...]:
        """Destinations whose worst risk exceeds the home risk."""
        return tuple(
            code
            for code, risk, issues in self.legs
            if issues
        )

    def describe(self) -> str:
        """Human-readable advisory, one block per destination."""
        lines = [f"Travel advisory (home jurisdiction: {self.home_code})"]
        for code, risk, issues in self.legs:
            if issues:
                lines.extend(
                    wrap_text(
                        f"{code}: worst risk {risk}; issues graded "
                        f"worse than at home: {', '.join(issues)} — "
                        "obtain local legal advice before travelling "
                        "with, or while responsible for, this data",
                        indent="  ",
                    )
                )
            else:
                lines.append(
                    f"  {code}: no issue graded worse than at home"
                )
        return "\n".join(lines)


def travel_advisory(
    profile: DataProfile,
    *,
    home: Jurisdiction,
    destinations: JurisdictionSet,
) -> TravelAdvisory:
    """Compare each destination's exposure against home.

    An issue counts against a destination when its risk grade there
    is strictly worse than at home — the "I can hold this data here,
    but can I change planes there?" question.
    """
    if home.code in destinations:
        raise LegalModelError(
            "home jurisdiction should not be in the destination set"
        )
    home_report = analyze_legal(
        profile, JurisdictionSet([home])
    )
    home_risk = {
        finding.issue: finding.risk
        for finding in home_report.findings
    }
    legs: list[tuple[str, str, tuple[str, ...]]] = []
    for destination in destinations:
        report = analyze_legal(
            profile, JurisdictionSet([destination])
        )
        worse: list[str] = []
        worst = RiskLevel.NONE
        for finding in report.findings:
            worst = RiskLevel.worst([worst, finding.risk])
            home_grade = home_risk.get(finding.issue, RiskLevel.NONE)
            if RiskLevel.ORDER.index(finding.risk) > (
                RiskLevel.ORDER.index(home_grade)
            ):
                worse.append(finding.issue)
        legs.append((destination.code, worst, tuple(worse)))
    return TravelAdvisory(home_code=home.code, legs=tuple(legs))
