"""Legal engine: jurisdictions, statutes, applicability rules, GDPR."""

from .exposure import (
    ExposureCell,
    TravelAdvisory,
    exposure_matrix,
    travel_advisory,
)
from .gdpr import GDPR_MAX_FINE, GDPRChecker, GDPRPosition, GDPRResult
from .jurisdictions import (
    ALL_JURISDICTIONS,
    EU,
    GENERIC,
    GERMANY,
    UK,
    US,
    Jurisdiction,
    JurisdictionSet,
    relevant_jurisdictions,
)
from .rules import (
    LEGAL_ISSUE_IDS,
    DataProfile,
    LegalFinding,
    LegalReport,
    RiskLevel,
    analyze_legal,
)
from .statutes import STATUTES, Statute, statute_by_id, statutes_for

__all__ = [
    "ALL_JURISDICTIONS",
    "DataProfile",
    "EU",
    "ExposureCell",
    "GDPRChecker",
    "GDPRPosition",
    "GDPRResult",
    "GDPR_MAX_FINE",
    "GENERIC",
    "GERMANY",
    "Jurisdiction",
    "JurisdictionSet",
    "LEGAL_ISSUE_IDS",
    "LegalFinding",
    "LegalReport",
    "RiskLevel",
    "STATUTES",
    "Statute",
    "TravelAdvisory",
    "UK",
    "US",
    "analyze_legal",
    "exposure_matrix",
    "relevant_jurisdictions",
    "statute_by_id",
    "statutes_for",
    "travel_advisory",
]
