"""Statute records for the laws the paper cites (§3).

Each :class:`Statute` links a legal-issue dimension of the codebook to
a concrete law in a jurisdiction, with the provision summary, penalty
sketch and research-exemption status. The registry supports lookup by
issue and jurisdiction — the legal rules engine cites these records in
its findings.
"""

from __future__ import annotations

import dataclasses

from ..errors import LegalModelError

__all__ = ["Statute", "STATUTES", "statutes_for", "statute_by_id"]

#: Legal-issue dimension ids (matching the codebook).
_ISSUES = (
    "computer-misuse",
    "copyright",
    "data-privacy",
    "terrorism",
    "indecent-images",
    "national-security",
    "contracts",
)


@dataclasses.dataclass(frozen=True)
class Statute:
    """One law relevant to research with data of illicit origin."""

    id: str
    name: str
    jurisdiction_code: str
    issue: str
    summary: str
    reference_number: int = 0  # bibliography entry, 0 when none
    max_penalty: str = ""
    research_exemption: bool = False
    exemption_conditions: str = ""

    def __post_init__(self) -> None:
        if self.issue not in _ISSUES:
            raise LegalModelError(
                f"statute {self.id!r}: unknown issue {self.issue!r}"
            )
        if not self.id or not self.name:
            raise LegalModelError("statute needs id and name")


STATUTES: tuple[Statute, ...] = (
    # -- computer misuse ------------------------------------------------
    Statute(
        id="uk-cma-1990",
        name="Computer Misuse Act 1990",
        jurisdiction_code="UK",
        issue="computer-misuse",
        summary=(
            "Offences of unauthorised access to computer material, "
            "unauthorised access with intent, and unauthorised acts "
            "impairing operation; covers unauthorised use even without "
            "a technical protection measure."
        ),
        reference_number=21,
        max_penalty="up to 14 years imprisonment (s.3ZA)",
    ),
    Statute(
        id="us-cfaa",
        name="18 U.S.C. §1030 (Computer Fraud and Abuse Act)",
        jurisdiction_code="US",
        issue="computer-misuse",
        summary=(
            "Fraud and related activity in connection with computers: "
            "accessing a protected computer without authorization or "
            "exceeding authorized access."
        ),
        reference_number=1,
        max_penalty="up to 10 years imprisonment for first offences",
    ),
    Statute(
        id="de-stgb-202a",
        name="StGB §202a (Data espionage)",
        jurisdiction_code="DE",
        issue="computer-misuse",
        summary=(
            "Obtaining access, for oneself or another, to data "
            "specially protected against unauthorized access."
        ),
        reference_number=38,
        max_penalty="up to 3 years imprisonment or a fine",
    ),
    Statute(
        id="de-stgb-263a",
        name="StGB §263a (Computer fraud)",
        jurisdiction_code="DE",
        issue="computer-misuse",
        summary=(
            "Damaging another's property by influencing the result of "
            "a data processing operation."
        ),
        reference_number=39,
        max_penalty="up to 5 years imprisonment or a fine",
    ),
    Statute(
        id="de-stgb-303a",
        name="StGB §303a (Data tampering)",
        jurisdiction_code="DE",
        issue="computer-misuse",
        summary="Unlawfully deleting, suppressing or altering data.",
        reference_number=40,
        max_penalty="up to 2 years imprisonment or a fine",
    ),
    Statute(
        id="de-stgb-303b",
        name="StGB §303b (Computer sabotage)",
        jurisdiction_code="DE",
        issue="computer-misuse",
        summary=(
            "Interfering with data processing operations of "
            "substantial importance to another."
        ),
        reference_number=41,
        max_penalty="up to 10 years for serious cases",
    ),
    # -- data privacy ---------------------------------------------------
    Statute(
        id="eu-gdpr",
        name="General Data Protection Regulation (EU) 2016/679",
        jurisdiction_code="EU",
        issue="data-privacy",
        summary=(
            "Protection of natural persons with regard to processing "
            "of personal data; applies from May 2018 to processing in "
            "the EU and to organisations offering goods/services to EU "
            "individuals. Provides research provisions subject to "
            "safeguards such as encryption, pseudonymisation and data "
            "minimisation (Articles 5, 14.5.b, 89)."
        ),
        reference_number=22,
        max_penalty=(
            "fines up to EUR 20 million or 4% of worldwide turnover, "
            "whichever is higher"
        ),
        research_exemption=True,
        exemption_conditions=(
            "scientific research in the public interest with "
            "appropriate safeguards; personal data not included in "
            "publications; interests of data subjects protected and "
            "processing information made publicly available"
        ),
    ),
    Statute(
        id="de-bdsg-28",
        name="German Federal Data Protection Code §28.2.3",
        jurisdiction_code="DE",
        issue="data-privacy",
        summary=(
            "Permits use of personal data for scientific research "
            "where the scientific interest substantially predominates "
            "over the data subject's interest and the research cannot "
            "otherwise be conducted or only with disproportional "
            "effort."
        ),
        reference_number=115,
        research_exemption=True,
        exemption_conditions=(
            "scientific interest substantially predominates; research "
            "not otherwise feasible"
        ),
    ),
    # -- copyright --------------------------------------------------------
    Statute(
        id="generic-copyright",
        name="Copyright, database rights and trade secrets",
        jurisdiction_code="XX",
        issue="copyright",
        summary=(
            "The right to produce copies; affects further sharing of "
            "data with other researchers as that may constitute the "
            "creation of copies. Exemptions such as fair use vary by "
            "jurisdiction. US government works carry no copyright."
        ),
        research_exemption=True,
        exemption_conditions="fair use / fair dealing where available",
    ),
    # -- terrorism -------------------------------------------------------
    Statute(
        id="uk-terrorism-2000",
        name="Terrorism Act 2000",
        jurisdiction_code="UK",
        issue="terrorism",
        summary=(
            "Includes the offence of failing to disclose information "
            "about acts of terrorism (s.38B) and offences relating to "
            "collection/possession of material useful to terrorism "
            "(s.58), with a reasonable-excuse defence that research "
            "may engage; institutional oversight is expected "
            "(Universities UK guidance)."
        ),
        reference_number=108,
        max_penalty="up to 15 years imprisonment (s.58)",
        research_exemption=True,
        exemption_conditions=(
            "reasonable excuse / academic purpose with REB approval "
            "and institutional oversight"
        ),
    ),
    # -- indecent images ---------------------------------------------------
    Statute(
        id="uk-poca-1978",
        name="Protection of Children Act 1978",
        jurisdiction_code="UK",
        issue="indecent-images",
        summary=(
            "Offences of taking, making, distributing or possessing "
            "indecent photographs of children; in general no research "
            "exemption."
        ),
        reference_number=88,
        max_penalty="up to 10 years imprisonment",
    ),
    Statute(
        id="us-1466a",
        name="18 U.S.C. §1466A",
        jurisdiction_code="US",
        issue="indecent-images",
        summary=(
            "Obscene visual representations of the sexual abuse of "
            "children; no research exemption."
        ),
        reference_number=2,
        max_penalty="severe federal penalties",
    ),
    Statute(
        id="de-stgb-184b",
        name="StGB §184b",
        jurisdiction_code="DE",
        issue="indecent-images",
        summary=(
            "Distribution, acquisition and possession of child "
            "pornography; no general research exemption."
        ),
        reference_number=37,
        max_penalty="up to 10 years imprisonment",
    ),
    # -- national security ---------------------------------------------------
    Statute(
        id="us-classified",
        name="US classification regime (Espionage Act and related)",
        jurisdiction_code="US",
        issue="national-security",
        summary=(
            "Classified material remains classified even when publicly "
            "available; institutions with facility security clearances "
            "must treat leaked classified data as spillage (the Purdue "
            "incident), and unauthorised retention or dissemination "
            "may be prosecuted."
        ),
        reference_number=36,
        max_penalty="destruction of derived work; prosecution risk",
    ),
    Statute(
        id="uk-official-secrets",
        name="UK official secrets / espionage reform proposals",
        jurisdiction_code="UK",
        issue="national-security",
        summary=(
            "In 2017 the UK government considered making obtaining "
            "sensitive information an offence with penalties of up to "
            "14 years, which would expose any researcher using leaked "
            "classified data."
        ),
        reference_number=34,
        max_penalty="proposed up to 14 years imprisonment",
    ),
    # -- contracts -------------------------------------------------------------
    Statute(
        id="generic-contracts",
        name="Terms of service and contract law",
        jurisdiction_code="XX",
        issue="contracts",
        summary=(
            "Civil liability from breach of contract where using the "
            "data violates terms of service or other agreements the "
            "researchers have accepted."
        ),
        max_penalty="civil damages",
    ),
)

_BY_ID = {s.id: s for s in STATUTES}


def statute_by_id(statute_id: str) -> Statute:
    """Look up one statute record by its identifier."""
    try:
        return _BY_ID[statute_id]
    except KeyError:
        raise LegalModelError(f"unknown statute {statute_id!r}") from None


def statutes_for(
    issue: str, jurisdiction_code: str | None = None
) -> tuple[Statute, ...]:
    """Statutes covering *issue*, optionally restricted by jurisdiction.

    Generic (``XX``) statutes match every jurisdiction.
    """
    if issue not in _ISSUES:
        raise LegalModelError(f"unknown legal issue {issue!r}")
    result = []
    for statute in STATUTES:
        if statute.issue != issue:
            continue
        if (
            jurisdiction_code is None
            or statute.jurisdiction_code in (jurisdiction_code, "XX")
            or (
                statute.jurisdiction_code == "EU"
                and jurisdiction_code in ("UK", "DE")
            )
        ):
            result.append(statute)
    return tuple(result)
