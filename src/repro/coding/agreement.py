"""Inter-rater reliability statistics for qualitative coding.

Implements the standard agreement measures used to validate coding
exercises like the paper's Table 1:

* percent (observed) agreement,
* Cohen's kappa (two raters) and weighted kappa,
* Fleiss' kappa (any number of raters),
* Krippendorff's alpha (nominal metric, tolerates missing data),
* per-pair confusion matrices,
* fuzzy-match variants: :func:`normalize_label`,
  :func:`label_similarity` and :func:`canonicalize_labels` unify
  near-identical labels (case, separators, close spellings, shared
  code sets) *before* the chance-corrected statistics run, so
  :func:`fuzzy_set_agreement` reports how much disagreement is pure
  label hygiene rather than genuine coder disagreement.

All functions take plain label sequences so they can be used directly
or through :func:`pairwise_kappa` / :func:`set_agreement` on
:class:`~repro.coding.annotations.AnnotationSet` objects.
"""

from __future__ import annotations

import difflib
import itertools
import re
from collections import Counter
from collections.abc import Mapping, Sequence

from ..errors import CodingError
from .annotations import AnnotationSet

__all__ = [
    "percent_agreement",
    "cohens_kappa",
    "weighted_kappa",
    "fleiss_kappa",
    "krippendorff_alpha",
    "confusion_matrix",
    "pairwise_kappa",
    "set_agreement",
    "interpret_kappa",
    "normalize_label",
    "label_similarity",
    "canonicalize_labels",
    "fuzzy_set_agreement",
]

#: Default similarity threshold for fuzzy matching: high enough that
#: distinct codebook labels ("justice" vs "public-data") never merge,
#: low enough to absorb case/separator/pluralisation drift.
DEFAULT_FUZZY_THRESHOLD = 0.85


def _check_pair(a: Sequence, b: Sequence) -> None:
    if len(a) != len(b):
        raise CodingError("label sequences must have equal length")
    if not a:
        raise CodingError("label sequences must be non-empty")


def percent_agreement(a: Sequence[str], b: Sequence[str]) -> float:
    """Fraction of items on which two raters agree (0..1)."""
    _check_pair(a, b)
    matches = sum(1 for x, y in zip(a, b) if x == y)
    return matches / len(a)


def cohens_kappa(a: Sequence[str], b: Sequence[str]) -> float:
    """Cohen's kappa for two raters over nominal labels.

    Returns 1.0 when both raters agree perfectly *and* chance agreement
    is also 1 (single-category degenerate case), matching the common
    convention.
    """
    _check_pair(a, b)
    n = len(a)
    observed = percent_agreement(a, b)
    counts_a = Counter(a)
    counts_b = Counter(b)
    expected = sum(
        counts_a[label] * counts_b.get(label, 0) for label in counts_a
    ) / (n * n)
    if expected >= 1.0:
        return 1.0 if observed == 1.0 else 0.0
    return (observed - expected) / (1.0 - expected)


def weighted_kappa(
    a: Sequence[str],
    b: Sequence[str],
    weights: Mapping[tuple[str, str], float],
) -> float:
    """Cohen's kappa with disagreement weights.

    ``weights[(x, y)]`` is the disagreement cost of rater labels
    ``(x, y)``; missing pairs default to 0 for ``x == y`` and 1
    otherwise. Symmetry is enforced by averaging ``(x, y)`` and
    ``(y, x)`` when both are present.
    """
    _check_pair(a, b)

    def weight(x: str, y: str) -> float:
        if (x, y) in weights and (y, x) in weights:
            return (weights[(x, y)] + weights[(y, x)]) / 2.0
        if (x, y) in weights:
            return weights[(x, y)]
        if (y, x) in weights:
            return weights[(y, x)]
        return 0.0 if x == y else 1.0

    n = len(a)
    labels = sorted(set(a) | set(b))
    counts_a = Counter(a)
    counts_b = Counter(b)
    observed = sum(weight(x, y) for x, y in zip(a, b)) / n
    expected = sum(
        weight(x, y) * counts_a.get(x, 0) * counts_b.get(y, 0)
        for x in labels
        for y in labels
    ) / (n * n)
    if expected == 0.0:
        return 1.0 if observed == 0.0 else 0.0
    return 1.0 - observed / expected


def fleiss_kappa(ratings: Sequence[Sequence[str]]) -> float:
    """Fleiss' kappa for *m* raters over *n* items.

    *ratings* is a sequence of items, each a sequence of the labels
    assigned by every rater (all items must have the same number of
    raters, at least two).
    """
    if not ratings:
        raise CodingError("ratings must be non-empty")
    m = len(ratings[0])
    if m < 2:
        raise CodingError("Fleiss' kappa needs at least two raters")
    if any(len(item) != m for item in ratings):
        raise CodingError("all items need the same number of raters")
    n = len(ratings)
    categories = sorted({label for item in ratings for label in item})
    # Per-item agreement P_i and category proportions p_j.
    total_pairs = m * (m - 1)
    p_i_sum = 0.0
    category_counts: Counter[str] = Counter()
    for item in ratings:
        counts = Counter(item)
        category_counts.update(counts)
        agreement = sum(c * (c - 1) for c in counts.values())
        p_i_sum += agreement / total_pairs
    p_bar = p_i_sum / n
    p_e = sum(
        (category_counts[c] / (n * m)) ** 2 for c in categories
    )
    if p_e >= 1.0:
        return 1.0 if p_bar == 1.0 else 0.0
    return (p_bar - p_e) / (1.0 - p_e)


def krippendorff_alpha(
    ratings: Sequence[Sequence[str | None]],
) -> float:
    """Krippendorff's alpha with the nominal difference metric.

    *ratings* is items × raters; ``None`` marks a missing rating.
    Items with fewer than two ratings are ignored. Raises
    :class:`~repro.errors.CodingError` when no item has two ratings.
    """
    # Build the coincidence matrix.
    coincidences: Counter[tuple[str, str]] = Counter()
    for item in ratings:
        values = [v for v in item if v is not None]
        m_u = len(values)
        if m_u < 2:
            continue
        for v1, v2 in itertools.permutations(values, 2):
            coincidences[(v1, v2)] += 1.0 / (m_u - 1)
    if not coincidences:
        raise CodingError("alpha needs at least one item with 2+ ratings")
    n_total = sum(coincidences.values())
    categories = sorted({c for pair in coincidences for c in pair})
    n_c = {
        c: sum(
            coincidences.get((c, other), 0.0) for other in categories
        )
        for c in categories
    }
    observed_disagreement = sum(
        count
        for (c1, c2), count in coincidences.items()
        if c1 != c2
    )
    if n_total <= 1:
        return 1.0
    expected_disagreement = sum(
        n_c[c1] * n_c[c2]
        for c1 in categories
        for c2 in categories
        if c1 != c2
    ) / (n_total - 1)
    if expected_disagreement == 0.0:
        return 1.0
    return 1.0 - observed_disagreement / expected_disagreement


def confusion_matrix(
    a: Sequence[str], b: Sequence[str]
) -> dict[tuple[str, str], int]:
    """Counts of (label by rater A, label by rater B) pairs."""
    _check_pair(a, b)
    matrix: Counter[tuple[str, str]] = Counter(zip(a, b))
    return dict(matrix)


def pairwise_kappa(
    first: AnnotationSet, second: AnnotationSet
) -> dict[str, float]:
    """Cohen's kappa per dimension between two annotation sets.

    Only (entry, dimension) keys present in both sets contribute.
    Dimensions with no common keys are omitted.
    """
    common = sorted(first.keys & second.keys)
    by_dimension: dict[str, list[tuple[str, str]]] = {}
    for key in common:
        by_dimension.setdefault(key[1], []).append(key)
    result: dict[str, float] = {}
    for dimension_id, keys in by_dimension.items():
        labels_a = [label for label in first.labels_for(keys)]
        labels_b = [label for label in second.labels_for(keys)]
        result[dimension_id] = cohens_kappa(labels_a, labels_b)
    return result


def set_agreement(
    sets: Sequence[AnnotationSet],
) -> dict[str, float]:
    """Overall agreement summary for two or more annotation sets.

    Returns a dict with ``percent`` (mean pairwise percent agreement),
    ``fleiss_kappa`` and ``krippendorff_alpha`` over the keys common to
    all sets.
    """
    if len(sets) < 2:
        raise CodingError("agreement needs at least two annotation sets")
    common = sorted(set.intersection(*(s.keys for s in sets)))
    if not common:
        raise CodingError("annotation sets share no common keys")
    labels = [s.labels_for(common) for s in sets]
    pairs = list(itertools.combinations(range(len(sets)), 2))
    mean_percent = sum(
        percent_agreement(labels[i], labels[j]) for i, j in pairs
    ) / len(pairs)
    items = [
        [labels[r][i] for r in range(len(sets))]
        for i in range(len(common))
    ]
    return {
        "percent": mean_percent,
        "fleiss_kappa": fleiss_kappa(items),
        "krippendorff_alpha": krippendorff_alpha(items),
    }


_SEPARATORS = re.compile(r"[\s_-]+")


def normalize_label(label: str) -> str:
    """Canonical spelling of a label: casefold, collapse separators.

    ``"Secure_Storage"``, ``"secure storage"`` and ``"SECURE-STORAGE"``
    all normalise to ``"secure-storage"``. Compound (set-valued)
    labels joined with ``+`` are normalised component-wise and
    re-sorted, so ``"P+SS"`` and ``"ss + p"`` coincide.
    """
    if "+" in label:
        parts = sorted(
            normalize_label(part) for part in label.split("+")
        )
        return "+".join(part for part in parts if part)
    return _SEPARATORS.sub("-", label.strip().casefold())


def label_similarity(a: str, b: str) -> float:
    """Similarity of two labels in [0, 1], after normalisation.

    Equal normalised labels score 1.0. Compound labels (``"+"``-joined
    code sets) score their Jaccard overlap; everything else scores the
    :class:`difflib.SequenceMatcher` ratio of the normalised strings.
    Deterministic — no randomisation anywhere in the comparison.
    """
    na, nb = normalize_label(a), normalize_label(b)
    if na == nb:
        return 1.0
    if "+" in na or "+" in nb:
        sa, sb = set(na.split("+")), set(nb.split("+"))
        union = sa | sb
        if not union:
            return 1.0
        return len(sa & sb) / len(union)
    return difflib.SequenceMatcher(a=na, b=nb).ratio()


def canonicalize_labels(
    labels: Sequence[str], threshold: float = DEFAULT_FUZZY_THRESHOLD
) -> dict[str, str]:
    """Map each distinct label to a canonical representative.

    Labels whose :func:`label_similarity` reaches *threshold* are
    placed in the same equivalence class; each class is represented
    by its first member in sorted order. Greedy assignment over
    sorted distinct labels makes the result deterministic and
    independent of input order.
    """
    if not 0.0 < threshold <= 1.0:
        raise CodingError(
            f"fuzzy threshold must be in (0, 1], got {threshold}"
        )
    canonical: dict[str, str] = {}
    representatives: list[str] = []
    for label in sorted(set(labels)):
        best: str | None = None
        best_score = 0.0
        for representative in representatives:
            score = label_similarity(label, representative)
            if score > best_score:
                best, best_score = representative, score
        if best is not None and best_score >= threshold:
            canonical[label] = best
        else:
            representatives.append(label)
            canonical[label] = label
    return canonical


def fuzzy_set_agreement(
    sets: Sequence[AnnotationSet],
    threshold: float = DEFAULT_FUZZY_THRESHOLD,
) -> dict[str, float]:
    """:func:`set_agreement` after fuzzy label canonicalisation.

    Labels from *all* raters are pooled, canonicalised with
    :func:`canonicalize_labels` at *threshold*, and the standard
    percent / Fleiss-kappa / Krippendorff-alpha statistics are
    computed over the canonical labels. Comparing the result against
    the exact-match :func:`set_agreement` numbers isolates how much
    apparent disagreement is mere label drift: identical values mean
    every disagreement is substantive.
    """
    if len(sets) < 2:
        raise CodingError("agreement needs at least two annotation sets")
    common = sorted(set.intersection(*(s.keys for s in sets)))
    if not common:
        raise CodingError("annotation sets share no common keys")
    labels = [s.labels_for(common) for s in sets]
    mapping = canonicalize_labels(
        [label for rater in labels for label in rater], threshold
    )
    mapped = [
        [mapping[label] for label in rater] for rater in labels
    ]
    pairs = list(itertools.combinations(range(len(sets)), 2))
    mean_percent = sum(
        percent_agreement(mapped[i], mapped[j]) for i, j in pairs
    ) / len(pairs)
    items = [
        [mapped[r][i] for r in range(len(sets))]
        for i in range(len(common))
    ]
    return {
        "percent": mean_percent,
        "fleiss_kappa": fleiss_kappa(items),
        "krippendorff_alpha": krippendorff_alpha(items),
    }


def interpret_kappa(kappa: float) -> str:
    """Landis & Koch interpretation band for a kappa value."""
    if kappa < 0:
        return "poor"
    if kappa <= 0.20:
        return "slight"
    if kappa <= 0.40:
        return "fair"
    if kappa <= 0.60:
        return "moderate"
    if kappa <= 0.80:
        return "substantial"
    return "almost perfect"
