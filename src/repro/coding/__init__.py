"""Multi-coder annotation and inter-rater reliability machinery."""

from .agreement import (
    canonicalize_labels,
    cohens_kappa,
    confusion_matrix,
    fleiss_kappa,
    fuzzy_set_agreement,
    interpret_kappa,
    krippendorff_alpha,
    label_similarity,
    normalize_label,
    pairwise_kappa,
    percent_agreement,
    set_agreement,
    weighted_kappa,
)
from .annotations import (
    AdjudicationSession,
    Annotation,
    AnnotationSet,
    Coder,
    Disagreement,
    annotations_from_corpus,
)

__all__ = [
    "AdjudicationSession",
    "Annotation",
    "AnnotationSet",
    "Coder",
    "Disagreement",
    "annotations_from_corpus",
    "canonicalize_labels",
    "cohens_kappa",
    "confusion_matrix",
    "fleiss_kappa",
    "fuzzy_set_agreement",
    "interpret_kappa",
    "krippendorff_alpha",
    "label_similarity",
    "normalize_label",
    "pairwise_kappa",
    "percent_agreement",
    "set_agreement",
    "weighted_kappa",
]
