"""Multi-coder annotation and inter-rater reliability machinery."""

from .agreement import (
    cohens_kappa,
    confusion_matrix,
    fleiss_kappa,
    interpret_kappa,
    krippendorff_alpha,
    pairwise_kappa,
    percent_agreement,
    set_agreement,
    weighted_kappa,
)
from .annotations import (
    AdjudicationSession,
    Annotation,
    AnnotationSet,
    Coder,
    Disagreement,
    annotations_from_corpus,
)

__all__ = [
    "AdjudicationSession",
    "Annotation",
    "AnnotationSet",
    "Coder",
    "Disagreement",
    "annotations_from_corpus",
    "cohens_kappa",
    "confusion_matrix",
    "fleiss_kappa",
    "interpret_kappa",
    "krippendorff_alpha",
    "pairwise_kappa",
    "percent_agreement",
    "set_agreement",
    "weighted_kappa",
]
