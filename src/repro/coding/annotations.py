"""Annotation model for multi-coder qualitative coding.

The paper's Table 1 was produced by its authors coding each case study.
This module models that process explicitly so it can be audited and so
reliability statistics can be computed: a :class:`Coder` produces
:class:`Annotation` records (one per entry × dimension), collected into
an :class:`AnnotationSet`; multiple sets are compared or merged through
an :class:`AdjudicationSession`.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Iterator, Mapping

from ..codebook import CellValue, Codebook, DimensionKind
from ..errors import CodingError

__all__ = [
    "Coder",
    "Annotation",
    "AnnotationSet",
    "AdjudicationSession",
    "Disagreement",
    "annotations_from_corpus",
]


@dataclasses.dataclass(frozen=True)
class Coder:
    """A person (or process) assigning codes."""

    id: str
    name: str = ""
    expertise: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.id:
            raise CodingError("coder id must be non-empty")


@dataclasses.dataclass(frozen=True)
class Annotation:
    """One coding decision: entry × dimension → value or code set.

    For closed dimensions ``value`` is set; for open dimensions
    ``codes`` (a tuple of member abbreviations) is set. ``rationale``
    holds the coder's justification and supports the audit trail.
    """

    entry_id: str
    dimension_id: str
    value: CellValue | None = None
    codes: tuple[str, ...] | None = None
    rationale: str = ""

    def __post_init__(self) -> None:
        if (self.value is None) == (self.codes is None):
            raise CodingError(
                "annotation must set exactly one of value / codes"
            )

    @property
    def label(self) -> str:
        """A hashable label for agreement computations.

        Closed dimensions use the cell value name; open dimensions use
        the sorted code tuple joined with ``+`` (empty set → ``-``).
        """
        if self.value is not None:
            return self.value.value
        codes = sorted(self.codes or ())
        return "+".join(codes) if codes else "-"


class AnnotationSet:
    """All annotations by one coder against one codebook."""

    def __init__(
        self,
        coder: Coder,
        codebook: Codebook,
        annotations: Iterable[Annotation] = (),
    ) -> None:
        self.coder = coder
        self.codebook = codebook
        self._by_key: dict[tuple[str, str], Annotation] = {}
        for annotation in annotations:
            self.add(annotation)

    def add(self, annotation: Annotation) -> None:
        """Validate against the codebook and record the annotation."""
        from ..errors import CodebookError

        dim = self.codebook[annotation.dimension_id]
        try:
            if dim.kind == DimensionKind.CLOSED:
                if annotation.value is None:
                    raise CodingError(
                        f"dimension {dim.id!r} needs a cell value, "
                        "got codes"
                    )
                dim.validate_value(annotation.value)
            else:
                if annotation.codes is None:
                    raise CodingError(
                        f"dimension {dim.id!r} needs a code set, "
                        "got a value"
                    )
                dim.validate_codes(annotation.codes)
        except CodebookError as exc:
            raise CodingError(str(exc)) from exc
        key = (annotation.entry_id, annotation.dimension_id)
        if key in self._by_key:
            raise CodingError(
                f"duplicate annotation for {key} by {self.coder.id!r}"
            )
        self._by_key[key] = annotation

    def get(self, entry_id: str, dimension_id: str) -> Annotation | None:
        return self._by_key.get((entry_id, dimension_id))

    def __iter__(self) -> Iterator[Annotation]:
        return iter(self._by_key.values())

    def __len__(self) -> int:
        return len(self._by_key)

    @property
    def keys(self) -> set[tuple[str, str]]:
        return set(self._by_key)

    def labels_for(
        self, keys: Iterable[tuple[str, str]]
    ) -> list[str | None]:
        """Agreement labels for the given (entry, dimension) keys."""
        return [
            a.label if (a := self._by_key.get(key)) else None
            for key in keys
        ]


@dataclasses.dataclass(frozen=True)
class Disagreement:
    """A coding conflict between two or more annotation sets."""

    entry_id: str
    dimension_id: str
    labels: Mapping[str, str]  # coder id -> label

    def describe(self) -> str:
        """One-line rendering of the conflicting labels."""
        votes = ", ".join(
            f"{coder}: {label}" for coder, label in sorted(self.labels.items())
        )
        return (
            f"{self.entry_id} / {self.dimension_id}: {votes}"
        )


class AdjudicationSession:
    """Compare coders' annotation sets and build a consensus set.

    The consensus rule is majority vote with an explicit adjudicator
    tie-break: call :meth:`resolve` for remaining disagreements before
    :meth:`consensus`.
    """

    def __init__(self, sets: Iterable[AnnotationSet]) -> None:
        self.sets = list(sets)
        if len(self.sets) < 2:
            raise CodingError("adjudication needs at least two coders")
        codebooks = {id(s.codebook) for s in self.sets}
        names = {s.codebook.name for s in self.sets}
        if len(codebooks) > 1 and len(names) > 1:
            raise CodingError("coders must share a codebook")
        coder_ids = [s.coder.id for s in self.sets]
        if len(set(coder_ids)) != len(coder_ids):
            raise CodingError("duplicate coder ids in adjudication")
        self._resolutions: dict[tuple[str, str], Annotation] = {}

    @property
    def common_keys(self) -> list[tuple[str, str]]:
        """(entry, dimension) keys annotated by every coder, sorted."""
        keys = set.intersection(*(s.keys for s in self.sets))
        return sorted(keys)

    def disagreements(self) -> list[Disagreement]:
        """All keys where coders' labels differ (unresolved or not)."""
        result: list[Disagreement] = []
        for key in self.common_keys:
            labels = {
                s.coder.id: s.get(*key).label  # type: ignore[union-attr]
                for s in self.sets
            }
            if len(set(labels.values())) > 1:
                result.append(
                    Disagreement(
                        entry_id=key[0],
                        dimension_id=key[1],
                        labels=labels,
                    )
                )
        return result

    def resolve(
        self, entry_id: str, dimension_id: str, annotation: Annotation
    ) -> None:
        """Record an adjudicator's resolution for a disagreement."""
        if (annotation.entry_id, annotation.dimension_id) != (
            entry_id,
            dimension_id,
        ):
            raise CodingError("resolution annotation key mismatch")
        self._resolutions[(entry_id, dimension_id)] = annotation

    def consensus(self, adjudicator: Coder) -> AnnotationSet:
        """Build the consensus annotation set.

        Majority label wins; explicit resolutions always win; an
        unresolved tie raises :class:`~repro.errors.CodingError`.
        """
        result = AnnotationSet(adjudicator, self.sets[0].codebook)
        for key in self.common_keys:
            if key in self._resolutions:
                result.add(self._resolutions[key])
                continue
            annotations = [s.get(*key) for s in self.sets]
            counts: dict[str, list[Annotation]] = {}
            for annotation in annotations:
                assert annotation is not None
                counts.setdefault(annotation.label, []).append(annotation)
            best = max(counts.values(), key=len)
            ties = [
                group
                for group in counts.values()
                if len(group) == len(best)
            ]
            if len(ties) > 1:
                raise CodingError(
                    f"unresolved tie at {key}; call resolve() first"
                )
            chosen = best[0]
            result.add(
                Annotation(
                    entry_id=chosen.entry_id,
                    dimension_id=chosen.dimension_id,
                    value=chosen.value,
                    codes=chosen.codes,
                    rationale=f"majority of {len(best)}/{len(self.sets)}",
                )
            )
        return result


def annotations_from_corpus(corpus, coder: Coder) -> AnnotationSet:
    """Lift a coded corpus into an :class:`AnnotationSet`.

    Used to treat the published Table 1 coding as one coder's view,
    e.g. when measuring agreement of an independent re-coding against
    the paper.
    """
    result = AnnotationSet(coder, corpus.codebook)
    for entry in corpus:
        for dim_id, value in entry.values.items():
            result.add(
                Annotation(
                    entry_id=entry.id, dimension_id=dim_id, value=value
                )
            )
        for dim_id in ("safeguards", "harms", "benefits"):
            result.add(
                Annotation(
                    entry_id=entry.id,
                    dimension_id=dim_id,
                    codes=entry.codes(dim_id),
                )
            )
    return result
