"""Codebook data model: codes, dimensions and the codebook registry.

A *codebook* is the schema for qualitative coding: it declares the
dimensions on which each unit of analysis (here: a published paper that
used data of illicit origin) is coded, and for each dimension the codes
or cell values that are valid.

Dimensions come in three kinds, mirroring Table 1 of the paper:

``closed``
    The cell holds exactly one :class:`~repro.codebook.values.CellValue`
    from the dimension's allowed set (legal issues, ethical issues,
    justifications, ethics section, REB status).

``open``
    The cell holds a *set* of member codes (safeguards, harms, benefits);
    the dimension declares the universe of member codes.

A :class:`Codebook` validates codings against the schema and is shared by
the corpus, the coding engine and the analysis engine.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Iterator, Mapping, Sequence

from .._util import ensure_unique, slugify
from ..errors import CodebookError, UnknownCodeError, UnknownDimensionError
from .values import CellValue

__all__ = ["Code", "Dimension", "DimensionKind", "Codebook"]


class DimensionKind:
    """String constants for the two dimension kinds."""

    CLOSED = "closed"
    OPEN = "open"

    ALL = (CLOSED, OPEN)


@dataclasses.dataclass(frozen=True)
class Code:
    """One member code of an open-set dimension.

    Attributes
    ----------
    id:
        Stable slug identifier, e.g. ``"secure-storage"``.
    abbrev:
        The abbreviation used in Table 1, e.g. ``"SS"``.
    name:
        Human-readable name, e.g. ``"Secure Storage"``.
    definition:
        The paper's definition of the code (used in legends/reports).
    """

    id: str
    abbrev: str
    name: str
    definition: str = ""

    def __post_init__(self) -> None:
        if not self.id:
            raise CodebookError("code id must be non-empty")
        if self.id != slugify(self.id):
            raise CodebookError(f"code id {self.id!r} is not a valid slug")
        if not self.abbrev:
            raise CodebookError(f"code {self.id!r} needs an abbreviation")

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.abbrev


@dataclasses.dataclass(frozen=True)
class Dimension:
    """One coding dimension (a column group cell of the coding matrix).

    Attributes
    ----------
    id:
        Stable slug identifier, e.g. ``"computer-misuse"``.
    name:
        Human-readable name, e.g. ``"Computer misuse"``.
    group:
        The column group the dimension belongs to, e.g. ``"legal"``,
        ``"ethical"``, ``"justification"``, ``"meta"``, ``"codes"``.
    kind:
        :data:`DimensionKind.CLOSED` or :data:`DimensionKind.OPEN`.
    allowed:
        For closed dimensions: the tuple of valid cell values.
    members:
        For open dimensions: the tuple of valid member :class:`Code`\\ s.
    description:
        Definition text from the paper.
    """

    id: str
    name: str
    group: str
    kind: str = DimensionKind.CLOSED
    allowed: tuple[CellValue, ...] = ()
    members: tuple[Code, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if self.id != slugify(self.id):
            raise CodebookError(f"dimension id {self.id!r} is not a slug")
        if self.kind not in DimensionKind.ALL:
            raise CodebookError(f"unknown dimension kind {self.kind!r}")
        if self.kind == DimensionKind.CLOSED:
            if not self.allowed:
                raise CodebookError(
                    f"closed dimension {self.id!r} needs allowed values"
                )
            if self.members:
                raise CodebookError(
                    f"closed dimension {self.id!r} must not declare members"
                )
        else:
            if not self.members:
                raise CodebookError(
                    f"open dimension {self.id!r} needs member codes"
                )
            if self.allowed:
                raise CodebookError(
                    f"open dimension {self.id!r} must not declare allowed "
                    "cell values"
                )
            ensure_unique((c.id for c in self.members), "member code id")
            ensure_unique((c.abbrev for c in self.members), "member abbrev")

    # -- closed-dimension helpers -------------------------------------
    def validate_value(self, value: CellValue) -> CellValue:
        """Check *value* is allowed for this closed dimension."""
        if self.kind != DimensionKind.CLOSED:
            raise CodebookError(
                f"dimension {self.id!r} holds code sets, not single values"
            )
        if value not in self.allowed:
            raise CodebookError(
                f"value {value!s} not allowed for dimension {self.id!r}"
            )
        return value

    # -- open-dimension helpers ---------------------------------------
    def code(self, key: str) -> Code:
        """Look up a member code by id or abbreviation."""
        if self.kind != DimensionKind.OPEN:
            raise CodebookError(f"dimension {self.id!r} has no member codes")
        for member in self.members:
            if key in (member.id, member.abbrev):
                return member
        raise UnknownCodeError(key, self.id)

    def validate_codes(self, keys: Iterable[str]) -> tuple[Code, ...]:
        """Resolve and validate an iterable of member code keys."""
        resolved = tuple(self.code(key) for key in keys)
        try:
            ensure_unique((c.id for c in resolved), "code")
        except ValueError as exc:
            raise CodebookError(str(exc)) from None
        return resolved

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


class Codebook:
    """An ordered registry of :class:`Dimension` objects.

    The codebook preserves declaration order (which defines column order
    when rendering coding matrices) and offers lookup by id and by group.
    """

    def __init__(self, name: str, dimensions: Sequence[Dimension]) -> None:
        if not name:
            raise CodebookError("codebook name must be non-empty")
        ensure_unique((d.id for d in dimensions), "dimension id")
        self.name = name
        self._dimensions: dict[str, Dimension] = {
            d.id: d for d in dimensions
        }

    # -- container protocol -------------------------------------------
    def __iter__(self) -> Iterator[Dimension]:
        return iter(self._dimensions.values())

    def __len__(self) -> int:
        return len(self._dimensions)

    def __contains__(self, dimension_id: str) -> bool:
        return dimension_id in self._dimensions

    def __getitem__(self, dimension_id: str) -> Dimension:
        try:
            return self._dimensions[dimension_id]
        except KeyError:
            raise UnknownDimensionError(dimension_id) from None

    # -- queries -------------------------------------------------------
    @property
    def dimension_ids(self) -> tuple[str, ...]:
        return tuple(self._dimensions)

    def group(self, group: str) -> tuple[Dimension, ...]:
        """All dimensions in declaration order belonging to *group*."""
        return tuple(d for d in self if d.group == group)

    @property
    def groups(self) -> tuple[str, ...]:
        """Distinct group names in first-appearance order."""
        seen: list[str] = []
        for dim in self:
            if dim.group not in seen:
                seen.append(dim.group)
        return tuple(seen)

    def closed_dimensions(self) -> tuple[Dimension, ...]:
        return tuple(
            d for d in self if d.kind == DimensionKind.CLOSED
        )

    def open_dimensions(self) -> tuple[Dimension, ...]:
        return tuple(d for d in self if d.kind == DimensionKind.OPEN)

    # -- validation -----------------------------------------------------
    def validate_coding(
        self,
        values: Mapping[str, CellValue],
        code_sets: Mapping[str, Iterable[str]],
    ) -> None:
        """Validate a full coding for one unit of analysis.

        *values* maps closed dimension ids to cell values; *code_sets*
        maps open dimension ids to iterables of member code keys. Every
        closed dimension must be assigned; open dimensions default to
        the empty set. Raises :class:`~repro.errors.CodebookError` on
        any schema violation.
        """
        for dim_id, value in values.items():
            self[dim_id].validate_value(value)
        for dim_id, keys in code_sets.items():
            self[dim_id].validate_codes(keys)
        missing = [
            d.id
            for d in self.closed_dimensions()
            if d.id not in values
        ]
        if missing:
            raise CodebookError(
                f"coding is missing closed dimensions: {missing}"
            )
        unknown = [
            key
            for key in (*values, *code_sets)
            if key not in self
        ]
        if unknown:  # pragma: no cover - guarded by __getitem__ above
            raise UnknownDimensionError(unknown[0])

    def legend(self) -> dict[str, dict[str, str]]:
        """Return ``{dimension id: {abbrev: name}}`` for open dimensions.

        Used by the table renderers to emit the Table 1 footer legend.
        """
        return {
            dim.id: {code.abbrev: code.name for code in dim.members}
            for dim in self.open_dimensions()
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Codebook({self.name!r}, {len(self)} dimensions)"
