"""The paper's codebook: the exact schema of Table 1.

This module instantiates the coding schema used by Thomas et al. to
systematize over 20 papers that used data of illicit origin:

* six **legal issues** (§3) coded for *applicability* (``•``),
* five **ethical issues** (§2.1) coded as discussed / not discussed,
* five **justifications** (§5.1) coded as used / not used (with the
  special ``declined`` value for the Patreon case),
* **ethics section** presence and **REB approval** status,
* three open-set code dimensions: **safeguards** (§5.2), **harms**
  (§5.3) and **benefits** (§5.4).

Definitions are quoted or paraphrased from the paper so the generated
legends and reports read like the original.
"""

from __future__ import annotations

from .model import Code, Codebook, Dimension, DimensionKind
from .values import CellValue

__all__ = [
    "paper_codebook",
    "LEGAL_DIMENSIONS",
    "ETHICAL_DIMENSIONS",
    "JUSTIFICATION_DIMENSIONS",
    "META_DIMENSIONS",
    "SAFEGUARD_CODES",
    "HARM_CODES",
    "BENEFIT_CODES",
]

_APPLICABILITY = (CellValue.APPLICABLE, CellValue.NOT_APPLICABLE)
_DISCUSSION = (CellValue.DISCUSSED, CellValue.NOT_DISCUSSED)
_JUSTIFICATION = (
    CellValue.DISCUSSED,
    CellValue.NOT_DISCUSSED,
    CellValue.DECLINED,
)
_REB = (
    CellValue.APPROVED,
    CellValue.NOT_MENTIONED,
    CellValue.EXEMPT,
    CellValue.NOT_RELEVANT,
)

#: §3 — legal issues, coded for applicability (• in Table 1).
LEGAL_DIMENSIONS: tuple[Dimension, ...] = (
    Dimension(
        id="computer-misuse",
        name="Computer misuse",
        group="legal",
        allowed=_APPLICABILITY,
        description=(
            "Laws against misuse or abuse of computers (e.g. UK Computer "
            "Misuse Act 1990, US 18 U.S.C. §1030, German StGB §§202a, "
            "263a, 303a, 303b), covering unauthorised use of a computer "
            "system and the use of malware or dual-use tools."
        ),
    ),
    Dimension(
        id="copyright",
        name="Copyright",
        group="legal",
        allowed=_APPLICABILITY,
        description=(
            "The right to produce copies, including database rights and "
            "trade secrets; affects further sharing of data with other "
            "researchers. Exemptions such as fair use vary by "
            "jurisdiction."
        ),
    ),
    Dimension(
        id="data-privacy",
        name="Data privacy",
        group="legal",
        allowed=_APPLICABILITY,
        description=(
            "Personally identifiable information must be protected and "
            "processed in accordance with data protection rules; in "
            "several jurisdictions IP addresses may be personal data. "
            "The GDPR applies from May 2018 with research provisions "
            "subject to safeguards."
        ),
    ),
    Dimension(
        id="terrorism",
        name="Terrorism",
        group="legal",
        allowed=_APPLICABILITY,
        description=(
            "In some jurisdictions it may be an offence to fail to "
            "report terrorist activity discovered during research, and "
            "possession of terrorist materials may be an offence unless "
            "research exceptions are met."
        ),
    ),
    Dimension(
        id="indecent-images",
        name="Indecent images",
        group="legal",
        allowed=_APPLICABILITY,
        description=(
            "Possession of indecent images of children is an offence in "
            "many jurisdictions with, in general, no research "
            "exemptions; care is needed when scraping or receiving data "
            "dumps that might contain such material."
        ),
    ),
    Dimension(
        id="national-security",
        name="National security",
        group="legal",
        allowed=_APPLICABILITY,
        description=(
            "Data may be protected by national security legislation; "
            "even if publicly available it may still be classified, and "
            "unauthorised use or publication may expose researchers to "
            "legal risk."
        ),
    ),
)

#: §2.1 — ethical issues, coded as discussed / not discussed.
ETHICAL_DIMENSIONS: tuple[Dimension, ...] = (
    Dimension(
        id="identification-of-stakeholders",
        name="Identification of stakeholders",
        group="ethical",
        allowed=_DISCUSSION,
        description=(
            "Primary, secondary and key stakeholders should be "
            "identified to support the analysis of the potential harms "
            "and benefits of the research."
        ),
    ),
    Dimension(
        id="identify-harms",
        name="Identify harms",
        group="ethical",
        allowed=_DISCUSSION,
        description=(
            "The potential harms arising from the use of the data of "
            "illicit origin should be identified."
        ),
    ),
    Dimension(
        id="safeguards-discussed",
        name="Safeguards",
        group="ethical",
        allowed=_DISCUSSION,
        description=(
            "Researchers should apply mechanisms to mitigate or reduce "
            "the potential for harm."
        ),
    ),
    Dimension(
        id="justice",
        name="Justice",
        group="ethical",
        allowed=_DISCUSSION,
        description=(
            "The research does not unfairly advantage or disadvantage "
            "any particular social or cultural group."
        ),
    ),
    Dimension(
        id="public-interest",
        name="Public interest",
        group="ethical",
        allowed=_DISCUSSION,
        description=(
            "The research has been published, is reproducible, and "
            "there is a social acceptability exceeding the harms."
        ),
    ),
)

#: §5.1 — common justifications for using data of illicit origin.
JUSTIFICATION_DIMENSIONS: tuple[Dimension, ...] = (
    Dimension(
        id="not-the-first",
        name="Not the first",
        group="justification",
        allowed=_JUSTIFICATION,
        description=(
            "Previous research using these data was published and "
            "peer-reviewed, and so our work must be ethical. The paper "
            "notes this is a poor argument: not all published work is "
            "ethical under current norms, and different uses require "
            "their own justification."
        ),
    ),
    Dimension(
        id="public-data",
        name="Public data",
        group="justification",
        allowed=_JUSTIFICATION,
        description=(
            "Since these data are publicly available, anything we do "
            "with them is ethical. The ethics must still be considered; "
            "REB review may still be required and new techniques applied "
            "to public data may cause harm."
        ),
    ),
    Dimension(
        id="no-additional-harm",
        name="No additional harm",
        group="justification",
        allowed=_JUSTIFICATION,
        description=(
            "Any harms have already occurred, so the work produces "
            "benefits and no (or negligible) additional harm. Requires "
            "that no natural persons are identified and data is stored "
            "securely; for some data any use is additional harm."
        ),
    ),
    Dimension(
        id="fight-malicious-use",
        name="Fight malicious use",
        group="justification",
        allowed=_JUSTIFICATION,
        description=(
            "These data are already used by malicious actors, so we "
            "need to use them to defend against those actors. May be "
            "ethical if the same data prevents or reduces harm without "
            "creating greater harm."
        ),
    ),
    Dimension(
        id="necessary-data",
        name="Necessary data",
        group="justification",
        allowed=_JUSTIFICATION,
        description=(
            "This research cannot be conducted without using this "
            "data. A good justification only when there is sufficient "
            "public-interest benefit and no additional harm."
        ),
    ),
)

#: Ethics-section presence and REB status columns.
META_DIMENSIONS: tuple[Dimension, ...] = (
    Dimension(
        id="ethics-section",
        name="Ethics section",
        group="meta",
        allowed=_DISCUSSION,
        description=(
            "Whether the paper includes an explicit ethics section "
            "(Partridge argues network measurement papers should, "
            "partly to increase the availability of examples of "
            "ethical reasoning)."
        ),
    ),
    Dimension(
        id="reb-approval",
        name="REB approval",
        group="meta",
        allowed=_REB,
        description=(
            "Whether the work records Research Ethics Board approval: "
            "approved, exempt (E), not mentioned, or not applicable "
            "(∅, the data was not used)."
        ),
    ),
)

#: §5.2 — safeguards.
SAFEGUARD_CODES: tuple[Code, ...] = (
    Code(
        id="secure-storage",
        abbrev="SS",
        name="Secure Storage",
        definition=(
            "The integrity and confidentiality of the data are "
            "maintained, e.g. by encryption and access control to avoid "
            "accidental leakage."
        ),
    ),
    Code(
        id="privacy",
        abbrev="P",
        name="Privacy",
        definition=(
            "No deanonymisation is attempted and no identities are "
            "revealed."
        ),
    ),
    Code(
        id="controlled-sharing",
        abbrev="CS",
        name="Controlled Sharing",
        definition=(
            "Only partial/anonymised data is published, or data is "
            "provided under legal agreements that prevent harms, or not "
            "made publicly available (including analysis performed by "
            "the holding institution on behalf of other researchers)."
        ),
    ),
)

#: §5.3 — harms.
HARM_CODES: tuple[Code, ...] = (
    Code(
        id="illicit-measurement",
        abbrev="I",
        name="Illicit measurement",
        definition=(
            "The research obtained the data by illicit activities such "
            "as hacking or paying the offenders, which can lead to "
            "researchers being prosecuted."
        ),
    ),
    Code(
        id="potential-abuse",
        abbrev="PA",
        name="Potential Abuse",
        definition=(
            "Research results can be used by malicious actors to cause "
            "additional harm, e.g. designing evasive malware or "
            "updating password cracking policies."
        ),
    ),
    Code(
        id="de-anonymization",
        abbrev="DA",
        name="De-Anonymization",
        definition=(
            "Research on these data can be used to de-anonymise or "
            "re-identify people or networks; identification of groups "
            "may raise concerns such as discrimination or violence."
        ),
    ),
    Code(
        id="sensitive-information",
        abbrev="SI",
        name="Sensitive Information",
        definition=(
            "The data contains sensitive and private information which "
            "can be used to harm natural persons, e.g. leaked passwords "
            "compromising other services through reuse."
        ),
    ),
    Code(
        id="researcher-harm",
        abbrev="RH",
        name="Researcher Harm",
        definition=(
            "The research can lead to researchers being prosecuted, "
            "threatened by criminals or state/industry actors, or "
            "emotionally traumatised by distressing content."
        ),
    ),
    Code(
        id="behavioural-change",
        abbrev="BC",
        name="Behavioural Change",
        definition=(
            "The research can change the behaviour of the stakeholders "
            "with negative consequences, e.g. measured vendors "
            "providing fake information, or encouraging future "
            "collection or use of data of illicit origin."
        ),
    ),
)

#: §5.4 — benefits.
BENEFIT_CODES: tuple[Code, ...] = (
    Code(
        id="reproducibility",
        abbrev="R",
        name="Reproducibility",
        definition=(
            "The data allows the comparison of different algorithms or "
            "tools; controlled sharing is required when the data "
            "contains sensitive information."
        ),
    ),
    Code(
        id="uniqueness",
        abbrev="U",
        name="Uniqueness",
        definition=(
            "Data is unique or historical, so similar measurements on "
            "the same topic are hard or impossible to attain; only a "
            "benefit if the data is also useful."
        ),
    ),
    Code(
        id="defence-mechanisms",
        abbrev="DM",
        name="Defence Mechanisms",
        definition=(
            "Data can be used to study the underground economy, new "
            "forms of cybercrime or new attack techniques, enabling new "
            "defences such as anti-malware tools or password policies."
        ),
    ),
    Code(
        id="anthropology-transparency",
        abbrev="AT",
        name="Anthropology and Transparency",
        definition=(
            "Data contains ground truth on human behaviour that other "
            "methods could only obtain in a filtered or biased way, and "
            "can provide transparency into state or corporate actors, "
            "providing checks and balances on power."
        ),
    ),
)

#: Open-set dimensions holding the three code families.
CODE_DIMENSIONS: tuple[Dimension, ...] = (
    Dimension(
        id="safeguards",
        name="Safeguards",
        group="codes",
        kind=DimensionKind.OPEN,
        members=SAFEGUARD_CODES,
        description="Safeguards applied by the researchers (§5.2).",
    ),
    Dimension(
        id="harms",
        name="Harms",
        group="codes",
        kind=DimensionKind.OPEN,
        members=HARM_CODES,
        description="Potential harms discussed by the researchers (§5.3).",
    ),
    Dimension(
        id="benefits",
        name="Benefits",
        group="codes",
        kind=DimensionKind.OPEN,
        members=BENEFIT_CODES,
        description="Benefits discussed by the researchers (§5.4).",
    ),
)


def paper_codebook() -> Codebook:
    """Build a fresh :class:`Codebook` instance matching Table 1.

    The returned codebook has 16 closed dimensions (6 legal, 5 ethical,
    5 justification) plus ethics-section and REB columns and 3 open-set
    code dimensions, in the paper's column order.
    """
    return Codebook(
        name="thomas2017-illicit-origin",
        dimensions=(
            *LEGAL_DIMENSIONS,
            *ETHICAL_DIMENSIONS,
            *JUSTIFICATION_DIMENSIONS,
            *META_DIMENSIONS,
            *CODE_DIMENSIONS,
        ),
    )
