"""Coding schema (codebook) for the systematization of Table 1.

Public API:

* :class:`~repro.codebook.values.CellValue` and
  :func:`~repro.codebook.values.parse_glyph` — cell value vocabulary.
* :class:`~repro.codebook.model.Code`,
  :class:`~repro.codebook.model.Dimension`,
  :class:`~repro.codebook.model.Codebook` — schema objects.
* :func:`~repro.codebook.paper.paper_codebook` — the paper's schema.
* :func:`~repro.codebook.merge.merge_codebooks` — multi-coder merge
  with explicit conflict records, plus the dict round-trip and the
  worked second-coder variant.
"""

from .merge import (
    MergeConflict,
    MergeResult,
    codebook_from_dict,
    codebook_to_dict,
    example_coder_variant,
    merge_codebooks,
)
from .model import Code, Codebook, Dimension, DimensionKind
from .paper import (
    BENEFIT_CODES,
    CODE_DIMENSIONS,
    ETHICAL_DIMENSIONS,
    HARM_CODES,
    JUSTIFICATION_DIMENSIONS,
    LEGAL_DIMENSIONS,
    META_DIMENSIONS,
    SAFEGUARD_CODES,
    paper_codebook,
)
from .values import GLYPHS, CellValue, parse_glyph

__all__ = [
    "BENEFIT_CODES",
    "CODE_DIMENSIONS",
    "CellValue",
    "Code",
    "Codebook",
    "Dimension",
    "DimensionKind",
    "ETHICAL_DIMENSIONS",
    "GLYPHS",
    "HARM_CODES",
    "JUSTIFICATION_DIMENSIONS",
    "LEGAL_DIMENSIONS",
    "META_DIMENSIONS",
    "MergeConflict",
    "MergeResult",
    "SAFEGUARD_CODES",
    "codebook_from_dict",
    "codebook_to_dict",
    "example_coder_variant",
    "merge_codebooks",
    "paper_codebook",
    "parse_glyph",
]
