"""Code values used in qualitative coding cells.

Table 1 of the paper uses a small glyph vocabulary:

* ``•``  — a legal issue is applicable to the work (even if not discussed)
* ``✓``  — an ethical issue was discussed / a justification was used
  (rendered as the dingbat ``3`` in the paper's font)
* ``✗``  — not discussed / not used (rendered as ``5``)
* ``l``  — the authors decided the use could not be justified and declined
  to use the dataset (only the Patreon row)
* ``E``  — the work was exempted from REB approval
* ``∅``  — REB approval is not applicable (the work did not use the data)
* ``✓``/``✗`` in the REB column mean approval obtained / not mentioned

This module models those cell values as an enumeration plus helpers for
parsing and rendering the glyphs.
"""

from __future__ import annotations

import enum

from ..errors import CodebookError

__all__ = ["CellValue", "GLYPHS", "parse_glyph"]


class CellValue(enum.Enum):
    """The value of one coding cell in a coding matrix."""

    #: A legal issue applies to the work (Table 1 ``•``).
    APPLICABLE = "applicable"
    #: A legal issue does not apply (blank cell).
    NOT_APPLICABLE = "not-applicable"
    #: The issue/justification was discussed or used (``✓``).
    DISCUSSED = "discussed"
    #: The issue/justification was not discussed or used (``✗``).
    NOT_DISCUSSED = "not-discussed"
    #: The authors considered the justification and declined to rely on
    #: it, choosing not to use the dataset at all (``l``).
    DECLINED = "declined"
    #: REB approval was obtained (``✓`` in the REB column).
    APPROVED = "approved"
    #: REB approval was not mentioned (``✗`` in the REB column).
    NOT_MENTIONED = "not-mentioned"
    #: The work was explicitly exempted by an REB (``E``).
    EXEMPT = "exempt"
    #: The dimension does not apply to this entry (``∅``).
    NOT_RELEVANT = "not-relevant"

    @property
    def is_positive(self) -> bool:
        """True when the cell counts as a "yes" in frequency tables."""
        return self in _POSITIVE

    @property
    def glyph(self) -> str:
        """The Table 1 glyph used to render this value."""
        return GLYPHS[self]

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


_POSITIVE = frozenset(
    {CellValue.APPLICABLE, CellValue.DISCUSSED, CellValue.APPROVED}
)

#: Rendering glyphs, following the paper's legend.
GLYPHS: dict[CellValue, str] = {
    CellValue.APPLICABLE: "•",  # •
    CellValue.NOT_APPLICABLE: " ",
    CellValue.DISCUSSED: "✓",  # ✓
    CellValue.NOT_DISCUSSED: "✗",  # ✗
    CellValue.DECLINED: "l",
    CellValue.APPROVED: "✓",
    CellValue.NOT_MENTIONED: "✗",
    CellValue.EXEMPT: "E",
    CellValue.NOT_RELEVANT: "∅",  # ∅
}

#: Accepted textual spellings when parsing cell values. The dingbat
#: digits ``3``/``5`` appear in text extractions of the paper (the tick
#: and cross were typeset from a dingbat font).
_PARSE: dict[str, CellValue] = {
    "•": CellValue.APPLICABLE,
    "*": CellValue.APPLICABLE,
    "✓": CellValue.DISCUSSED,
    "3": CellValue.DISCUSSED,
    "y": CellValue.DISCUSSED,
    "yes": CellValue.DISCUSSED,
    "✗": CellValue.NOT_DISCUSSED,
    "5": CellValue.NOT_DISCUSSED,
    "n": CellValue.NOT_DISCUSSED,
    "no": CellValue.NOT_DISCUSSED,
    "l": CellValue.DECLINED,
    "e": CellValue.EXEMPT,
    "∅": CellValue.NOT_RELEVANT,
    "na": CellValue.NOT_RELEVANT,
    "": CellValue.NOT_APPLICABLE,
}


def parse_glyph(text: str, *, reb_column: bool = False) -> CellValue:
    """Parse a Table 1 glyph (or a common textual spelling) to a value.

    In the REB column the tick and cross glyphs mean *approved* and
    *not mentioned* rather than *discussed* / *not discussed*; pass
    ``reb_column=True`` to get that interpretation.

    Raises :class:`~repro.errors.CodebookError` for unknown glyphs.
    """
    key = text.strip().lower()
    try:
        value = _PARSE[key]
    except KeyError:
        raise CodebookError(f"unrecognised coding glyph {text!r}") from None
    if reb_column:
        if value is CellValue.DISCUSSED:
            return CellValue.APPROVED
        if value is CellValue.NOT_DISCUSSED:
            return CellValue.NOT_MENTIONED
    return value
