"""Multi-coder codebook merge with explicit conflict records.

When several coders independently extend the coding schema (new harm
codes, renamed safeguards, tightened definitions), their codebooks
must be reconciled before inter-rater reliability or a joint report
makes sense. :func:`merge_codebooks` merges any number of codebooks
under a ``union`` or ``intersection`` strategy, records every
disagreement as a :class:`MergeConflict` (nothing is silently
dropped), and resolves each conflict deterministically: the earliest
codebook in the argument order wins, so the merge is a pure function
of its inputs.

:func:`codebook_to_dict` / :func:`codebook_from_dict` give codebooks
a JSON-serialisable round-trip so coder variants can be shipped as
data files through the ops layer, and :func:`example_coder_variant`
builds the worked second-coder schema used by the docs and the
``codebook merge`` operation's default demonstration.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping, Sequence

from ..errors import CodebookError
from .model import Code, Codebook, Dimension, DimensionKind
from .paper import paper_codebook
from .values import CellValue

__all__ = [
    "MergeConflict",
    "MergeResult",
    "codebook_from_dict",
    "codebook_to_dict",
    "example_coder_variant",
    "merge_codebooks",
]

_STRATEGIES = ("union", "intersection")


@dataclasses.dataclass(frozen=True)
class MergeConflict:
    """One recorded disagreement between merged codebooks.

    ``field`` names what disagreed: a dimension attribute
    (``"name"``, ``"kind"``, ``"description"``, ``"allowed"``), a
    member-code attribute (``"member:<code id>/<attribute>"``), or a
    structural drop (``"dimension"``, ``"members"``). ``values`` maps
    each source codebook's name to its value, in argument order;
    ``resolution`` states what the merge kept.
    """

    dimension_id: str
    field: str
    values: dict[str, str]
    resolution: str

    def describe(self) -> str:
        """One-line rendering used by the CLI output."""
        sides = "; ".join(
            f"{source}={value!r}" for source, value in self.values.items()
        )
        return (
            f"{self.dimension_id}.{self.field}: {sides} -> "
            f"{self.resolution}"
        )


@dataclasses.dataclass(frozen=True)
class MergeResult:
    """The merged codebook plus the full conflict record."""

    codebook: Codebook
    conflicts: tuple[MergeConflict, ...]
    strategy: str
    sources: tuple[str, ...]


def _merge_members(
    dimension_id: str,
    variants: list[tuple[str, Dimension]],
    strategy: str,
    conflicts: list[MergeConflict],
) -> tuple[Code, ...]:
    """Merge open-dimension member codes across codebook variants."""
    first_source, first = variants[0]
    by_id: dict[str, Code] = {c.id: c for c in first.members}
    order = [c.id for c in first.members]
    extras: list[str] = []
    for source, variant in variants[1:]:
        for code in variant.members:
            if code.id not in by_id:
                if strategy == "union":
                    by_id[code.id] = code
                    order.append(code.id)
                elif code.id not in extras:
                    extras.append(code.id)
                continue
            kept = by_id[code.id]
            for attribute in ("abbrev", "name", "definition"):
                ours = getattr(kept, attribute)
                theirs = getattr(code, attribute)
                if ours != theirs:
                    conflicts.append(
                        MergeConflict(
                            dimension_id=dimension_id,
                            field=f"member:{code.id}/{attribute}",
                            values={first_source: ours, source: theirs},
                            resolution=f"kept {first_source}'s value",
                        )
                    )
    if strategy == "intersection":
        common = set(order)
        for source, variant in variants[1:]:
            common &= {c.id for c in variant.members}
        dropped = [
            code_id for code_id in order if code_id not in common
        ] + extras
        if dropped:
            conflicts.append(
                MergeConflict(
                    dimension_id=dimension_id,
                    field="members",
                    values={
                        source: ",".join(c.id for c in variant.members)
                        for source, variant in variants
                    },
                    resolution=f"dropped {', '.join(dropped)}",
                )
            )
        order = [code_id for code_id in order if code_id in common]
    return tuple(by_id[code_id] for code_id in order)


def _merge_allowed(
    dimension_id: str,
    variants: list[tuple[str, Dimension]],
    strategy: str,
    conflicts: list[MergeConflict],
) -> tuple[CellValue, ...]:
    """Merge closed-dimension allowed values across variants."""
    first_source, first = variants[0]
    allowed = list(first.allowed)
    disagreement = any(
        tuple(variant.allowed) != tuple(first.allowed)
        for _, variant in variants[1:]
    )
    if disagreement:
        conflicts.append(
            MergeConflict(
                dimension_id=dimension_id,
                field="allowed",
                values={
                    source: ",".join(v.value for v in variant.allowed)
                    for source, variant in variants
                },
                resolution=f"{strategy} of the allowed sets",
            )
        )
    if strategy == "union":
        for _, variant in variants[1:]:
            for value in variant.allowed:
                if value not in allowed:
                    allowed.append(value)
    else:
        common = set(allowed)
        for _, variant in variants[1:]:
            common &= set(variant.allowed)
        allowed = [v for v in allowed if v in common]
    return tuple(allowed)


def merge_codebooks(
    codebooks: Sequence[Codebook],
    *,
    strategy: str = "union",
    name: str | None = None,
) -> MergeResult:
    """Merge several coders' codebooks into one, recording conflicts.

    ``strategy="union"`` keeps every dimension, allowed value and
    member code any coder declared; ``"intersection"`` keeps only
    what all coders share (dropping the rest, with a conflict record
    per drop). Attribute disagreements (names, definitions, kinds)
    are always resolved in favour of the earliest codebook and always
    recorded. Ordering follows the first codebook, with
    union-only additions appended in later codebooks' order, so the
    merge is deterministic in the argument order.
    """
    if strategy not in _STRATEGIES:
        raise CodebookError(
            f"unknown merge strategy {strategy!r}; "
            f"choose from {list(_STRATEGIES)}"
        )
    if not codebooks:
        raise CodebookError("merge_codebooks needs at least one codebook")
    sources = tuple(book.name for book in codebooks)
    if len(set(sources)) != len(sources):
        raise CodebookError(
            "merged codebooks must have distinct names; got "
            f"{list(sources)}"
        )
    conflicts: list[MergeConflict] = []
    order: list[str] = []
    variants_by_id: dict[str, list[tuple[str, Dimension]]] = {}
    for book in codebooks:
        for dimension in book:
            if dimension.id not in variants_by_id:
                variants_by_id[dimension.id] = []
                order.append(dimension.id)
            variants_by_id[dimension.id].append((book.name, dimension))

    merged: list[Dimension] = []
    for dimension_id in order:
        variants = variants_by_id[dimension_id]
        first_source, first = variants[0]
        if strategy == "intersection" and len(variants) < len(codebooks):
            conflicts.append(
                MergeConflict(
                    dimension_id=dimension_id,
                    field="dimension",
                    values={source: "present" for source, _ in variants},
                    resolution="dropped (not coded by every coder)",
                )
            )
            continue
        kind_disagreement = [
            (source, variant)
            for source, variant in variants[1:]
            if variant.kind != first.kind
        ]
        for source, variant in kind_disagreement:
            conflicts.append(
                MergeConflict(
                    dimension_id=dimension_id,
                    field="kind",
                    values={first_source: first.kind, source: variant.kind},
                    resolution=f"kept {first_source}'s {first.kind!r}",
                )
            )
        comparable = [
            (source, variant)
            for source, variant in variants
            if variant.kind == first.kind
        ]
        for attribute in ("name", "group", "description"):
            ours = getattr(first, attribute)
            for source, variant in comparable[1:]:
                theirs = getattr(variant, attribute)
                if ours != theirs:
                    conflicts.append(
                        MergeConflict(
                            dimension_id=dimension_id,
                            field=attribute,
                            values={first_source: ours, source: theirs},
                            resolution=f"kept {first_source}'s value",
                        )
                    )
        if first.kind == DimensionKind.OPEN:
            members = _merge_members(
                dimension_id, comparable, strategy, conflicts
            )
            if not members:
                conflicts.append(
                    MergeConflict(
                        dimension_id=dimension_id,
                        field="dimension",
                        values={
                            source: ",".join(c.id for c in variant.members)
                            for source, variant in comparable
                        },
                        resolution="dropped (no shared member codes)",
                    )
                )
                continue
            merged.append(dataclasses.replace(first, members=members))
        else:
            allowed = _merge_allowed(
                dimension_id, comparable, strategy, conflicts
            )
            if not allowed:
                conflicts.append(
                    MergeConflict(
                        dimension_id=dimension_id,
                        field="dimension",
                        values={
                            source: ",".join(
                                v.value for v in variant.allowed
                            )
                            for source, variant in comparable
                        },
                        resolution="dropped (no shared allowed values)",
                    )
                )
                continue
            merged.append(dataclasses.replace(first, allowed=allowed))

    merged_name = name or "+".join(sources)
    return MergeResult(
        codebook=Codebook(merged_name, merged),
        conflicts=tuple(conflicts),
        strategy=strategy,
        sources=sources,
    )


def codebook_to_dict(codebook: Codebook) -> dict:
    """Serialise a codebook to a JSON-compatible dict."""
    return {
        "name": codebook.name,
        "dimensions": [
            {
                "id": dim.id,
                "name": dim.name,
                "group": dim.group,
                "kind": dim.kind,
                "allowed": [value.value for value in dim.allowed],
                "members": [
                    {
                        "id": code.id,
                        "abbrev": code.abbrev,
                        "name": code.name,
                        "definition": code.definition,
                    }
                    for code in dim.members
                ],
                "description": dim.description,
            }
            for dim in codebook
        ],
    }


def codebook_from_dict(data: Mapping) -> Codebook:
    """Rebuild a codebook from :func:`codebook_to_dict` output.

    Raises :class:`~repro.errors.CodebookError` on malformed input,
    including unknown cell values and schema-violating dimensions.
    """
    try:
        dimensions = [
            Dimension(
                id=spec["id"],
                name=spec.get("name", spec["id"]),
                group=spec.get("group", "codes"),
                kind=spec.get("kind", DimensionKind.CLOSED),
                allowed=tuple(
                    CellValue(value) for value in spec.get("allowed", ())
                ),
                members=tuple(
                    Code(
                        id=member["id"],
                        abbrev=member["abbrev"],
                        name=member.get("name", member["id"]),
                        definition=member.get("definition", ""),
                    )
                    for member in spec.get("members", ())
                ),
                description=spec.get("description", ""),
            )
            for spec in data["dimensions"]
        ]
        return Codebook(data["name"], dimensions)
    except (KeyError, TypeError, ValueError) as exc:
        raise CodebookError(f"malformed codebook spec: {exc}") from exc


def example_coder_variant() -> Codebook:
    """A worked second-coder variant of the paper's codebook.

    Models the drift a real second coder produces: a new harm code
    (``CE`` — chilling effects, from the paper's §5.3 discussion), a
    reworded safeguard name, and a tightened definition on the
    harm-identification dimension. Merging this against
    :func:`~repro.codebook.paper.paper_codebook` therefore yields one
    union-only addition and two attribute conflicts — the
    demonstration scenario used by ``repro-ethics codebook merge``
    and ``docs/reporting.md``.
    """
    spec = codebook_to_dict(paper_codebook())
    spec["name"] = "illicit-origin-coding-coder-b"
    for dimension in spec["dimensions"]:
        if dimension["id"] == "harms":
            dimension["members"].append(
                {
                    "id": "chilling-effects",
                    "abbrev": "CE",
                    "name": "Chilling effects",
                    "definition": (
                        "Exposure may deter lawful behaviour by "
                        "persons in the dataset."
                    ),
                }
            )
        if dimension["id"] == "safeguards":
            for member in dimension["members"]:
                if member["id"] == "secure-storage":
                    member["name"] = "Secured storage"
        if dimension["id"] == "identify-harms":
            dimension["description"] = (
                "Potential harms to any stakeholder are enumerated "
                "explicitly, not merely acknowledged."
            )
    return codebook_from_dict(spec)
