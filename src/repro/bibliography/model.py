"""Reference records and the bibliography registry.

The paper cites 124 works; case studies in the corpus point at them by
reference number (e.g. the Carna scan row cites [18]). The bibliography
provides lookup by number or citation key and simple citation
formatting used by the report generators.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Iterator

from .._util import slugify
from ..errors import BibliographyError

__all__ = ["Reference", "Bibliography", "ReferenceType"]


class ReferenceType:
    """String constants categorising a reference."""

    PAPER = "paper"  # peer-reviewed paper
    TECH_REPORT = "tech-report"
    BOOK = "book"
    THESIS = "thesis"
    LAW = "law"  # statute, regulation or court ruling
    WEB = "web"  # blog post, news article, web page
    RFC = "rfc"
    TALK = "talk"
    DATASET = "dataset"

    ALL = (
        PAPER,
        TECH_REPORT,
        BOOK,
        THESIS,
        LAW,
        WEB,
        RFC,
        TALK,
        DATASET,
    )


@dataclasses.dataclass(frozen=True)
class Reference:
    """One bibliography entry.

    Attributes
    ----------
    number:
        The bracketed reference number in the paper, 1..124.
    key:
        A stable citation key, e.g. ``"dittrich2012menlo"``.
    authors:
        Author (or institution) names, in order.
    year:
        Publication year; 0 for undated web resources.
    title:
        Title of the work.
    venue:
        Venue / publisher / source (may be empty for laws).
    type:
        One of :class:`ReferenceType`.
    doi:
        DOI string when the paper records one.
    """

    number: int
    key: str
    authors: tuple[str, ...]
    year: int
    title: str
    venue: str = ""
    type: str = ReferenceType.PAPER
    doi: str = ""

    def __post_init__(self) -> None:
        if self.number < 1:
            raise BibliographyError("reference number must be >= 1")
        if not self.key or self.key != slugify(self.key):
            raise BibliographyError(
                f"reference key {self.key!r} must be a slug"
            )
        if self.type not in ReferenceType.ALL:
            raise BibliographyError(
                f"unknown reference type {self.type!r} for [{self.number}]"
            )
        if not self.title:
            raise BibliographyError(f"reference [{self.number}] needs title")

    @property
    def first_author(self) -> str:
        return self.authors[0] if self.authors else ""

    @property
    def is_peer_reviewed(self) -> bool:
        """Peer-reviewed in the loose sense used by the paper's Table 1.

        The paper marks non-peer-reviewed works with footnote ``a``; at
        the bibliography level we treat papers and RFCs as peer reviewed
        and everything else as not.
        """
        return self.type in (ReferenceType.PAPER, ReferenceType.RFC)

    def cite(self) -> str:
        """Short inline citation: ``Author et al. (Year)``."""
        if not self.authors:
            head = self.title
        elif len(self.authors) == 1:
            head = self.authors[0]
        elif len(self.authors) == 2:
            head = f"{self.authors[0]} and {self.authors[1]}"
        else:
            head = f"{self.authors[0]} et al."
        year = str(self.year) if self.year else "n.d."
        return f"{head} ({year})"

    def format(self) -> str:
        """Full one-line bibliography entry."""
        authors = ", ".join(self.authors) if self.authors else "Anon."
        year = str(self.year) if self.year else "n.d."
        parts = [f"[{self.number}]", f"{authors}.", f"{year}.", self.title + "."]
        if self.venue:
            parts.append(self.venue + ".")
        if self.doi:
            parts.append(f"doi:{self.doi}")
        return " ".join(parts)


class Bibliography:
    """Registry of :class:`Reference` records with number/key lookup."""

    def __init__(self, references: Iterable[Reference]) -> None:
        self._by_number: dict[int, Reference] = {}
        self._by_key: dict[str, Reference] = {}
        for ref in references:
            if ref.number in self._by_number:
                raise BibliographyError(
                    f"duplicate reference number {ref.number}"
                )
            if ref.key in self._by_key:
                raise BibliographyError(f"duplicate reference key {ref.key!r}")
            self._by_number[ref.number] = ref
            self._by_key[ref.key] = ref

    def __iter__(self) -> Iterator[Reference]:
        return iter(
            self._by_number[n] for n in sorted(self._by_number)
        )

    def __len__(self) -> int:
        return len(self._by_number)

    def __contains__(self, key: int | str) -> bool:
        if isinstance(key, int):
            return key in self._by_number
        return key in self._by_key

    def __getitem__(self, key: int | str) -> Reference:
        try:
            if isinstance(key, int):
                return self._by_number[key]
            return self._by_key[key]
        except KeyError:
            raise BibliographyError(f"unknown reference {key!r}") from None

    def by_type(self, type: str) -> tuple[Reference, ...]:
        return tuple(r for r in self if r.type == type)

    def by_year(self, year: int) -> tuple[Reference, ...]:
        return tuple(r for r in self if r.year == year)

    def search(self, text: str) -> tuple[Reference, ...]:
        """Case-insensitive substring search over titles and authors."""
        needle = text.lower()
        return tuple(
            r
            for r in self
            if needle in r.title.lower()
            or any(needle in a.lower() for a in r.authors)
        )
