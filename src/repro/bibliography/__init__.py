"""Structured bibliography of the paper's 124 references."""

from .data import REFERENCES, paper_bibliography
from .model import Bibliography, Reference, ReferenceType

__all__ = [
    "Bibliography",
    "REFERENCES",
    "Reference",
    "ReferenceType",
    "paper_bibliography",
]
