"""Declarative policy knowledge base (legal rules + Menlo checks).

The paper's §3 legal analysis, §2 Menlo principle checks and the
assessment engine's verdict-folding policy are expressed as *policy
packs* — plain JSON-serialisable dicts (see
:mod:`repro.policy.defaults`) validated by
:func:`~repro.policy.model.validate_pack` and lowered by
:class:`~repro.policy.compiler.CompiledPolicy` into flat decision
tables: interned fact bits and precomputed condition masks evaluated
without per-rule Python dispatch. ``legal/rules.py`` and
``assessment/engine.py`` run on top of the compiled default pack and
reproduce their historical outputs exactly; venue variants are data
drops, hot-swappable by content digest without a restart.
"""

from __future__ import annotations

from .compiler import CompiledPolicy
from .defaults import (
    DEFAULT_PACK,
    PRECAUTIONARY_PACK,
    legal_issue_ids,
    menlo_principle_ids,
    table1_issue_ids,
)
from .facts import assessment_facts, menlo_facts
from .interpreter import PolicyInterpreter
from .model import (
    PolicyPack,
    RISK_ORDER,
    STATUS_ORDER,
    VERDICT_ORDER,
    load_pack,
    pack_digest,
    validate_pack,
)
from .runtime import (
    bundled_pack_names,
    compiled_policy,
    default_policy,
    pack_digest_for,
    resolve_pack,
)

__all__ = [
    "CompiledPolicy",
    "DEFAULT_PACK",
    "PRECAUTIONARY_PACK",
    "PolicyInterpreter",
    "PolicyPack",
    "RISK_ORDER",
    "STATUS_ORDER",
    "VERDICT_ORDER",
    "assessment_facts",
    "bundled_pack_names",
    "compiled_policy",
    "default_policy",
    "legal_issue_ids",
    "load_pack",
    "menlo_facts",
    "menlo_principle_ids",
    "pack_digest",
    "pack_digest_for",
    "resolve_pack",
    "table1_issue_ids",
    "validate_pack",
]
