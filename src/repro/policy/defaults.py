"""The bundled policy packs: the paper's rules as plain data.

``DEFAULT_PACK`` transcribes the §3 legal analysis, the §2 Menlo
principle checks and the assessment engine's verdict-folding policy
into one declarative dict — every rationale, defence, mitigation and
recommendation string the legacy engines emitted lives here now, so
the compiled pack is output-identical to the code it replaced (the
golden-parity acceptance gate). ``PRECAUTIONARY_PACK`` is a worked
variant venue policy (medium/low legal risk already requires REB
review) used by the hot-swap demonstrations.

This module is **pure data**: no imports from the rest of the
package, so the legal and assessment layers can derive their issue
catalogues from it without import cycles. The schema is documented
in ``docs/policy.md`` and enforced by
:func:`repro.policy.model.validate_pack`.
"""

from __future__ import annotations

import copy

__all__ = [
    "DEFAULT_PACK",
    "PRECAUTIONARY_PACK",
    "legal_issue_ids",
    "menlo_principle_ids",
    "table1_issue_ids",
]

#: The generic defences every criminal-exposure finding carries, and
#: the extra defence REB approval unlocks (inserted at the front).
_BASE_DEFENCES = (
    "mens rea: demonstrating lack of criminal intent may defeat "
    "prosecution",
    "prosecution may not be in the public interest (uncertain)",
)
_REB_DEFENCE = (
    "REB approval evidences lack of criminal intent and engages "
    "institutional legal support"
)

#: Shared mitigation bundle for applicable data-privacy findings.
_PRIVACY_MITIGATIONS = [
    "pseudonymise identifiers (hash emails, prefix-preserving "
    "anonymisation of IP addresses)",
    "apply data minimisation and encrypt at rest",
    "keep personal data out of publications",
]
_PRIVACY_EXEMPT_RATIONALE = (
    "personal data is present but a research exemption is "
    "available subject to safeguards (GDPR Art. 89 / BDSG "
    "§28.2.3 style)"
)
_PRIVACY_PLAIN_RATIONALE = (
    "personal data is present and no statutory research "
    "exemption applies"
)
_NO_DEANON = "do not attempt to deanonymise or re-identify anyone"

_TERRORISM_RATIONALE = (
    "the data may contain terrorist material; possession "
    "requires research exceptions and discovery may trigger "
    "reporting duties"
)
_TERRORISM_REB = (
    "obtain REB approval and institutional oversight before "
    "handling terrorist materials (Universities UK guidance)"
)

DEFAULT_PACK: dict = {
    "name": "default",
    "version": 1,
    "description": (
        "the paper's §3 legal rules, §2 Menlo principle checks and "
        "the §6 verdict-folding policy, as shipped"
    ),
    "facts": {
        # Base facts bound 1:1 to DataProfile boolean attributes.
        "profile": [
            "contains_personal_data",
            "contains_credentials",
            "contains_email_addresses",
            "contains_ip_addresses",
            "contains_private_messages",
            "contains_financial_records",
            "contains_malware_or_exploits",
            "copyrighted_material",
            "us_government_work",
            "classified",
            "state_sensitive",
            "terrorism_related",
            "may_contain_indecent_images",
            "publicly_available",
            "collected_by_researcher_intrusion",
            "paid_offenders",
            "plans_public_redistribution",
            "plans_controlled_sharing",
            "plans_deanonymization",
            "violates_terms_of_service",
        ],
        # Facts true when the profile's origin equals the value.
        "origin": {
            "origin_vulnerability_exploitation": (
                "vulnerability-exploitation"
            ),
            "origin_unintended_disclosure": "unintended-disclosure",
            "origin_unauthorized_leak": "unauthorized-leak",
        },
        # Facts bound to Jurisdiction boolean attributes.
        "jurisdiction": {
            "j_ip_addresses_personal": "ip_addresses_personal",
            "j_research_data_exemption": "research_data_exemption",
            "j_must_report_terrorism": "must_report_terrorism",
        },
        # Derived facts: boolean expressions over earlier facts,
        # resolved in dependency order by the compiler.
        "derived": [
            {
                "name": "any_personal_data",
                "any": [
                    "contains_personal_data",
                    "contains_credentials",
                    "contains_email_addresses",
                    "contains_private_messages",
                    "contains_financial_records",
                ],
            },
            {
                "name": "misuse_tainted",
                "any": [
                    "origin_vulnerability_exploitation",
                    "origin_unauthorized_leak",
                    "contains_malware_or_exploits",
                ],
            },
            {
                "name": "personal_data_in_jurisdiction",
                "any": [
                    "any_personal_data",
                    {
                        "all": [
                            "contains_ip_addresses",
                            "j_ip_addresses_personal",
                        ]
                    },
                ],
            },
        ],
        # Scalar facts the Menlo fact provider supplies.
        "menlo": [
            "has_unprotected",
            "consent_not_sought",
            "no_harms_identified",
            "no_benefits_articulated",
            "residual_exceeds_benefit",
            "burdened_group_exists",
            "burdened_group_named",
            "empty_register",
            "lawfulness_unknown",
            "lawful",
            "public_interest_case",
            "reproducible",
        ],
        # Item enumerations for per-stakeholder Menlo checks, with
        # the template fields each item carries.
        "menlo_enums": {
            "vulnerable_stakeholders": ["name"],
            "over_threshold_stakeholders": [
                "name",
                "residual",
                "threshold",
            ],
        },
        # Scalar template context for Menlo reasons.
        "menlo_context": [
            "unprotected_names",
            "burdened_names",
            "total_residual",
            "total_benefit",
        ],
        # Scalar facts the verdict-folding fact provider supplies.
        "verdict": [
            "right_to_life_engaged",
            "rights_engaged",
            "legal_risk_severe",
            "legal_risk_high",
            "legal_risk_moderate",
            "menlo_violated",
            "menlo_needs_safeguards",
            "residual_risk_without_reb",
            "no_acceptable_justification",
            "ethics_section_missing",
            "harms_outweigh_benefits",
        ],
        "verdict_enums": {
            "rights_risks": ["right_name", "mechanism"],
            "subsidising_parties": ["name", "risk"],
            "unassessed_parties": ["party"],
        },
    },
    "defences": {
        "base": list(_BASE_DEFENCES),
        "reb": _REB_DEFENCE,
    },
    "legal": {
        "issues": [
            {
                "id": "computer-misuse",
                "table1": True,
                "rows": [
                    {
                        "when": {
                            "collected_by_researcher_intrusion": True
                        },
                        "applicable": True,
                        "risk": "severe",
                        "rationale": (
                            "the researchers themselves gained "
                            "unauthorised access (cf. the AT&T iPad "
                            "case: conviction and 41 months)"
                        ),
                        "defences": True,
                        "mitigations": [
                            "do not collect by intrusion; use "
                            "existing data or lawful collection"
                        ],
                    },
                    {
                        "when": {"misuse_tainted": False},
                        "applicable": False,
                        "rationale": (
                            "the data arose from an unintended "
                            "disclosure and contains no attack "
                            "tooling"
                        ),
                    },
                    {
                        "when": {},
                        "applicable": True,
                        "risk": "low",
                        "rationale": (
                            "the data was originally obtained by "
                            "computer misuse; secondary use is lower "
                            "risk but possession of the proceeds "
                            "needs care"
                        ),
                        "defences": True,
                        "mitigations": [
                            "document provenance and lack of "
                            "involvement in the original offence"
                        ],
                        "modifiers": [
                            {
                                "when": {
                                    "contains_malware_or_exploits": (
                                        True
                                    )
                                },
                                "risk": "medium",
                                "append_rationale": (
                                    "; the dataset contains malware "
                                    "or exploit code whose "
                                    "possession/supply may engage "
                                    "dual-use tool offences"
                                ),
                                "append_mitigations": [
                                    "store malware encrypted, do "
                                    "not redistribute it, and share "
                                    "derived metrics instead "
                                    "(Calleja et al.)"
                                ],
                            },
                            {
                                "when": {"paid_offenders": True},
                                "risk": "high",
                                "append_rationale": (
                                    "; paying offenders for data is "
                                    "itself illicit"
                                ),
                            },
                        ],
                    },
                ],
            },
            {
                "id": "copyright",
                "table1": True,
                "rows": [
                    {
                        "when": {"us_government_work": True},
                        "applicable": False,
                        "rationale": (
                            "US government works carry no copyright "
                            "(cf. the Vault 7 discussion in §4.5.2)"
                        ),
                    },
                    {
                        "when": {"copyrighted_material": False},
                        "applicable": False,
                        "rationale": (
                            "no copyright works in the dataset"
                        ),
                    },
                    {
                        "when": {},
                        "applicable": True,
                        "risk": "low",
                        "rationale": (
                            "the dataset contains copyright works; "
                            "further sharing creates copies"
                        ),
                        "mitigations": [
                            "rely on fair use / fair dealing for "
                            "analysis"
                        ],
                        "modifiers": [
                            {
                                "when": {
                                    "plans_public_redistribution": (
                                        True
                                    )
                                },
                                "risk": "medium",
                                "append_mitigations": [
                                    "do not redistribute the raw "
                                    "data; share under a written "
                                    "agreement with verified "
                                    "researchers (Allman & Paxson)"
                                ],
                            },
                        ],
                    },
                ],
            },
            {
                "id": "data-privacy",
                "table1": True,
                "rows": [
                    {
                        "when": {
                            "personal_data_in_jurisdiction": False,
                            "contains_ip_addresses": True,
                        },
                        "applicable": False,
                        "rationale": (
                            "IP addresses are not personal data in "
                            "this jurisdiction (they would be in "
                            "Germany/EU)"
                        ),
                    },
                    {
                        "when": {
                            "personal_data_in_jurisdiction": False
                        },
                        "applicable": False,
                        "rationale": (
                            "no personal data under this "
                            "jurisdiction's rules"
                        ),
                    },
                    {
                        "when": {
                            "j_research_data_exemption": True,
                            "plans_deanonymization": True,
                        },
                        "applicable": True,
                        "risk": "high",
                        "rationale": _PRIVACY_EXEMPT_RATIONALE,
                        "mitigations": (
                            [_NO_DEANON] + _PRIVACY_MITIGATIONS
                        ),
                    },
                    {
                        "when": {"j_research_data_exemption": True},
                        "applicable": True,
                        "risk": "low",
                        "rationale": _PRIVACY_EXEMPT_RATIONALE,
                        "mitigations": list(_PRIVACY_MITIGATIONS),
                    },
                    {
                        "when": {"plans_deanonymization": True},
                        "applicable": True,
                        "risk": "high",
                        "rationale": _PRIVACY_PLAIN_RATIONALE,
                        "mitigations": (
                            [_NO_DEANON] + _PRIVACY_MITIGATIONS
                        ),
                    },
                    {
                        "when": {},
                        "applicable": True,
                        "risk": "medium",
                        "rationale": _PRIVACY_PLAIN_RATIONALE,
                        "mitigations": list(_PRIVACY_MITIGATIONS),
                    },
                ],
            },
            {
                "id": "terrorism",
                "table1": True,
                "rows": [
                    {
                        "when": {"terrorism_related": False},
                        "applicable": False,
                        "rationale": (
                            "no terrorist material expected in the "
                            "data"
                        ),
                    },
                    {
                        "when": {"j_must_report_terrorism": True},
                        "applicable": True,
                        "risk": "high",
                        "rationale": _TERRORISM_RATIONALE,
                        "defences": True,
                        "mitigations": [
                            _TERRORISM_REB,
                            "report discovered terrorist activity: "
                            "failure to report is itself an offence "
                            "in this jurisdiction",
                        ],
                    },
                    {
                        "when": {},
                        "applicable": True,
                        "risk": "medium",
                        "rationale": _TERRORISM_RATIONALE,
                        "defences": True,
                        "mitigations": [_TERRORISM_REB],
                    },
                ],
            },
            {
                "id": "indecent-images",
                "table1": True,
                "rows": [
                    {
                        "when": {
                            "may_contain_indecent_images": False
                        },
                        "applicable": False,
                        "rationale": (
                            "no risk of indecent imagery in the data"
                        ),
                    },
                    {
                        "when": {},
                        "applicable": True,
                        "risk": "severe",
                        "rationale": (
                            "possession of indecent images of "
                            "children is an offence with, in "
                            "general, no research exemption; every "
                            "viewing is additional abuse of the "
                            "victim"
                        ),
                        "mitigations": [
                            "filter dumps without viewing content "
                            "(hash matching), delete immediately on "
                            "discovery, and report to the relevant "
                            "authority"
                        ],
                    },
                ],
            },
            {
                "id": "national-security",
                "table1": True,
                "rows": [
                    {
                        "when": {
                            "classified": False,
                            "state_sensitive": False,
                        },
                        "applicable": False,
                        "rationale": "the data is not classified",
                    },
                    {
                        "when": {"classified": False},
                        "applicable": True,
                        "risk": "low",
                        "rationale": (
                            "the data is not classified but reveals "
                            "the conduct of states or state-linked "
                            "persons; secrecy and national-security "
                            "legislation of affected states may be "
                            "engaged"
                        ),
                        "mitigations": [
                            "assess exposure under the laws of the "
                            "states the data concerns before "
                            "publication"
                        ],
                    },
                    {
                        "when": {},
                        "applicable": True,
                        "risk": "high",
                        "rationale": (
                            "the data remains classified despite "
                            "public availability; institutions with "
                            "facility security clearances risk "
                            "spillage handling (the Purdue "
                            "incident) and researchers risk "
                            "prosecution"
                        ),
                        "mitigations": [
                            "check institutional clearance status "
                            "before handling",
                            "consider working from journalistic "
                            "reporting instead of raw documents",
                        ],
                    },
                ],
            },
            {
                "id": "contracts",
                "table1": False,
                "rows": [
                    {
                        "when": {
                            "violates_terms_of_service": False
                        },
                        "applicable": False,
                        "rationale": (
                            "no contract or terms-of-service breach"
                        ),
                    },
                    {
                        "when": {},
                        "applicable": True,
                        "risk": "low",
                        "rationale": (
                            "use of the data breaches terms of "
                            "service, creating civil liability "
                            "exposure"
                        ),
                        "mitigations": [
                            "seek institutional legal advice before "
                            "use"
                        ],
                    },
                ],
            },
        ],
    },
    "menlo": {
        "principles": [
            {
                "id": "respect-for-persons",
                "checks": [
                    {
                        "when": {"has_unprotected": True},
                        "status": "needs-safeguards",
                        "reason": (
                            "informed consent is absent for: "
                            "{unprotected_names}"
                        ),
                        "recommendation": (
                            "seek REB review so the board can "
                            "protect the interests of individuals "
                            "for whom consent is impossible (Menlo "
                            "/ BSC guidance)"
                        ),
                    },
                    {
                        "when": {"consent_not_sought": True},
                        "status": "needs-safeguards",
                        "reason": (
                            "consent was not sought from "
                            "stakeholders where it may have been "
                            "feasible"
                        ),
                        "recommendation": (
                            "justify why consent is impossible or "
                            "impractical, or obtain it"
                        ),
                    },
                    {
                        "each": "vulnerable_stakeholders",
                        "status": "needs-safeguards",
                        "reason": (
                            "{name} has diminished autonomy and "
                            "needs additional protection"
                        ),
                        "recommendation": (
                            "add specific protections for {name}"
                        ),
                    },
                ],
                "fallback_reason": (
                    "all natural-person stakeholders consented or "
                    "are protected"
                ),
            },
            {
                "id": "beneficence",
                "checks": [
                    {
                        "when": {"no_harms_identified": True},
                        "status": "indeterminate",
                        "reason": (
                            "no harms were identified; an empty "
                            "harm register more often reflects "
                            "missing analysis than absent risk"
                        ),
                        "recommendation": (
                            "enumerate potential harms per "
                            "stakeholder before claiming "
                            "beneficence"
                        ),
                        "final": True,
                    },
                    {
                        "each": "over_threshold_stakeholders",
                        "status": "needs-safeguards",
                        "reason": (
                            "residual risk {residual} to {name} "
                            "exceeds the threshold {threshold}"
                        ),
                        "recommendation": (
                            "add safeguards mitigating harms to "
                            "{name}"
                        ),
                    },
                    {
                        "when": {"no_benefits_articulated": True},
                        "status": "needs-safeguards",
                        "reason": (
                            "no benefits have been articulated"
                        ),
                        "recommendation": (
                            "articulate the research benefits (the "
                            "paper finds benefits as well as harms "
                            "often go unidentified)"
                        ),
                    },
                    {
                        "when": {"residual_exceeds_benefit": True},
                        "status": "violated",
                        "reason": (
                            "total residual risk {total_residual} "
                            "exceeds expected benefit "
                            "{total_benefit}"
                        ),
                        "recommendation": (
                            "redesign the study: harms currently "
                            "outweigh benefits"
                        ),
                    },
                ],
                "fallback_reason": (
                    "identified harms are mitigated below threshold "
                    "and benefits are articulated"
                ),
            },
            {
                "id": "justice",
                "checks": [
                    {
                        "when": {"burdened_group_exists": True},
                        "status": "needs-safeguards",
                    },
                    {
                        "when": {"burdened_group_named": True},
                        "reason": (
                            "risk is borne by {burdened_names} "
                            "while benefits accrue elsewhere"
                        ),
                        "recommendation": (
                            "rebalance: reduce risk on the burdened "
                            "group or direct benefits toward it"
                        ),
                    },
                    {
                        "when": {"empty_register": True},
                        "status": "indeterminate",
                        "reason": (
                            "no harm/benefit register to assess "
                            "distribution over"
                        ),
                    },
                ],
                "fallback_reason": (
                    "risks and benefits are not concentrated on a "
                    "single group"
                ),
            },
            {
                "id": "respect-for-law-and-public-interest",
                "checks": [
                    {
                        "when": {"lawfulness_unknown": True},
                        "status": "indeterminate",
                        "reason": (
                            "legal analysis has not been performed"
                        ),
                        "recommendation": (
                            "run the legal engine (or obtain legal "
                            "advice) for every relevant "
                            "jurisdiction"
                        ),
                    },
                    {
                        "when": {
                            "lawfulness_unknown": False,
                            "lawful": False,
                        },
                        "status": "needs-safeguards",
                        "reason": (
                            "the research may breach applicable "
                            "law; it can only proceed with "
                            "transparency, institutional backing "
                            "and REB approval"
                        ),
                        "recommendation": (
                            "obtain REB approval, be transparent, "
                            "and engage lawmakers to improve the "
                            "law (Israel 2004)"
                        ),
                    },
                    {
                        "when": {
                            "lawfulness_unknown": False,
                            "lawful": True,
                        },
                        "status": "satisfied",
                        "reason": (
                            "the research conforms to applicable law"
                        ),
                    },
                    {
                        "when": {"public_interest_case": False},
                        "status": "needs-safeguards",
                        "reason": (
                            "no public-interest case has been made"
                        ),
                        "recommendation": (
                            "state the social benefit that exceeds "
                            "the harms (Floridi & Taddeo)"
                        ),
                    },
                    {
                        "when": {"reproducible": False},
                        "reason": (
                            "the work is not reproducible by other "
                            "researchers"
                        ),
                        "recommendation": (
                            "support controlled sharing of the data "
                            "or derived artefacts"
                        ),
                    },
                ],
            },
        ],
    },
    "verdict": {
        "default": "proceed",
        "steps": [
            {
                "each": "rights_risks",
                "note": (
                    "human-rights exposure: {right_name} — "
                    "{mechanism}"
                ),
            },
            {
                "when": {"right_to_life_engaged": True},
                "verdict": "do-not-proceed",
                "action": (
                    "the research could indirectly cost identified "
                    "people their lives; redesign so individuals "
                    "cannot be identified before any further work"
                ),
            },
            {
                "when": {
                    "right_to_life_engaged": False,
                    "rights_engaged": True,
                },
                "verdict": "requires-reb-review",
                "action": (
                    "human rights of data subjects are engaged; "
                    "REB review must weigh the rights exposure "
                    "explicitly"
                ),
            },
            {
                "when": {"legal_risk_severe": True},
                "verdict": "do-not-proceed",
                "action": (
                    "severe legal exposure: redesign the study "
                    "before any further work"
                ),
            },
            {
                "when": {"legal_risk_high": True},
                "verdict": "requires-reb-review",
                "action": (
                    "high legal risk: obtain REB approval and "
                    "institutional legal advice before proceeding"
                ),
            },
            {
                "when": {"legal_risk_moderate": True},
                "verdict": "proceed-with-safeguards",
            },
            {"collect": "legal-mitigations"},
            {
                "when": {"menlo_violated": True},
                "verdict": "do-not-proceed",
            },
            {
                "when": {"menlo_needs_safeguards": True},
                "verdict": "proceed-with-safeguards",
            },
            {"collect": "menlo-recommendations"},
            {
                "when": {"residual_risk_without_reb": True},
                "verdict": "requires-reb-review",
                "action": (
                    "potential to harm humans exists even without "
                    "direct human subjects: seek REB approval "
                    "(risk-based trigger, §6 of the paper)"
                ),
            },
            {
                "each": "subsidising_parties",
                "note": (
                    "{name} bears risk {risk} with no benefit — "
                    "justice concern"
                ),
            },
            {
                "each": "unassessed_parties",
                "note": (
                    "stakeholder {party} has no harms or benefits "
                    "recorded; the register looks incomplete"
                ),
            },
            {
                "when": {"no_acceptable_justification": True},
                "note": (
                    "no justification for using this data "
                    "currently carries weight; the strongest path "
                    "is necessity plus public interest with no "
                    "additional harm"
                ),
            },
            {
                "when": {"ethics_section_missing": True},
                "action": (
                    "include an explicit ethics section recording "
                    "this reasoning (Partridge & Allman)"
                ),
            },
            {
                "when": {"harms_outweigh_benefits": True},
                "verdict": "do-not-proceed",
            },
        ],
    },
}


def _build_precautionary() -> dict:
    """The bundled variant pack: REB review at any legal exposure."""
    pack = copy.deepcopy(DEFAULT_PACK)
    pack["name"] = "precautionary"
    pack["description"] = (
        "a stricter venue policy: any applicable legal exposure "
        "(medium or low included) requires REB review"
    )
    for step in pack["verdict"]["steps"]:
        if step.get("when") == {"legal_risk_moderate": True}:
            step["verdict"] = "requires-reb-review"
            step["action"] = (
                "this venue requires REB review for any applicable "
                "legal exposure, however low the residual risk"
            )
    return pack


PRECAUTIONARY_PACK: dict = _build_precautionary()


def legal_issue_ids(pack: dict | None = None) -> tuple[str, ...]:
    """The legal-issue catalogue of *pack* (default pack if None)."""
    data = DEFAULT_PACK if pack is None else pack
    return tuple(
        issue["id"] for issue in data["legal"]["issues"]
    )


def table1_issue_ids(pack: dict | None = None) -> tuple[str, ...]:
    """The issues that appear as Table 1 legal columns."""
    data = DEFAULT_PACK if pack is None else pack
    return tuple(
        issue["id"]
        for issue in data["legal"]["issues"]
        if issue.get("table1")
    )


def menlo_principle_ids(pack: dict | None = None) -> tuple[str, ...]:
    """The Menlo principle ids of *pack*, in evaluation order."""
    data = DEFAULT_PACK if pack is None else pack
    return tuple(
        principle["id"]
        for principle in data["menlo"]["principles"]
    )
