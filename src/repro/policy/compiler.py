"""Lower validated policy packs into flat decision tables.

:class:`CompiledPolicy` interns every fact name to a bit position and
lowers each rule's ``when`` conditions into two integer masks, so the
hot evaluation path is a scan of precompiled rows testing

``(bits & require) == require and (bits & forbid) == 0``

with no per-rule Python dispatch, no dict lookups and no re-derivation
of shared data: statutes are cached per (issue, jurisdiction code),
defence tuples are built once per pack, static strings bypass
``str.format``, and derived facts compile to mask tests. The naive
reference semantics live in :mod:`repro.policy.interpreter`; the E19
benchmark asserts the compiled tables beat them by ≥5x.

Model-object imports (legal findings, Menlo findings) happen inside
``__init__`` rather than at module level: ``legal/rules.py`` imports
this package to obtain its issue catalogue, so importing it back at
module scope would cycle.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Sequence

from .facts import menlo_facts
from .model import (
    PolicyPack,
    RISK_ORDER,
    STATUS_ORDER,
    VERDICT_ORDER,
)

__all__ = ["CompiledPolicy"]

_STATUS_RANK = {status: i for i, status in enumerate(STATUS_ORDER)}
_VERDICT_RANK = {v: i for i, v in enumerate(VERDICT_ORDER)}


class _FactSpace:
    """Bit-position interning for one fact vocabulary."""

    __slots__ = ("index",)

    def __init__(self, names: Iterable[str]) -> None:
        self.index: dict[str, int] = {}
        for name in names:
            self.index[name] = len(self.index)

    def bit(self, name: str) -> int:
        return 1 << self.index[name]

    def masks(self, when: Mapping[str, bool]) -> tuple[int, int]:
        """The (require, forbid) masks for a ``when`` condition."""
        require = forbid = 0
        for name, expected in when.items():
            if expected:
                require |= self.bit(name)
            else:
                forbid |= self.bit(name)
        return require, forbid

    def pack(self, scalars: Mapping[str, bool]) -> int:
        """Intern a scalar fact dict into one bit vector."""
        bits = 0
        for name, value in scalars.items():
            if value:
                bits |= 1 << self.index[name]
        return bits


def _compile_expr(
    expr: Any, space: _FactSpace
) -> Callable[[int], bool]:
    """Compile a derived-fact expression to a bits → bool test."""
    if isinstance(expr, str):
        mask = space.bit(expr)
        return lambda bits: bool(bits & mask)
    if "not" in expr:
        inner = _compile_expr(expr["not"], space)
        return lambda bits: not inner(bits)
    key = "any" if "any" in expr else "all"
    operands = expr[key]
    if all(isinstance(op, str) for op in operands):
        # Pure disjunction/conjunction of base facts: one mask test.
        mask = 0
        for op in operands:
            mask |= space.bit(op)
        if key == "any":
            return lambda bits: bool(bits & mask)
        return lambda bits: (bits & mask) == mask
    tests = tuple(_compile_expr(op, space) for op in operands)
    if key == "any":
        return lambda bits: any(t(bits) for t in tests)
    return lambda bits: all(t(bits) for t in tests)


def _template(text: str | None) -> tuple[str | None, bool]:
    """A (text, needs_format) pair; static strings skip formatting."""
    if text is None:
        return None, False
    return text, "{" in text


class _Row:
    """One compiled legal decision row."""

    __slots__ = (
        "require",
        "forbid",
        "applicable",
        "risk",
        "rationale",
        "defences",
        "mitigations",
        "modifiers",
    )

    def __init__(
        self, space: _FactSpace, row: Mapping[str, Any]
    ) -> None:
        self.require, self.forbid = space.masks(row.get("when", {}))
        self.applicable = bool(row["applicable"])
        self.risk = row.get("risk", RISK_ORDER[0])
        self.rationale = row["rationale"]
        self.defences = bool(row.get("defences"))
        self.mitigations = tuple(row.get("mitigations", ()))
        self.modifiers = tuple(
            (
                *space.masks(modifier.get("when", {})),
                modifier.get("risk"),
                modifier.get("append_rationale", ""),
                tuple(modifier.get("append_mitigations", ())),
            )
            for modifier in row.get("modifiers", ())
        )


class _Check:
    """One compiled Menlo principle check."""

    __slots__ = (
        "each",
        "require",
        "forbid",
        "status",
        "status_rank",
        "reason",
        "reason_fmt",
        "recommendation",
        "recommendation_fmt",
        "final",
    )

    def __init__(
        self, space: _FactSpace, check: Mapping[str, Any]
    ) -> None:
        self.each = check.get("each")
        if self.each is None:
            self.require, self.forbid = space.masks(check["when"])
        else:
            self.require = self.forbid = 0
        self.status = check.get("status")
        self.status_rank = (
            _STATUS_RANK[self.status] if self.status else -1
        )
        self.reason, self.reason_fmt = _template(
            check.get("reason")
        )
        self.recommendation, self.recommendation_fmt = _template(
            check.get("recommendation")
        )
        self.final = bool(check.get("final"))


class _Step:
    """One compiled verdict-folding step."""

    __slots__ = (
        "each",
        "collect",
        "require",
        "forbid",
        "verdict_rank",
        "action",
        "note",
        "note_fmt",
    )

    def __init__(
        self, space: _FactSpace, step: Mapping[str, Any]
    ) -> None:
        self.each = step.get("each")
        self.collect = step.get("collect")
        if self.each is None and self.collect is None:
            self.require, self.forbid = space.masks(step["when"])
        else:
            self.require = self.forbid = 0
        outcome = step.get("verdict")
        self.verdict_rank = (
            _VERDICT_RANK[outcome] if outcome else -1
        )
        self.action = step.get("action")
        self.note, self.note_fmt = _template(step.get("note"))


class CompiledPolicy:
    """A policy pack lowered to decision tables.

    Exposes the three evaluation surfaces the engines run on:
    :meth:`legal_report` (the §3 rules), :meth:`menlo_findings` /
    :meth:`menlo_finding` (the §2 principle checks) and
    :meth:`fold_verdict` (the assessment engine's folding policy).
    The naive :class:`~repro.policy.interpreter.PolicyInterpreter`
    is duck-type compatible; differential tests hold them identical.
    """

    def __init__(self, pack: PolicyPack) -> None:
        # Imported here, not at module level: legal/rules.py and
        # ethics/menlo.py import this package for their catalogues.
        from ..ethics.menlo import (
            MenloPrinciple,
            PrincipleFinding,
        )
        from ..legal.rules import LegalFinding, LegalReport
        from ..legal.statutes import statutes_for

        self.pack = pack
        self.name = pack.name
        self.digest = pack.digest
        self._finding_cls = LegalFinding
        self._report_cls = LegalReport
        self._principle_cls = MenloPrinciple
        self._principle_finding_cls = PrincipleFinding
        self._statutes_for = statutes_for
        self._statute_cache: dict[tuple[str, str], tuple] = {}
        # Resolved finding blocks, keyed by (fact vector,
        # jurisdiction, reb). Findings are frozen dataclasses and
        # the key captures every input the rows read, so a repeated
        # vector reuses the exact finding objects — the decision
        # table's row scan runs once per distinct fact pattern.
        self._resolved: dict[tuple, tuple] = {}

        data = pack.data
        facts = data["facts"]

        # -- legal fact space and decision rows ------------------------
        legal_names = list(facts["profile"])
        legal_names.extend(facts["origin"])
        legal_names.extend(facts["jurisdiction"])
        derived = list(facts["derived"])
        legal_names.extend(entry["name"] for entry in derived)
        space = _FactSpace(legal_names)
        self._legal_space = space
        self._profile_facts = tuple(
            (name, space.bit(name)) for name in facts["profile"]
        )
        self._origin_facts = tuple(
            (value, space.bit(name))
            for name, value in facts["origin"].items()
        )
        self._jurisdiction_facts = tuple(
            (attr, space.bit(name))
            for name, attr in facts["jurisdiction"].items()
        )
        self._derived = tuple(
            (
                space.bit(entry["name"]),
                _compile_expr(
                    {k: v for k, v in entry.items() if k != "name"},
                    space,
                ),
            )
            for entry in derived
        )
        self._issues = tuple(
            (
                issue["id"],
                tuple(_Row(space, row) for row in issue["rows"]),
            )
            for issue in data["legal"]["issues"]
        )
        self.legal_issue_ids = tuple(
            issue_id for issue_id, _ in self._issues
        )
        self.table1_issue_ids = tuple(
            issue["id"]
            for issue in data["legal"]["issues"]
            if issue.get("table1")
        )

        base = tuple(data["defences"]["base"])
        self._defences = {
            False: base,
            True: (data["defences"]["reb"], *base),
        }

        # -- Menlo principle checks -------------------------------------
        menlo_space = _FactSpace(facts["menlo"])
        self._menlo_space = menlo_space
        self._principles = tuple(
            (
                principle["id"],
                MenloPrinciple(principle["id"]),
                tuple(
                    _Check(menlo_space, check)
                    for check in principle.get("checks", ())
                ),
                principle.get("fallback_reason"),
            )
            for principle in data["menlo"]["principles"]
        )
        self._principles_by_id = {
            entry[0]: entry for entry in self._principles
        }

        # -- verdict folding steps --------------------------------------
        verdict_space = _FactSpace(facts["verdict"])
        self._verdict_space = verdict_space
        self._default_rank = _VERDICT_RANK[
            data["verdict"]["default"]
        ]
        self._steps = tuple(
            _Step(verdict_space, step)
            for step in data["verdict"]["steps"]
        )

    # -- legal ----------------------------------------------------------
    def _statutes(self, issue: str, code: str) -> tuple:
        key = (issue, code)
        cached = self._statute_cache.get(key)
        if cached is None:
            cached = self._statutes_for(issue, code)
            self._statute_cache[key] = cached
        return cached

    def legal_report(
        self,
        profile: Any,
        jurisdictions: Iterable[Any],
        *,
        reb_approved: bool = False,
    ):
        """Evaluate every issue in every jurisdiction (§3 rules)."""
        reb_approved = bool(reb_approved)

        base_bits = 0
        for attr, mask in self._profile_facts:
            if getattr(profile, attr):
                base_bits |= mask
        origin = profile.origin
        for value, mask in self._origin_facts:
            if origin == value:
                base_bits |= mask

        resolved = self._resolved
        findings: list = []
        for jurisdiction in jurisdictions:
            bits = base_bits
            for attr, mask in self._jurisdiction_facts:
                if getattr(jurisdiction, attr):
                    bits |= mask
            key = (bits, jurisdiction, reb_approved)
            block = resolved.get(key)
            if block is None:
                block = self._resolve_block(
                    bits, jurisdiction, reb_approved
                )
                resolved[key] = block
            findings.extend(block)
        return self._report_cls(
            profile=profile, findings=tuple(findings)
        )

    def _resolve_block(
        self, bits: int, jurisdiction: Any, reb_approved: bool
    ) -> tuple:
        """Scan the decision rows once for one distinct fact vector."""
        finding_cls = self._finding_cls
        defences = self._defences[reb_approved]
        no_defences: tuple[str, ...] = ()
        for mask, test in self._derived:
            if test(bits):
                bits |= mask
        block = []
        for issue_id, rows in self._issues:
            for row in rows:
                if (bits & row.require) == row.require and not (
                    bits & row.forbid
                ):
                    break
            risk = row.risk
            rationale = row.rationale
            mitigations = row.mitigations
            for (
                require,
                forbid,
                mod_risk,
                suffix,
                extra,
            ) in row.modifiers:
                if (bits & require) == require and not (
                    bits & forbid
                ):
                    if mod_risk is not None:
                        risk = mod_risk
                    rationale += suffix
                    mitigations += extra
            block.append(
                finding_cls(
                    issue=issue_id,
                    jurisdiction=jurisdiction,
                    applicable=row.applicable,
                    risk=risk,
                    rationale=rationale,
                    statutes=self._statutes(
                        issue_id, jurisdiction.code
                    )
                    if row.applicable
                    else (),
                    defences=defences
                    if row.defences
                    else no_defences,
                    mitigations=mitigations,
                )
            )
        return tuple(block)

    # -- Menlo ----------------------------------------------------------
    def _evaluate_principle(
        self,
        entry: tuple,
        scalars: Mapping[str, bool],
        enums: Mapping[str, list],
        context: Mapping[str, str],
    ):
        _, principle, checks, fallback = entry
        bits = self._menlo_space.pack(scalars)
        rank = 0
        reasons: list[str] = []
        recommendations: list[str] = []
        for check in checks:
            if check.each is not None:
                fired_items: Sequence[Mapping[str, str]] = enums[
                    check.each
                ]
                if not fired_items:
                    continue
                if check.status_rank > rank:
                    rank = check.status_rank
                for item in fired_items:
                    if check.reason is not None:
                        reasons.append(
                            check.reason.format_map(item)
                            if check.reason_fmt
                            else check.reason
                        )
                    if check.recommendation is not None:
                        recommendations.append(
                            check.recommendation.format_map(item)
                            if check.recommendation_fmt
                            else check.recommendation
                        )
                continue
            if (bits & check.require) != check.require or (
                bits & check.forbid
            ):
                continue
            if check.status_rank > rank:
                rank = check.status_rank
            if check.reason is not None:
                reasons.append(
                    check.reason.format_map(context)
                    if check.reason_fmt
                    else check.reason
                )
            if check.recommendation is not None:
                recommendations.append(
                    check.recommendation.format_map(context)
                    if check.recommendation_fmt
                    else check.recommendation
                )
            if check.final:
                break
        if not reasons and fallback is not None:
            reasons.append(fallback)
        return self._principle_finding_cls(
            principle,
            STATUS_ORDER[rank],
            tuple(reasons),
            tuple(recommendations),
        )

    def menlo_finding(self, evaluation: Any, principle_id: str):
        """Evaluate one Menlo principle for *evaluation*."""
        scalars, enums, context = menlo_facts(evaluation)
        return self._evaluate_principle(
            self._principles_by_id[principle_id],
            scalars,
            enums,
            context,
        )

    def menlo_findings(self, evaluation: Any) -> tuple:
        """All principle findings, in the pack's order."""
        scalars, enums, context = menlo_facts(evaluation)
        return tuple(
            self._evaluate_principle(entry, scalars, enums, context)
            for entry in self._principles
        )

    # -- verdict folding ------------------------------------------------
    def fold_verdict(
        self,
        scalars: Mapping[str, bool],
        enums: Mapping[str, list],
        collectors: Mapping[str, Callable[[list[str]], None]],
    ) -> tuple[str, list[str], list[str]]:
        """Fold assessment facts into (verdict, actions, notes).

        *collectors* supplies the named appenders the pack's
        ``collect`` steps invoke on the required-actions list (e.g.
        deduplicating legal mitigations into it).
        """
        bits = self._verdict_space.pack(scalars)
        rank = self._default_rank
        required: list[str] = []
        notes: list[str] = []
        for step in self._steps:
            if step.collect is not None:
                collectors[step.collect](required)
                continue
            if step.each is not None:
                for item in enums[step.each]:
                    notes.append(
                        step.note.format_map(item)
                        if step.note_fmt
                        else step.note
                    )
                continue
            if (bits & step.require) != step.require or (
                bits & step.forbid
            ):
                continue
            if step.verdict_rank > rank:
                rank = step.verdict_rank
            if step.action is not None:
                required.append(step.action)
            if step.note is not None:
                notes.append(step.note)
        return VERDICT_ORDER[rank], required, notes
