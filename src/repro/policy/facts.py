"""Fact providers: derive policy-pack facts from rich model objects.

The decision tables in a compiled pack test *facts* — flat booleans
(and small enumerations of template items) — not model objects. This
module is the boundary between the two worlds: it reduces a
:class:`~repro.ethics.menlo.MenloEvaluation` or an assessment's
intermediate results to the fact dictionaries the pack's ``menlo``
and ``verdict`` sections condition on. Both the compiled evaluator
and the naive interpreter consume the same providers, so differential
tests compare pure rule evaluation, not fact extraction.

Floats that appear inside templated reasons (residual risks,
benefit totals) are pre-formatted here with the legacy ``:.2f``
rendering, so pack templates stay plain ``str.format`` fields.
"""

from __future__ import annotations

from typing import Any, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import-time only
    from ..ethics.menlo import MenloEvaluation

__all__ = ["assessment_facts", "menlo_facts"]


def menlo_facts(
    evaluation: "MenloEvaluation",
) -> tuple[dict[str, bool], dict[str, list], dict[str, str]]:
    """Facts for the pack's Menlo principle checks.

    Returns ``(scalars, enums, context)``: boolean facts, per-item
    enumerations (each item a template mapping), and scalar template
    context strings.
    """
    from ..ethics.stakeholders import ConsentStatus

    stakeholders = evaluation.stakeholders
    harms = evaluation.harms
    benefits = evaluation.benefits

    unprotected = stakeholders.unprotected()
    not_sought = any(
        s.consent == ConsentStatus.NOT_SOUGHT and s.natural_person
        for s in stakeholders
    )
    vulnerable = [
        {"name": s.name} for s in stakeholders.vulnerable()
    ]

    threshold = evaluation.residual_risk_threshold
    total_benefit = sum(b.expected_value for b in benefits)
    total_residual = sum(h.residual_risk for h in harms)
    over_threshold: list[dict[str, str]] = []
    for stakeholder in stakeholders:
        if not stakeholder.natural_person:
            continue
        residual = sum(
            h.residual_risk
            for h in harms
            if h.stakeholder_id == stakeholder.id
        )
        if residual > threshold:
            over_threshold.append(
                {
                    "name": stakeholder.name,
                    "residual": f"{residual:.2f}",
                    "threshold": f"{threshold:.2f}",
                }
            )

    harmed = {h.stakeholder_id for h in harms}
    benefiting = {b.beneficiary for b in benefits}
    only_harmed = harmed - benefiting - {"society"}
    burdened = bool(only_harmed and benefiting)
    burdened_names = ", ".join(
        stakeholders[s].name
        for s in sorted(only_harmed)
        if s in stakeholders
    )

    scalars = {
        "has_unprotected": bool(unprotected),
        "consent_not_sought": not_sought,
        "no_harms_identified": not harms,
        "no_benefits_articulated": total_benefit == 0.0,
        "residual_exceeds_benefit": bool(
            total_benefit and total_residual > total_benefit
        ),
        "burdened_group_exists": burdened,
        "burdened_group_named": burdened and bool(burdened_names),
        "empty_register": not harms and not benefits,
        "lawfulness_unknown": evaluation.lawful is None,
        "lawful": bool(evaluation.lawful),
        "public_interest_case": evaluation.public_interest,
        "reproducible": evaluation.reproducible,
    }
    enums = {
        "vulnerable_stakeholders": vulnerable,
        "over_threshold_stakeholders": over_threshold,
    }
    context = {
        "unprotected_names": ", ".join(
            s.name for s in unprotected
        ),
        "burdened_names": burdened_names,
        "total_residual": f"{total_residual:.2f}",
        "total_benefit": f"{total_benefit:.2f}",
    }
    return scalars, enums, context


def assessment_facts(
    *,
    legal: Any,
    menlo: tuple,
    grid: Any,
    justifications: tuple,
    rights_risks: tuple,
    reb_approved: bool,
    has_ethics_section: bool,
) -> tuple[dict[str, bool], dict[str, list]]:
    """Facts for the pack's verdict-folding steps.

    *legal* is a :class:`~repro.legal.rules.LegalReport`, *menlo* the
    principle findings, *grid* the risk-benefit grid; the remaining
    arguments mirror :func:`repro.assessment.engine.assess_project`
    intermediates. Returns ``(scalars, enums)``.
    """
    from ..ethics.menlo import FindingStatus
    from ..legal.rules import RiskLevel

    overall = legal.overall_risk
    worst_menlo = FindingStatus.worst([f.status for f in menlo])
    total_risk = grid.total_risk()
    total_benefit = grid.total_benefit()

    scalars = {
        "right_to_life_engaged": any(
            risk.right.id == "life" for risk in rights_risks
        ),
        "rights_engaged": bool(rights_risks),
        "legal_risk_severe": overall == RiskLevel.SEVERE,
        "legal_risk_high": overall == RiskLevel.HIGH,
        "legal_risk_moderate": overall
        in (RiskLevel.MEDIUM, RiskLevel.LOW),
        "menlo_violated": worst_menlo == FindingStatus.VIOLATED,
        "menlo_needs_safeguards": (
            worst_menlo == FindingStatus.NEEDS_SAFEGUARDS
        ),
        "residual_risk_without_reb": (
            total_risk > 0 and not reb_approved
        ),
        "no_acceptable_justification": not any(
            j.acceptable for j in justifications
        ),
        "ethics_section_missing": not has_ethics_section,
        "harms_outweigh_benefits": (
            total_benefit > 0 and total_risk > total_benefit
        ),
    }
    enums = {
        "rights_risks": [
            {
                "right_name": risk.right.name,
                "mechanism": risk.mechanism,
            }
            for risk in rights_risks
        ],
        "subsidising_parties": [
            {"name": b.name, "risk": f"{b.risk:.2f}"}
            for b in grid.subsidising_parties()
        ],
        "unassessed_parties": [
            {"party": repr(party)}
            for party in grid.unassessed_parties()
        ],
    }
    return scalars, enums
