"""Naive reference evaluator for policy packs.

:class:`PolicyInterpreter` walks the raw pack dicts directly: every
condition re-resolves its fact by name (scanning the declaration
lists and re-deriving derived expressions recursively), statutes are
looked up uncached per finding, defences are rebuilt per report and
every template goes through ``str.format_map``. It exists for two
reasons: it *is* the pack semantics (small enough to audit against
``docs/policy.md``), and it is the baseline the E19 benchmark holds
:class:`~repro.policy.compiler.CompiledPolicy` to — the differential
tests require both evaluators to produce byte-identical outputs over
the whole corpus.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping

from ..errors import PolicyError
from .facts import menlo_facts
from .model import PolicyPack, RISK_ORDER, STATUS_ORDER, VERDICT_ORDER

__all__ = ["PolicyInterpreter"]


class PolicyInterpreter:
    """Duck-type compatible, deliberately unoptimised evaluator."""

    def __init__(self, pack: PolicyPack) -> None:
        self.pack = pack
        self.name = pack.name
        self.digest = pack.digest
        self.legal_issue_ids = tuple(
            issue["id"]
            for issue in pack.data["legal"]["issues"]
        )
        self.table1_issue_ids = tuple(
            issue["id"]
            for issue in pack.data["legal"]["issues"]
            if issue.get("table1")
        )

    # -- legal fact resolution (recursive, uncached) --------------------
    def _legal_fact(
        self, name: str, profile: Any, jurisdiction: Any
    ) -> bool:
        facts = self.pack.data["facts"]
        if name in facts["profile"]:
            return bool(getattr(profile, name))
        if name in facts["origin"]:
            return profile.origin == facts["origin"][name]
        if name in facts["jurisdiction"]:
            return bool(
                getattr(jurisdiction, facts["jurisdiction"][name])
            )
        for entry in facts["derived"]:
            if entry["name"] == name:
                expr = {
                    k: v for k, v in entry.items() if k != "name"
                }
                return self._expr(expr, profile, jurisdiction)
        raise PolicyError(f"unknown fact name {name!r}")

    def _expr(
        self, expr: Any, profile: Any, jurisdiction: Any
    ) -> bool:
        if isinstance(expr, str):
            return self._legal_fact(expr, profile, jurisdiction)
        if "not" in expr:
            return not self._expr(expr["not"], profile, jurisdiction)
        if "any" in expr:
            return any(
                self._expr(op, profile, jurisdiction)
                for op in expr["any"]
            )
        return all(
            self._expr(op, profile, jurisdiction)
            for op in expr["all"]
        )

    def _matches(
        self,
        when: Mapping[str, bool],
        resolve: Callable[[str], bool],
    ) -> bool:
        return all(
            resolve(name) is expected
            for name, expected in when.items()
        )

    # -- legal ----------------------------------------------------------
    def legal_report(
        self,
        profile: Any,
        jurisdictions: Iterable[Any],
        *,
        reb_approved: bool = False,
    ):
        """Evaluate every issue in every jurisdiction, naively."""
        from ..legal.rules import LegalFinding, LegalReport
        from ..legal.statutes import statutes_for

        defences_spec = self.pack.data["defences"]
        findings = []
        for jurisdiction in jurisdictions:

            def resolve(name: str) -> bool:
                return self._legal_fact(name, profile, jurisdiction)

            for issue in self.pack.data["legal"]["issues"]:
                row = next(
                    r
                    for r in issue["rows"]
                    if self._matches(r.get("when", {}), resolve)
                )
                risk = row.get("risk", RISK_ORDER[0])
                rationale = row["rationale"]
                mitigations = tuple(row.get("mitigations", ()))
                for modifier in row.get("modifiers", ()):
                    if self._matches(
                        modifier.get("when", {}), resolve
                    ):
                        if modifier.get("risk") is not None:
                            risk = modifier["risk"]
                        rationale += modifier.get(
                            "append_rationale", ""
                        )
                        mitigations += tuple(
                            modifier.get("append_mitigations", ())
                        )
                defences: tuple[str, ...] = ()
                if row.get("defences"):
                    base = list(defences_spec["base"])
                    if reb_approved:
                        base.insert(0, defences_spec["reb"])
                    defences = tuple(base)
                findings.append(
                    LegalFinding(
                        issue=issue["id"],
                        jurisdiction=jurisdiction,
                        applicable=bool(row["applicable"]),
                        risk=risk,
                        rationale=rationale,
                        statutes=statutes_for(
                            issue["id"], jurisdiction.code
                        )
                        if row["applicable"]
                        else (),
                        defences=defences,
                        mitigations=mitigations,
                    )
                )
        return LegalReport(profile=profile, findings=tuple(findings))

    # -- Menlo ----------------------------------------------------------
    def _evaluate_principle(
        self,
        principle: Mapping[str, Any],
        scalars: Mapping[str, bool],
        enums: Mapping[str, list],
        context: Mapping[str, str],
    ):
        from ..ethics.menlo import MenloPrinciple, PrincipleFinding

        rank = 0
        reasons: list[str] = []
        recommendations: list[str] = []
        for check in principle.get("checks", ()):
            if "each" in check:
                items = enums[check["each"]]
                if not items:
                    continue
                status = check.get("status")
                if status is not None:
                    rank = max(rank, STATUS_ORDER.index(status))
                for item in items:
                    if "reason" in check:
                        reasons.append(
                            check["reason"].format_map(item)
                        )
                    if "recommendation" in check:
                        recommendations.append(
                            check["recommendation"].format_map(item)
                        )
                continue
            if not self._matches(
                check["when"], lambda n: bool(scalars[n])
            ):
                continue
            status = check.get("status")
            if status is not None:
                rank = max(rank, STATUS_ORDER.index(status))
            if "reason" in check:
                reasons.append(
                    check["reason"].format_map(context)
                )
            if "recommendation" in check:
                recommendations.append(
                    check["recommendation"].format_map(context)
                )
            if check.get("final"):
                break
        if not reasons and principle.get("fallback_reason"):
            reasons.append(principle["fallback_reason"])
        return PrincipleFinding(
            MenloPrinciple(principle["id"]),
            STATUS_ORDER[rank],
            tuple(reasons),
            tuple(recommendations),
        )

    def menlo_finding(self, evaluation: Any, principle_id: str):
        """Evaluate one Menlo principle for *evaluation*."""
        scalars, enums, context = menlo_facts(evaluation)
        for principle in self.pack.data["menlo"]["principles"]:
            if principle["id"] == principle_id:
                return self._evaluate_principle(
                    principle, scalars, enums, context
                )
        raise PolicyError(
            f"unknown menlo principle {principle_id!r}"
        )

    def menlo_findings(self, evaluation: Any) -> tuple:
        """All principle findings, in the pack's order."""
        scalars, enums, context = menlo_facts(evaluation)
        return tuple(
            self._evaluate_principle(
                principle, scalars, enums, context
            )
            for principle in self.pack.data["menlo"]["principles"]
        )

    # -- verdict folding ------------------------------------------------
    def fold_verdict(
        self,
        scalars: Mapping[str, bool],
        enums: Mapping[str, list],
        collectors: Mapping[str, Callable[[list[str]], None]],
    ) -> tuple[str, list[str], list[str]]:
        """Fold assessment facts into (verdict, actions, notes)."""
        spec = self.pack.data["verdict"]
        rank = VERDICT_ORDER.index(spec["default"])
        required: list[str] = []
        notes: list[str] = []
        for step in spec["steps"]:
            if "collect" in step:
                collectors[step["collect"]](required)
                continue
            if "each" in step:
                for item in enums[step["each"]]:
                    notes.append(step["note"].format_map(item))
                continue
            if not self._matches(
                step["when"], lambda n: bool(scalars[n])
            ):
                continue
            if "verdict" in step:
                rank = max(
                    rank, VERDICT_ORDER.index(step["verdict"])
                )
            if "action" in step:
                required.append(step["action"])
            if "note" in step:
                notes.append(step["note"])
        return VERDICT_ORDER[rank], required, notes
