"""Policy-pack model: structure validation, loading and digests.

A policy pack is a plain dict (see :mod:`repro.policy.defaults` for
the schema by example). Before a pack is compiled it passes through
:func:`validate_pack`, which rejects malformed packs with a typed
:class:`~repro.errors.PolicyError` — unknown fact names, cyclic
derived-fact dependencies, duplicate issue ids, missing required
sections — so the compiler can assume a well-formed input and the
CLI maps bad packs to the usage exit code via the failure table.

Packs are content-addressed: :func:`pack_digest` hashes the
canonical JSON serialisation, and the ops layer mixes that digest
into ResultCache keys so editing a pack on disk invalidates stale
cached verdicts without a process restart.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping

from ..errors import PolicyError

__all__ = [
    "PolicyPack",
    "RISK_ORDER",
    "STATUS_ORDER",
    "VERDICT_ORDER",
    "load_pack",
    "pack_digest",
    "validate_pack",
]

#: Legal-risk vocabulary, least to most severe (pack schema semantics).
RISK_ORDER = ("none", "low", "medium", "high", "severe")
#: Menlo finding-status vocabulary, least to most severe.
STATUS_ORDER = (
    "satisfied",
    "indeterminate",
    "needs-safeguards",
    "violated",
)
#: Verdict vocabulary, least to most severe.
VERDICT_ORDER = (
    "proceed",
    "proceed-with-safeguards",
    "requires-reb-review",
    "do-not-proceed",
)

_RISK_LEVELS = frozenset(RISK_ORDER)
_STATUSES = frozenset(STATUS_ORDER)
_VERDICTS = frozenset(VERDICT_ORDER)
_COLLECTORS = frozenset({"legal-mitigations", "menlo-recommendations"})


def pack_digest(pack: Mapping[str, Any]) -> str:
    """Content digest of *pack*: BLAKE2b-128 over canonical JSON.

    Key order and whitespace do not affect the digest; any semantic
    change to the pack (a new row, an edited rationale) does. The
    ops layer appends this to cache keys for pack-scoped operations.
    """
    try:
        canonical = json.dumps(
            pack, sort_keys=True, separators=(",", ":")
        )
    except (TypeError, ValueError) as exc:
        raise PolicyError(
            f"policy pack is not JSON-serialisable: {exc}"
        ) from exc
    return hashlib.blake2b(
        canonical.encode("utf-8"), digest_size=16
    ).hexdigest()


def load_pack(path: str | Path) -> dict:
    """Read and validate a JSON policy pack from *path*.

    Raises :class:`~repro.errors.PolicyError` for an unreadable
    file, invalid JSON, a non-object document, or any structural
    validation failure.
    """
    pack_path = Path(path)
    try:
        text = pack_path.read_text(encoding="utf-8")  # repro: noqa[R8] pack bytes are digested into pack-scoped cache keys, so the read cannot serve a stale cached result
    except OSError as exc:
        raise PolicyError(
            f"cannot read policy pack {str(pack_path)!r}: {exc}"
        ) from exc
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise PolicyError(
            f"policy pack {str(pack_path)!r} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(data, dict):
        raise PolicyError(
            f"policy pack {str(pack_path)!r} must be a JSON object, "
            f"got {type(data).__name__}"
        )
    validate_pack(data)
    return data


@dataclass(frozen=True)
class PolicyPack:
    """A validated policy pack plus its content digest."""

    name: str
    data: Mapping[str, Any]
    digest: str = field(default="")

    @staticmethod
    def from_data(data: Mapping[str, Any]) -> "PolicyPack":
        """Validate *data* and wrap it with its digest."""
        validate_pack(data)
        return PolicyPack(
            name=str(data["name"]),
            data=data,
            digest=pack_digest(data),
        )


def _require(pack: Mapping[str, Any], key: str, kind: type) -> Any:
    if key not in pack:
        raise PolicyError(f"policy pack is missing section {key!r}")
    value = pack[key]
    if not isinstance(value, kind):
        raise PolicyError(
            f"policy pack section {key!r} must be "
            f"{kind.__name__}, got {type(value).__name__}"
        )
    return value


def _expr_names(expr: Any) -> Iterator[str]:
    """Fact names referenced by a derived-fact expression."""
    if isinstance(expr, str):
        yield expr
    elif isinstance(expr, Mapping):
        if "not" in expr:
            yield from _expr_names(expr["not"])
        elif "any" in expr or "all" in expr:
            key = "any" if "any" in expr else "all"
            operands = expr[key]
            if not isinstance(operands, list) or not operands:
                raise PolicyError(
                    f"derived expression {key!r} needs a non-empty "
                    "list of operands"
                )
            for operand in operands:
                yield from _expr_names(operand)
        else:
            raise PolicyError(
                "derived expression object must use one of "
                f"'any'/'all'/'not', got keys {sorted(expr)}"
            )
    else:
        raise PolicyError(
            "derived expression must be a fact name or an "
            f"any/all/not object, got {type(expr).__name__}"
        )


def _validate_facts(facts: Mapping[str, Any]) -> dict[str, set[str]]:
    """Check the facts section; return the per-space name sets."""
    spaces: dict[str, set[str]] = {}

    profile = _require(facts, "profile", list)
    origin = _require(facts, "origin", dict)
    jurisdiction = _require(facts, "jurisdiction", dict)
    derived = _require(facts, "derived", list)

    legal: set[str] = set()
    for group, names in (
        ("profile", profile),
        ("origin", list(origin)),
        ("jurisdiction", list(jurisdiction)),
    ):
        for name in names:
            if not isinstance(name, str) or not name:
                raise PolicyError(
                    f"facts.{group} entries must be non-empty "
                    "strings"
                )
            if name in legal:
                raise PolicyError(
                    f"duplicate legal fact name {name!r}"
                )
            legal.add(name)

    # Derived facts must resolve acyclically over earlier facts.
    derived_exprs: dict[str, Any] = {}
    for entry in derived:
        if not isinstance(entry, Mapping) or "name" not in entry:
            raise PolicyError(
                "facts.derived entries must be objects with a "
                "'name' key"
            )
        name = entry["name"]
        if name in legal or name in derived_exprs:
            raise PolicyError(
                f"duplicate legal fact name {name!r}"
            )
        expr = {k: v for k, v in entry.items() if k != "name"}
        derived_exprs[name] = expr

    resolved = set(legal)
    visiting: set[str] = set()

    def resolve(name: str) -> None:
        if name in resolved:
            return
        if name not in derived_exprs:
            raise PolicyError(
                f"unknown fact name {name!r} referenced by a "
                "derived fact"
            )
        if name in visiting:
            raise PolicyError(
                f"cyclic derived-fact dependency through {name!r}"
            )
        visiting.add(name)
        for ref in _expr_names(derived_exprs[name]):
            resolve(ref)
        visiting.discard(name)
        resolved.add(name)

    for name in derived_exprs:
        resolve(name)
    legal |= set(derived_exprs)

    spaces["legal"] = legal
    spaces["menlo"] = {
        str(n) for n in _require(facts, "menlo", list)
    }
    spaces["menlo_enums"] = set(
        _require(facts, "menlo_enums", dict)
    )
    spaces["menlo_context"] = {
        str(n) for n in _require(facts, "menlo_context", list)
    }
    spaces["verdict"] = {
        str(n) for n in _require(facts, "verdict", list)
    }
    spaces["verdict_enums"] = set(
        _require(facts, "verdict_enums", dict)
    )
    return spaces


def _check_when(
    when: Any, known: set[str], where: str
) -> None:
    if not isinstance(when, Mapping):
        raise PolicyError(
            f"{where}: 'when' must be an object of fact → bool"
        )
    for name, expected in when.items():
        if name not in known:
            raise PolicyError(
                f"{where}: unknown fact name {name!r}"
            )
        if not isinstance(expected, bool):
            raise PolicyError(
                f"{where}: condition on {name!r} must be a bool"
            )


def _validate_legal(
    legal: Mapping[str, Any], facts: set[str]
) -> None:
    issues = _require(legal, "issues", list)
    seen: set[str] = set()
    for issue in issues:
        if not isinstance(issue, Mapping) or "id" not in issue:
            raise PolicyError(
                "legal.issues entries must be objects with an 'id'"
            )
        issue_id = issue["id"]
        if issue_id in seen:
            raise PolicyError(
                f"duplicate legal issue id {issue_id!r}"
            )
        seen.add(issue_id)
        rows = issue.get("rows")
        if not isinstance(rows, list) or not rows:
            raise PolicyError(
                f"legal issue {issue_id!r} needs a non-empty "
                "'rows' list"
            )
        for index, row in enumerate(rows):
            where = f"legal issue {issue_id!r} row {index}"
            if not isinstance(row, Mapping):
                raise PolicyError(f"{where}: rows must be objects")
            _check_when(row.get("when", {}), facts, where)
            if "applicable" not in row:
                raise PolicyError(
                    f"{where}: missing 'applicable' flag"
                )
            if row["applicable"]:
                risk = row.get("risk")
                if risk not in _RISK_LEVELS:
                    raise PolicyError(
                        f"{where}: applicable rows need a risk "
                        f"level from {sorted(_RISK_LEVELS)}, got "
                        f"{risk!r}"
                    )
            if "rationale" not in row:
                raise PolicyError(f"{where}: missing 'rationale'")
            for mod_index, modifier in enumerate(
                row.get("modifiers", ())
            ):
                mod_where = f"{where} modifier {mod_index}"
                if not isinstance(modifier, Mapping):
                    raise PolicyError(
                        f"{mod_where}: modifiers must be objects"
                    )
                _check_when(
                    modifier.get("when", {}), facts, mod_where
                )
                risk = modifier.get("risk")
                if risk is not None and risk not in _RISK_LEVELS:
                    raise PolicyError(
                        f"{mod_where}: unknown risk level {risk!r}"
                    )
        final = rows[-1]
        if final.get("when"):
            raise PolicyError(
                f"legal issue {issue_id!r}: the last row must be "
                "unconditional (empty 'when') so every profile "
                "matches some row"
            )


def _validate_menlo(
    menlo: Mapping[str, Any],
    scalars: set[str],
    enums: set[str],
) -> None:
    principles = _require(menlo, "principles", list)
    seen: set[str] = set()
    for principle in principles:
        if (
            not isinstance(principle, Mapping)
            or "id" not in principle
        ):
            raise PolicyError(
                "menlo.principles entries must be objects with an "
                "'id'"
            )
        pid = principle["id"]
        if pid in seen:
            raise PolicyError(
                f"duplicate menlo principle id {pid!r}"
            )
        seen.add(pid)
        for index, check in enumerate(principle.get("checks", ())):
            where = f"menlo principle {pid!r} check {index}"
            if not isinstance(check, Mapping):
                raise PolicyError(
                    f"{where}: checks must be objects"
                )
            has_when = "when" in check
            has_each = "each" in check
            if has_when == has_each:
                raise PolicyError(
                    f"{where}: exactly one of 'when'/'each' is "
                    "required"
                )
            if has_when:
                _check_when(check["when"], scalars, where)
            else:
                if check["each"] not in enums:
                    raise PolicyError(
                        f"{where}: unknown enumeration "
                        f"{check['each']!r}"
                    )
            status = check.get("status")
            if status is not None and status not in _STATUSES:
                raise PolicyError(
                    f"{where}: unknown finding status {status!r}"
                )


def _validate_verdict(
    verdict: Mapping[str, Any],
    scalars: set[str],
    enums: set[str],
) -> None:
    default = verdict.get("default")
    if default not in _VERDICTS:
        raise PolicyError(
            f"verdict.default must be one of {sorted(_VERDICTS)}, "
            f"got {default!r}"
        )
    steps = _require(verdict, "steps", list)
    for index, step in enumerate(steps):
        where = f"verdict step {index}"
        if not isinstance(step, Mapping):
            raise PolicyError(f"{where}: steps must be objects")
        kinds = [
            k for k in ("when", "each", "collect") if k in step
        ]
        if len(kinds) != 1:
            raise PolicyError(
                f"{where}: exactly one of 'when'/'each'/'collect' "
                "is required"
            )
        kind = kinds[0]
        if kind == "when":
            _check_when(step["when"], scalars, where)
        elif kind == "each":
            if step["each"] not in enums:
                raise PolicyError(
                    f"{where}: unknown enumeration "
                    f"{step['each']!r}"
                )
        else:
            if step["collect"] not in _COLLECTORS:
                raise PolicyError(
                    f"{where}: unknown collector "
                    f"{step['collect']!r} (known: "
                    f"{sorted(_COLLECTORS)})"
                )
        outcome = step.get("verdict")
        if outcome is not None and outcome not in _VERDICTS:
            raise PolicyError(
                f"{where}: unknown verdict {outcome!r}"
            )


def validate_pack(pack: Mapping[str, Any]) -> None:
    """Reject a malformed policy pack with :class:`PolicyError`.

    Checks structure (required sections, row shapes), vocabulary
    (risk levels, statuses, verdicts, collectors), fact references
    (every ``when`` condition and enumeration names a declared
    fact), derived-fact acyclicity, and id uniqueness. A pack that
    passes can be compiled without further error handling.
    """
    if not isinstance(pack, Mapping):
        raise PolicyError(
            f"policy pack must be a mapping, got "
            f"{type(pack).__name__}"
        )
    name = pack.get("name")
    if not isinstance(name, str) or not name:
        raise PolicyError(
            "policy pack needs a non-empty string 'name'"
        )
    facts = _require(pack, "facts", dict)
    spaces = _validate_facts(facts)

    defences = _require(pack, "defences", dict)
    base = defences.get("base")
    if not isinstance(base, list) or not all(
        isinstance(d, str) for d in base
    ):
        raise PolicyError(
            "defences.base must be a list of strings"
        )
    if not isinstance(defences.get("reb"), str):
        raise PolicyError("defences.reb must be a string")

    _validate_legal(_require(pack, "legal", dict), spaces["legal"])
    _validate_menlo(
        _require(pack, "menlo", dict),
        spaces["menlo"],
        spaces["menlo_enums"],
    )
    _validate_verdict(
        _require(pack, "verdict", dict),
        spaces["verdict"],
        spaces["verdict_enums"],
    )
