"""Pack resolution, compilation memo and hot-swap digests.

A *pack reference* is either the name of a bundled pack
(``"default"``, ``"precautionary"``) or a filesystem path to a JSON
pack. :func:`resolve_pack` turns a reference into a validated
:class:`~repro.policy.model.PolicyPack`; :func:`compiled_policy`
memoizes compilation **by content digest**, so two references to the
same bytes share one decision table while an edited pack file
compiles fresh on the next call — hot-swap needs no process restart
and no cache flush. Path references deliberately re-read the file on
every resolution (no mtime shortcut): the digest the ops layer mixes
into ResultCache keys must always reflect the bytes on disk.
"""

from __future__ import annotations

from pathlib import Path

from ..errors import PolicyError
from .compiler import CompiledPolicy
from .defaults import DEFAULT_PACK, PRECAUTIONARY_PACK
from .model import PolicyPack, load_pack

__all__ = [
    "bundled_pack_names",
    "compiled_policy",
    "default_policy",
    "pack_digest_for",
    "resolve_pack",
]

_BUNDLED: dict[str, dict] = {
    "default": DEFAULT_PACK,
    "precautionary": PRECAUTIONARY_PACK,
}

#: Bundled packs validated + digested once (they are module constants,
#: so the memo writes are idempotent).
_BUNDLED_PACKS: dict[str, PolicyPack] = {}

#: Compiled decision tables, keyed by pack content digest. Two packs
#: with the same digest have identical bytes, so the memo write is
#: idempotent: recompiling can only produce an equivalent table.
_COMPILED: dict[str, CompiledPolicy] = {}

#: The compiled default pack, memoized via the guarded-global idiom.
_DEFAULT_POLICY: CompiledPolicy | None = None


def bundled_pack_names() -> tuple[str, ...]:
    """Names of the packs shipped with the library."""
    return tuple(_BUNDLED)


def resolve_pack(ref: str | None = None) -> PolicyPack:
    """Resolve a pack reference to a validated pack.

    ``None`` means the default pack; a bundled name resolves from
    memory; anything that looks like a path (or exists on disk) is
    loaded as a JSON pack file. Unknown references raise
    :class:`~repro.errors.PolicyError`.
    """
    if ref is None:
        ref = "default"
    if ref in _BUNDLED:
        pack = _BUNDLED_PACKS.get(ref)
        if pack is None:
            pack = PolicyPack.from_data(_BUNDLED[ref])
            _BUNDLED_PACKS[ref] = pack  # repro: noqa[R8] idempotent digest memo over a module constant; cannot go stale
        return pack
    path = Path(ref)
    if (
        ref.endswith(".json")
        or "/" in ref
        or "\\" in ref
        or path.exists()
    ):
        data = load_pack(path)
        return PolicyPack.from_data(data)
    raise PolicyError(
        f"unknown policy pack {ref!r} (bundled: "
        f"{', '.join(_BUNDLED)}; or pass a .json pack path)"
    )


def pack_digest_for(ref: str | None = None) -> str:
    """Content digest of the pack *ref* resolves to, right now.

    For a path reference this re-reads the file, so an edited pack
    yields a new digest immediately — the hook ResultCache keying
    relies on for hot-swap invalidation.
    """
    return resolve_pack(ref).digest


def compiled_policy(ref: str | None = None) -> CompiledPolicy:
    """The compiled decision tables for *ref*, memoized by digest."""
    if ref is None or ref == "default":
        return default_policy()
    pack = resolve_pack(ref)
    compiled = _COMPILED.get(pack.digest)
    if compiled is None:
        compiled = CompiledPolicy(pack)
        _COMPILED[pack.digest] = compiled  # repro: noqa[R8] digest-keyed compile memo; same digest implies identical tables
    return compiled


def default_policy() -> CompiledPolicy:
    """The compiled default pack (the legacy engines' semantics).

    Memoized with the guarded-global idiom: the hot path of every
    legal/Menlo/assessment call runs through here, and the default
    pack is a module constant, so the compile is idempotent.
    """
    global _DEFAULT_POLICY
    if _DEFAULT_POLICY is None:
        _DEFAULT_POLICY = CompiledPolicy(
            PolicyPack.from_data(DEFAULT_PACK)
        )
    return _DEFAULT_POLICY
