"""Breach notification done ethically (§4.2's service contrast).

The paper contrasts leakedsource.com — shut down, operators arrested,
because it *sold access* to leaked credentials — with
haveibeenpwned.com, "the ethical service ... which never makes
passwords available and doesn't expose any personal information
without verification of control of the email address".

:class:`BreachNotificationService` implements the ethical model over
synthetic breach data:

* ingests breach records but stores only keyed hashes, never
  plaintext;
* answers "was I breached?" only after verification of control of
  the queried address (a challenge/response loop);
* supports anonymous *password* checking via the k-anonymity
  range-query protocol (the client sends a short hash prefix and
  receives all suffixes in that bucket, so the service never learns
  which password was checked);
* notifies registered addresses when a future breach includes them.

:class:`AccessSaleService` models the unethical counterpart for the
comparison benchmark: it happily returns other people's data for
money — every query it can answer is, by construction, a query the
notification service refuses.
"""

from __future__ import annotations

import dataclasses
import hashlib
import hmac
import secrets

from ..errors import SafeguardError
from ..observability import audit_event

__all__ = [
    "BreachRecord",
    "BreachNotificationService",
    "AccessSaleService",
    "password_range_query",
]


@dataclasses.dataclass(frozen=True)
class BreachRecord:
    """One (email, password) pair from a breach."""

    breach_name: str
    email: str
    password: str

    def __post_init__(self) -> None:
        if "@" not in self.email:
            raise SafeguardError(f"not an email: {self.email!r}")
        if not self.breach_name:
            raise SafeguardError("breach needs a name")


def _sha1(text: str) -> str:
    return hashlib.sha1(text.encode("utf-8")).hexdigest().upper()


def password_range_query(
    password: str, bucket: dict[str, list[str]]
) -> bool:
    """Client side of the k-anonymity range protocol.

    ``bucket`` maps 5-hex-char prefixes to suffix lists (the server
    response). Returns whether *password* appears, revealing to the
    server only the 5-character prefix.
    """
    digest = _sha1(password)
    prefix, suffix = digest[:5], digest[5:]
    return suffix in bucket.get(prefix, [])


class BreachNotificationService:
    """The ethical breach-notification model."""

    def __init__(self, hmac_key: bytes | None = None) -> None:
        self._key = hmac_key or secrets.token_bytes(32)
        #: keyed email hash -> set of breach names.
        self._breached: dict[str, set[str]] = {}
        #: SHA-1 password corpus, bucketed by 5-char prefix.
        self._password_buckets: dict[str, list[str]] = {}
        #: email hash -> pending challenge token.
        self._challenges: dict[str, str] = {}
        #: verified subscribers (email hash -> plaintext address for
        #: outbound notification only).
        self._subscribers: dict[str, str] = {}
        self._notifications: list[tuple[str, str]] = []

    # -- ingestion -------------------------------------------------------
    def _email_hash(self, email: str) -> str:
        return hmac.new(
            self._key, email.lower().encode("utf-8"), hashlib.sha256
        ).hexdigest()

    def ingest(self, records: list[BreachRecord]) -> int:
        """Load a breach. Plaintext passwords are hashed immediately
        and plaintext emails are never stored for lookup (only the
        keyed hash). Returns the number of records ingested. The
        audit event carries only the record count and breach names —
        never an address or password."""
        notified_before = len(self._notifications)
        for record in records:
            email_hash = self._email_hash(record.email)
            self._breached.setdefault(email_hash, set()).add(
                record.breach_name
            )
            digest = _sha1(record.password)
            self._password_buckets.setdefault(
                digest[:5], []
            ).append(digest[5:])
            if email_hash in self._subscribers:
                self._notifications.append(
                    (
                        self._subscribers[email_hash],
                        record.breach_name,
                    )
                )
        audit_event(
            "notification",
            "breach-ingested",
            subject=",".join(sorted({r.breach_name for r in records})),
            records=len(records),
            notifications_queued=(
                len(self._notifications) - notified_before
            ),
        )
        return len(records)

    # -- verification loop -------------------------------------------------
    def request_verification(self, email: str) -> str:
        """Start verification of control of *email*; returns the
        token that would be mailed to the address."""
        if "@" not in email:
            raise SafeguardError(f"not an email: {email!r}")
        token = secrets.token_hex(16)
        self._challenges[self._email_hash(email)] = token
        # Only a prefix of the keyed hash — never the address or token.
        audit_event(
            "notification",
            "verification-requested",
            subject=self._email_hash(email)[:12],
        )
        return token

    def confirm_verification(self, email: str, token: str) -> None:
        """Complete verification with the mailed token."""
        email_hash = self._email_hash(email)
        expected = self._challenges.get(email_hash)
        if expected is None or not hmac.compare_digest(
            expected, token
        ):
            audit_event(
                "notification",
                "verification-failed",
                subject=email_hash[:12],
            )
            raise SafeguardError("verification failed")
        del self._challenges[email_hash]
        self._subscribers[email_hash] = email
        audit_event(
            "notification",
            "verification-confirmed",
            subject=email_hash[:12],
        )

    # -- queries ------------------------------------------------------------
    def breaches_for(self, email: str) -> tuple[str, ...]:
        """Which breaches include *email* — only for verified owners.

        Raises :class:`~repro.errors.SafeguardError` for unverified
        queries: no personal information without verification of
        control (the haveibeenpwned rule).
        """
        email_hash = self._email_hash(email)
        if email_hash not in self._subscribers:
            audit_event(
                "notification",
                "query-refused",
                subject=email_hash[:12],
                reason="address not verified",
            )
            raise SafeguardError(
                "verify control of the address before querying it"
            )
        return tuple(sorted(self._breached.get(email_hash, ())))

    def password_bucket(self, prefix: str) -> dict[str, list[str]]:
        """Server side of the k-anonymity range protocol.

        Returns every stored suffix under the 5-hex-char *prefix*;
        the service never learns which password the client checks.
        """
        prefix = prefix.upper()
        if len(prefix) != 5 or any(
            c not in "0123456789ABCDEF" for c in prefix
        ):
            raise SafeguardError(
                "prefix must be 5 hex characters"
            )
        return {prefix: list(self._password_buckets.get(prefix, []))}

    def check_password(self, password: str) -> bool:
        """Convenience: full client+server round trip locally."""
        digest = _sha1(password)
        return password_range_query(
            password, self.password_bucket(digest[:5])
        )

    @property
    def pending_notifications(self) -> tuple[tuple[str, str], ...]:
        """(address, breach) pairs queued for outbound notification."""
        return tuple(self._notifications)

    def exposes_passwords(self) -> bool:
        """The service never returns a password or full hash mapping
        — structurally false, asserted in tests."""
        return False


class AccessSaleService:
    """The leakedsource model: sells other people's breach data.

    Implemented only as the comparison subject — every capability
    here is one the paper identifies as the reason the real service
    was shut down and its operators arrested.
    """

    def __init__(self) -> None:
        self._records: list[BreachRecord] = []
        self.revenue = 0.0

    def ingest(self, records: list[BreachRecord]) -> int:
        """Hoard raw records wholesale (audited for the comparison)."""
        self._records.extend(records)
        audit_event(
            "notification",
            "sale-service-ingested",
            records=len(records),
        )
        return len(records)

    def lookup(self, email: str, payment: float) -> list[BreachRecord]:
        """Anyone willing to pay gets anyone's records — no
        verification of control, passwords included. The audit event
        records the sale without repeating the queried address."""
        if payment <= 0:
            raise SafeguardError("this service only takes money")
        self.revenue += payment
        matches = [r for r in self._records if r.email == email]
        audit_event(
            "notification",
            "records-sold",
            payment=payment,
            records=len(matches),
        )
        return matches

    def exposes_passwords(self) -> bool:
        return True
