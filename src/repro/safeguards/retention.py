"""Retention policies and data-holding inventory.

The paper recommends researchers "use secure storage, enforce
retention policies" for malware and other illicit-origin data. A
:class:`RetentionPolicy` bounds how long each sensitivity class may be
held; the :class:`DataInventory` tracks holdings against the policy
and reports what is due for destruction. Time is injected as an
integer day count so the module stays deterministic and testable.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterator

from ..errors import SafeguardError
from ..observability import audit_event

__all__ = ["Sensitivity", "RetentionPolicy", "Holding", "DataInventory"]


class Sensitivity:
    """Sensitivity classes with increasing handling requirements."""

    DERIVED = "derived"  # aggregates/metrics only
    PSEUDONYMISED = "pseudonymised"
    IDENTIFIABLE = "identifiable"
    TOXIC = "toxic"  # malware, classified, other high-hazard material

    ORDER = (DERIVED, PSEUDONYMISED, IDENTIFIABLE, TOXIC)


@dataclasses.dataclass(frozen=True)
class RetentionPolicy:
    """Maximum holding period (days) per sensitivity class.

    ``None`` means indefinite retention is permitted (usually only for
    derived data).
    """

    limits: dict[str, int | None] = dataclasses.field(
        default_factory=lambda: {
            Sensitivity.DERIVED: None,
            Sensitivity.PSEUDONYMISED: 3 * 365,
            Sensitivity.IDENTIFIABLE: 365,
            Sensitivity.TOXIC: 180,
        }
    )

    def __post_init__(self) -> None:
        unknown = set(self.limits) - set(Sensitivity.ORDER)
        if unknown:
            raise SafeguardError(
                f"unknown sensitivity classes {sorted(unknown)}"
            )
        for sensitivity, limit in self.limits.items():
            if limit is not None and limit <= 0:
                raise SafeguardError(
                    f"retention limit for {sensitivity} must be "
                    "positive or None"
                )

    def limit_for(self, sensitivity: str) -> int | None:
        """The holding limit in days for one sensitivity class."""
        try:
            return self.limits[sensitivity]
        except KeyError:
            raise SafeguardError(
                f"no retention limit declared for {sensitivity!r}"
            ) from None


@dataclasses.dataclass(frozen=True)
class Holding:
    """One dataset being held."""

    id: str
    description: str
    sensitivity: str
    acquired_day: int
    destroyed_day: int | None = None

    def __post_init__(self) -> None:
        if self.sensitivity not in Sensitivity.ORDER:
            raise SafeguardError(
                f"unknown sensitivity {self.sensitivity!r}"
            )
        if self.acquired_day < 0:
            raise SafeguardError("acquired_day must be non-negative")
        if (
            self.destroyed_day is not None
            and self.destroyed_day < self.acquired_day
        ):
            raise SafeguardError("cannot destroy before acquisition")

    @property
    def active(self) -> bool:
        return self.destroyed_day is None

    def age(self, today: int) -> int:
        end = self.destroyed_day if self.destroyed_day is not None else today
        return end - self.acquired_day


class DataInventory:
    """Holdings register checked against a retention policy."""

    def __init__(self, policy: RetentionPolicy | None = None) -> None:
        self.policy = policy or RetentionPolicy()
        self._holdings: dict[str, Holding] = {}

    def acquire(
        self,
        holding_id: str,
        description: str,
        sensitivity: str,
        today: int,
    ) -> Holding:
        """Record a new holding acquired on *today*."""
        if holding_id in self._holdings:
            raise SafeguardError(f"duplicate holding {holding_id!r}")
        holding = Holding(
            id=holding_id,
            description=description,
            sensitivity=sensitivity,
            acquired_day=today,
        )
        self._holdings[holding_id] = holding
        audit_event(
            "retention",
            "acquired",
            subject=holding_id,
            sensitivity=sensitivity,
            day=today,
        )
        return holding

    def destroy(self, holding_id: str, today: int) -> Holding:
        """Mark a holding destroyed on *today*."""
        holding = self[holding_id]
        if not holding.active:
            raise SafeguardError(
                f"holding {holding_id!r} already destroyed"
            )
        destroyed = dataclasses.replace(holding, destroyed_day=today)
        self._holdings[holding_id] = destroyed
        audit_event(
            "retention",
            "destroyed",
            subject=holding_id,
            sensitivity=holding.sensitivity,
            day=today,
            held_days=destroyed.age(today),
        )
        return destroyed

    def sweep(self, today: int) -> tuple[Holding, ...]:
        """Destroy every holding at or past its retention limit.

        This is the enforcement half of the policy: a periodic sweep
        that destroys what :meth:`due_for_destruction` reports and
        emits one ``retention/expired`` audit event per holding — the
        inspectable record that the "enforce retention policies"
        safeguard actually ran. Returns the destroyed holdings.
        """
        expired: list[Holding] = []
        for holding in self.due_for_destruction(today):
            limit = self.policy.limit_for(holding.sensitivity)
            audit_event(
                "retention",
                "expired",
                subject=holding.id,
                sensitivity=holding.sensitivity,
                day=today,
                limit_days=limit,
                overdue_days=holding.age(today) - (limit or 0),
            )
            expired.append(self.destroy(holding.id, today))
        return tuple(expired)

    def __getitem__(self, holding_id: str) -> Holding:
        try:
            return self._holdings[holding_id]
        except KeyError:
            raise SafeguardError(
                f"unknown holding {holding_id!r}"
            ) from None

    def __iter__(self) -> Iterator[Holding]:
        return iter(self._holdings.values())

    def __len__(self) -> int:
        return len(self._holdings)

    def active(self) -> tuple[Holding, ...]:
        return tuple(h for h in self if h.active)

    def due_for_destruction(self, today: int) -> tuple[Holding, ...]:
        """Active holdings at or past their retention limit."""
        due = []
        for holding in self.active():
            limit = self.policy.limit_for(holding.sensitivity)
            if limit is not None and holding.age(today) >= limit:
                due.append(holding)
        return tuple(due)

    def overdue(self, today: int) -> tuple[Holding, ...]:
        """Active holdings strictly past their limit — policy breaches."""
        return tuple(
            h
            for h in self.due_for_destruction(today)
            if h.age(today)
            > (self.policy.limit_for(h.sensitivity) or 0)
        )

    def compliant(self, today: int) -> bool:
        return not self.overdue(today)

    def report(self, today: int) -> str:
        """Human-readable inventory status for *today*."""
        lines = [
            f"Data inventory at day {today}: "
            f"{len(self.active())} active holdings"
        ]
        for holding in self.active():
            limit = self.policy.limit_for(holding.sensitivity)
            status = "indefinite" if limit is None else (
                f"{holding.age(today)}/{limit} days"
            )
            lines.append(
                f"  {holding.id} [{holding.sensitivity}] {status}"
            )
        due = self.due_for_destruction(today)
        if due:
            lines.append("Due for destruction:")
            lines.extend(f"  {h.id}" for h in due)
        return "\n".join(lines)
