"""Controlled sharing (the §5.2 "CS" safeguard).

Allman & Paxson — endorsed by the paper — recommend sharing data of
illicit origin only "with verified researchers under a written
acceptable usage policy", and the paper adds that "data providers
should make their acceptable usage policies publicly available so that
they can be cited". This module provides:

* :class:`AcceptableUsePolicy` — a citable AUP with generated text,
* :class:`VettingProcess` — researcher verification workflow,
* :class:`SharingRegistry` — agreements, with enforcement of vetting
  and the policy's modes (full data / partial / analysis-on-behalf).
"""

from __future__ import annotations

import dataclasses
import enum
from collections.abc import Iterator

from ..errors import SafeguardError
from ..observability import audit_event

__all__ = [
    "SharingMode",
    "AcceptableUsePolicy",
    "VettingProcess",
    "VettingStatus",
    "SharingAgreement",
    "SharingRegistry",
]


class SharingMode(enum.Enum):
    """The controlled-sharing modes §5.2 enumerates."""

    #: Full dataset under agreement.
    FULL_UNDER_AGREEMENT = "full-under-agreement"
    #: Only partial / anonymised data released.
    PARTIAL_ANONYMISED = "partial-anonymised"
    #: Visiting researchers analyse on the holder's systems.
    VISIT_INSTITUTION = "visit-institution"
    #: Holder runs the requester's code and returns results.
    ANALYSIS_ON_BEHALF = "analysis-on-behalf"


@dataclasses.dataclass(frozen=True)
class AcceptableUsePolicy:
    """A written, citable acceptable usage policy."""

    id: str
    dataset_description: str
    permitted_purposes: tuple[str, ...]
    prohibited: tuple[str, ...] = (
        "attempting to deanonymise or re-identify any person",
        "redistributing the data or any subset of it",
        "using the data for any commercial purpose",
        "contacting individuals identified in the data",
    )
    required_safeguards: tuple[str, ...] = (
        "store the data encrypted with access restricted to named "
        "researchers",
        "destroy the data at the end of the agreed retention period",
        "report any suspected breach to the provider immediately",
    )
    citation_url: str = ""

    def __post_init__(self) -> None:
        if not self.permitted_purposes:
            raise SafeguardError(
                "an AUP must state its permitted purposes (Cave 2016: "
                "the purpose and scope for using such data must be "
                "stated)"
            )

    @property
    def citable(self) -> bool:
        """Publicly citable, as the paper's §6 recommends."""
        return bool(self.citation_url)

    def render_text(self) -> str:
        """The full policy as citable plain text."""
        lines = [
            f"Acceptable Usage Policy {self.id}",
            f"Dataset: {self.dataset_description}",
            "Permitted purposes:",
        ]
        lines.extend(f"  - {p}" for p in self.permitted_purposes)
        lines.append("Prohibited:")
        lines.extend(f"  - {p}" for p in self.prohibited)
        lines.append("Required safeguards:")
        lines.extend(f"  - {s}" for s in self.required_safeguards)
        if self.citation_url:
            lines.append(f"Cite as: {self.citation_url}")
        return "\n".join(lines)


class VettingStatus(enum.Enum):
    """Lifecycle of a researcher-verification case."""

    PENDING = "pending"
    VERIFIED = "verified"
    REJECTED = "rejected"


@dataclasses.dataclass
class _VettingCase:
    researcher: str
    affiliation: str
    status: VettingStatus = VettingStatus.PENDING
    checks: dict[str, bool] = dataclasses.field(default_factory=dict)


class VettingProcess:
    """Verify researchers before sharing (Allman & Paxson).

    The provider records the outcome of each verification check
    (institutional affiliation, research purpose, ethics approval);
    a researcher is verified when every required check passes.
    """

    REQUIRED_CHECKS = (
        "affiliation-confirmed",
        "purpose-is-research",
        "ethics-process-in-place",
    )

    def __init__(self) -> None:
        self._cases: dict[str, _VettingCase] = {}

    def apply(self, researcher: str, affiliation: str) -> None:
        """Open a vetting case for a researcher."""
        if not researcher or not affiliation:
            raise SafeguardError(
                "applications need researcher and affiliation"
            )
        if researcher in self._cases:
            raise SafeguardError(
                f"{researcher!r} already has a vetting case"
            )
        self._cases[researcher] = _VettingCase(researcher, affiliation)
        audit_event(
            "sharing",
            "vetting-opened",
            subject=researcher,
            affiliation=affiliation,
        )

    def record_check(
        self, researcher: str, check: str, passed: bool
    ) -> None:
        """Record the outcome of one verification check."""
        if check not in self.REQUIRED_CHECKS:
            raise SafeguardError(f"unknown vetting check {check!r}")
        case = self._case(researcher)
        case.checks[check] = passed
        if not passed:
            case.status = VettingStatus.REJECTED
        elif all(
            case.checks.get(c) for c in self.REQUIRED_CHECKS
        ):
            case.status = VettingStatus.VERIFIED
        audit_event(
            "sharing",
            "vetting-check",
            subject=researcher,
            check=check,
            passed=passed,
            status=case.status.value,
        )

    def status(self, researcher: str) -> VettingStatus:
        return self._case(researcher).status

    def is_verified(self, researcher: str) -> bool:
        """Whether the researcher passed every required check."""
        return (
            researcher in self._cases
            and self._cases[researcher].status is VettingStatus.VERIFIED
        )

    def _case(self, researcher: str) -> _VettingCase:
        try:
            return self._cases[researcher]
        except KeyError:
            raise SafeguardError(
                f"no vetting case for {researcher!r}"
            ) from None


@dataclasses.dataclass(frozen=True)
class SharingAgreement:
    """A signed agreement binding a verified researcher to an AUP."""

    researcher: str
    policy_id: str
    mode: SharingMode
    signed_day: int
    expires_day: int

    def __post_init__(self) -> None:
        if self.expires_day <= self.signed_day:
            raise SafeguardError("agreement must expire after signing")

    def active(self, today: int) -> bool:
        return self.signed_day <= today < self.expires_day


class SharingRegistry:
    """The provider-side ledger of policies and agreements."""

    def __init__(self, vetting: VettingProcess | None = None) -> None:
        self.vetting = vetting or VettingProcess()
        self._policies: dict[str, AcceptableUsePolicy] = {}
        self._agreements: list[SharingAgreement] = []

    def publish_policy(self, policy: AcceptableUsePolicy) -> None:
        """Register a citable AUP under its id (audit-logged)."""
        if policy.id in self._policies:
            raise SafeguardError(f"duplicate policy id {policy.id!r}")
        self._policies[policy.id] = policy
        audit_event(
            "sharing",
            "policy-published",
            subject=policy.id,
            citable=policy.citable,
        )

    def policy(self, policy_id: str) -> AcceptableUsePolicy:
        """Look up a published policy by id."""
        try:
            return self._policies[policy_id]
        except KeyError:
            raise SafeguardError(
                f"unknown policy {policy_id!r}"
            ) from None

    def sign(
        self,
        researcher: str,
        policy_id: str,
        mode: SharingMode,
        today: int,
        duration_days: int = 365,
    ) -> SharingAgreement:
        """Sign an agreement; requires prior verification.

        Raises :class:`~repro.errors.SafeguardError` for unverified
        researchers — the check the paper found no surveyed paper
        actually performed.
        """
        if not self.vetting.is_verified(researcher):
            audit_event(
                "sharing",
                "release-denied",
                subject=policy_id,
                researcher=researcher,
                reason="researcher not verified",
            )
            raise SafeguardError(
                f"researcher {researcher!r} has not been verified"
            )
        self.policy(policy_id)  # must exist
        agreement = SharingAgreement(
            researcher=researcher,
            policy_id=policy_id,
            mode=mode,
            signed_day=today,
            expires_day=today + duration_days,
        )
        self._agreements.append(agreement)
        audit_event(
            "sharing",
            "agreement-signed",
            subject=policy_id,
            researcher=researcher,
            mode=mode.value,
            signed_day=today,
            expires_day=agreement.expires_day,
        )
        return agreement

    def may_access(
        self, researcher: str, policy_id: str, today: int
    ) -> bool:
        """Whether an active agreement covers this access today."""
        return any(
            a.researcher == researcher
            and a.policy_id == policy_id
            and a.active(today)
            for a in self._agreements
        )

    def agreements(self) -> Iterator[SharingAgreement]:
        return iter(self._agreements)

    def active_agreements(
        self, today: int
    ) -> tuple[SharingAgreement, ...]:
        return tuple(a for a in self._agreements if a.active(today))
