"""Access control and audit logging for held illicit-origin data.

The §5.2 secure-storage safeguard includes "access control to avoid
accidental leakage". :class:`AccessController` enforces grants per
(principal, action, resource) and records every attempt — allowed or
denied — in an append-only :class:`AuditLog` whose entries are
hash-chained so tampering is detectable.
"""

from __future__ import annotations

import dataclasses
import hashlib
from collections.abc import Iterator

from ..errors import AccessDeniedError, SafeguardError
from ..observability import audit_event

__all__ = ["Action", "Grant", "AuditRecord", "AuditLog",
           "AccessController"]


class Action:
    """Actions on a held dataset."""

    READ = "read"
    ANALYZE = "analyze"
    EXPORT = "export"
    DELETE = "delete"
    GRANT = "grant"

    ALL = (READ, ANALYZE, EXPORT, DELETE, GRANT)


@dataclasses.dataclass(frozen=True)
class Grant:
    """Permission for a principal to perform actions on a resource."""

    principal: str
    resource: str
    actions: frozenset[str]

    def __post_init__(self) -> None:
        unknown = self.actions - set(Action.ALL)
        if unknown:
            raise SafeguardError(f"unknown actions {sorted(unknown)}")
        if not self.principal or not self.resource:
            raise SafeguardError("grant needs principal and resource")


@dataclasses.dataclass(frozen=True)
class AuditRecord:
    """One audit entry, hash-chained to its predecessor."""

    sequence: int
    principal: str
    action: str
    resource: str
    allowed: bool
    previous_digest: str
    digest: str = ""

    def compute_digest(self) -> str:
        """The SHA-256 digest binding this record to its chain."""
        payload = (
            f"{self.sequence}|{self.principal}|{self.action}|"
            f"{self.resource}|{self.allowed}|{self.previous_digest}"
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class AuditLog:
    """Append-only, hash-chained audit log."""

    GENESIS = "0" * 64

    def __init__(self) -> None:
        self._records: list[AuditRecord] = []

    def append(
        self, principal: str, action: str, resource: str, allowed: bool
    ) -> AuditRecord:
        """Append one hash-chained record of an access attempt.

        The record also forwards to the process-wide observability
        trail (:func:`repro.observability.audit_event`), so a REB
        inspecting one combined log sees every controller's traffic
        interleaved in order.
        """
        previous = (
            self._records[-1].digest if self._records else self.GENESIS
        )
        record = AuditRecord(
            sequence=len(self._records),
            principal=principal,
            action=action,
            resource=resource,
            allowed=allowed,
            previous_digest=previous,
        )
        record = dataclasses.replace(
            record, digest=record.compute_digest()
        )
        self._records.append(record)
        audit_event(
            "access",
            action,
            subject=resource,
            principal=principal,
            allowed=allowed,
        )
        return record

    def __iter__(self) -> Iterator[AuditRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def verify_chain(self) -> bool:
        """True when no record has been altered or removed."""
        previous = self.GENESIS
        for index, record in enumerate(self._records):
            if record.sequence != index:
                return False
            if record.previous_digest != previous:
                return False
            if record.compute_digest() != record.digest:
                return False
            previous = record.digest
        return True

    def denials(self) -> tuple[AuditRecord, ...]:
        return tuple(r for r in self._records if not r.allowed)

    def by_principal(self, principal: str) -> tuple[AuditRecord, ...]:
        return tuple(
            r for r in self._records if r.principal == principal
        )


class AccessController:
    """Grant-based access control with mandatory audit logging."""

    def __init__(self, owner: str) -> None:
        if not owner:
            raise SafeguardError("owner must be named")
        self.owner = owner
        self._grants: list[Grant] = []
        self.audit = AuditLog()

    def grant(
        self,
        granting_principal: str,
        principal: str,
        resource: str,
        actions: set[str],
    ) -> Grant:
        """Owner (or a principal with GRANT) extends access."""
        if granting_principal != self.owner and not self._allowed(
            granting_principal, Action.GRANT, resource
        ):
            self.audit.append(
                granting_principal, Action.GRANT, resource, False
            )
            raise AccessDeniedError(
                granting_principal, Action.GRANT, resource
            )
        grant = Grant(
            principal=principal,
            resource=resource,
            actions=frozenset(actions),
        )
        self._grants.append(grant)
        self.audit.append(
            granting_principal, Action.GRANT, resource, True
        )
        return grant

    def revoke(self, principal: str, resource: str) -> int:
        """Remove all grants for (principal, resource); returns count.

        Revocations are audit-logged like every other change to who
        can touch the data — the gap the pre-observability version
        left open.
        """
        before = len(self._grants)
        self._grants = [
            g
            for g in self._grants
            if not (g.principal == principal and g.resource == resource)
        ]
        removed = before - len(self._grants)
        self.audit.append(principal, "revoke", resource, True)
        return removed

    def _allowed(
        self, principal: str, action: str, resource: str
    ) -> bool:
        if principal == self.owner:
            return True
        return any(
            g.principal == principal
            and g.resource == resource
            and action in g.actions
            for g in self._grants
        )

    def check(self, principal: str, action: str, resource: str) -> None:
        """Authorize or raise; either way the attempt is logged."""
        if action not in Action.ALL:
            raise SafeguardError(f"unknown action {action!r}")
        allowed = self._allowed(principal, action, resource)
        self.audit.append(principal, action, resource, allowed)
        if not allowed:
            raise AccessDeniedError(principal, action, resource)

    def can(self, principal: str, action: str, resource: str) -> bool:
        """Non-raising, non-logging capability query."""
        return self._allowed(principal, action, resource)
