"""Key escrow via Shamir secret sharing (stdlib only, GF(256)).

Controlled sharing sometimes requires that *nobody alone* can open
the raw data: the paper's Cambridge Cybercrime Centre model vests
access decisions in an institution, not an individual. This module
splits a container passphrase (or pseudonym escrow key) into *n*
shares such that any *k* reconstruct it and fewer reveal nothing,
using Shamir's scheme over GF(2^8) with the AES polynomial.

Typical use: seal a dump with :class:`~repro.safeguards.storage.
SecureContainer`, split the passphrase 3-of-5 across the PI, the
department, and the ethics board, and destroy the original.
"""

from __future__ import annotations

import dataclasses
import secrets

from ..errors import SafeguardError
from ..observability import audit_event

__all__ = ["Share", "split_secret", "combine_shares"]

_POLY = 0x11B  # x^8 + x^4 + x^3 + x + 1 (the AES field polynomial)


def _gf_mul(a: int, b: int) -> int:
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        if a & 0x100:
            a ^= _POLY
        b >>= 1
    return result


def _gf_pow(a: int, power: int) -> int:
    result = 1
    for _ in range(power):
        result = _gf_mul(result, a)
    return result


def _gf_inv(a: int) -> int:
    if a == 0:
        raise SafeguardError("zero has no inverse in GF(256)")
    # a^(2^8 - 2) = a^254 is the inverse.
    return _gf_pow(a, 254)


def _eval_poly(coefficients: bytes, x: int) -> int:
    """Horner evaluation of the polynomial at x (GF(256))."""
    result = 0
    for coefficient in reversed(coefficients):
        result = _gf_mul(result, x) ^ coefficient
    return result


@dataclasses.dataclass(frozen=True)
class Share:
    """One share: the x-coordinate and per-byte y values."""

    index: int  # x in 1..255
    data: bytes
    threshold: int

    def __post_init__(self) -> None:
        if not 1 <= self.index <= 255:
            raise SafeguardError("share index must be in 1..255")
        if self.threshold < 1:
            raise SafeguardError("threshold must be at least 1")


def split_secret(
    secret: bytes, *, shares: int, threshold: int
) -> list[Share]:
    """Split *secret* into *shares* shares, any *threshold* of which
    reconstruct it.

    Each byte of the secret becomes the constant term of a fresh
    random polynomial of degree ``threshold - 1``.
    """
    if not secret:
        raise SafeguardError("secret must be non-empty")
    if threshold < 1 or shares < 1:
        raise SafeguardError("shares and threshold must be positive")
    if threshold > shares:
        raise SafeguardError("threshold cannot exceed share count")
    if shares > 255:
        raise SafeguardError("at most 255 shares in GF(256)")
    # One polynomial per secret byte; coefficients[0] is the secret.
    polynomials = [
        bytes([byte]) + secrets.token_bytes(threshold - 1)
        for byte in secret
    ]
    result = []
    for index in range(1, shares + 1):
        data = bytes(
            _eval_poly(poly, index) for poly in polynomials
        )
        result.append(
            Share(index=index, data=data, threshold=threshold)
        )
    # Audit the split parameters only — never the secret or shares.
    audit_event(
        "escrow",
        "split",
        shares=shares,
        threshold=threshold,
        secret_bytes=len(secret),
    )
    return result


def combine_shares(shares: list[Share]) -> bytes:
    """Reconstruct the secret from at least *threshold* shares.

    Raises :class:`~repro.errors.SafeguardError` for inconsistent or
    insufficient shares. With fewer than threshold *distinct* shares
    the reconstruction is information-theoretically impossible; this
    function refuses rather than returning garbage.
    """
    if not shares:
        raise SafeguardError("no shares supplied")
    threshold = shares[0].threshold
    length = len(shares[0].data)
    if any(s.threshold != threshold for s in shares):
        raise SafeguardError("shares disagree on the threshold")
    if any(len(s.data) != length for s in shares):
        raise SafeguardError("shares have inconsistent lengths")
    distinct = {s.index: s for s in shares}
    if len(distinct) < threshold:
        audit_event(
            "escrow",
            "combine-refused",
            threshold=threshold,
            distinct_shares=len(distinct),
        )
        raise SafeguardError(
            f"need {threshold} distinct shares, got {len(distinct)}"
        )
    chosen = list(distinct.values())[:threshold]
    xs = [share.index for share in chosen]
    secret = bytearray()
    for byte_index in range(length):
        # Lagrange interpolation at x = 0.
        value = 0
        for i, share in enumerate(chosen):
            numerator = 1
            denominator = 1
            for j, other_x in enumerate(xs):
                if i == j:
                    continue
                numerator = _gf_mul(numerator, other_x)
                denominator = _gf_mul(
                    denominator, xs[i] ^ other_x
                )
            weight = _gf_mul(numerator, _gf_inv(denominator))
            value ^= _gf_mul(share.data[byte_index], weight)
        secret.append(value)
    audit_event(
        "escrow",
        "combined",
        threshold=threshold,
        shares_used=threshold,
        secret_bytes=length,
    )
    return bytes(secret)
