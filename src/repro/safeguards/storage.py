"""Secure storage (the §5.2 "SS" safeguard) — stdlib-only container.

Implements authenticated encryption from the standard library only
(no external crypto dependency is available offline):

* key derivation: PBKDF2-HMAC-SHA256 with a random salt,
* confidentiality: a keyed-BLAKE2b keystream in counter mode
  (BLAKE2b(key, nonce || counter) blocks XORed with the plaintext),
* integrity/authenticity: encrypt-then-MAC with HMAC-SHA256 over
  header + ciphertext, verified in constant time.

This is a faithful, reviewable construction for research-data
containers in a simulation setting; a production deployment would use
a vetted AEAD (and the docstring says so on purpose).

Hot path notes (the safeguard pipeline seals whole dumps chunk by
chunk): keystream blocks come from BLAKE2b's keyed mode (64-byte
blocks, one compression each — several times faster than the
HMAC-SHA256 construction it replaced, hence the ``REPROSS2`` format
magic), the XOR runs over whole integers instead of a per-byte
Python loop, and the expensive PBKDF2 derivation is memoised per
salt so repeated seals under one passphrase pay it once.

For deterministic, reproducible sealing (the pipeline's requirement
that parallel output be byte-identical to serial), callers may pass
an explicit ``salt``/``nonce`` to :meth:`SecureContainer.seal`; the
supplied nonce must then be unique per (key, plaintext) context —
the pipeline derives both from the chunk content, SIV-style, so
equal inputs produce equal containers and unequal inputs produce
unrelated keystreams.
"""

from __future__ import annotations

import dataclasses
import hashlib
import hmac
import secrets
import struct

from ..errors import IntegrityError, SafeguardError
from ..observability import audit_event

__all__ = ["SecureContainer", "StoragePolicy", "derive_key"]

_MAGIC = b"REPROSS2"
_BLOCK = 64  # BLAKE2b digest (keystream block) size
_TAG_LEN = 32  # HMAC-SHA256 tag size
_KEY_LEN = 32
_SALT_LEN = 16
_NONCE_LEN = 16
_PBKDF2_ITERATIONS = 200_000


def derive_key(
    passphrase: str, salt: bytes, iterations: int = _PBKDF2_ITERATIONS
) -> bytes:
    """Derive a 32-byte key from a passphrase with PBKDF2-HMAC-SHA256."""
    if not passphrase:
        raise SafeguardError("passphrase must be non-empty")
    if len(salt) < 8:
        raise SafeguardError("salt must be at least 8 bytes")
    return hashlib.pbkdf2_hmac(
        "sha256", passphrase.encode("utf-8"), salt, iterations, _KEY_LEN
    )


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """Counter-mode keystream: BLAKE2b(key, nonce || counter) blocks."""
    blake2b = hashlib.blake2b
    pack = struct.pack
    blocks = [
        blake2b(nonce + pack(">Q", counter), key=key).digest()
        for counter in range((length + _BLOCK - 1) // _BLOCK)
    ]
    return b"".join(blocks)[:length]


def _xor(data: bytes, stream: bytes) -> bytes:
    """Whole-integer XOR (C-speed; the per-byte loop was the hot spot)."""
    length = len(data)
    return (
        int.from_bytes(data, "little")
        ^ int.from_bytes(stream[:length], "little")
    ).to_bytes(length, "little")


class SecureContainer:
    """Encrypt-then-MAC container for sensitive research data.

    Sealed format::

        MAGIC(8) || salt(16) || nonce(16) || ciphertext || tag(32)

    Separate encryption and MAC keys are derived from the master key
    by domain separation.
    """

    def __init__(self, passphrase: str) -> None:
        self._passphrase = passphrase
        if not passphrase:
            raise SafeguardError("passphrase must be non-empty")
        self._subkey_cache: dict[bytes, tuple[bytes, bytes]] = {}

    def _subkeys(self, salt: bytes) -> tuple[bytes, bytes]:
        cached = self._subkey_cache.get(salt)
        if cached is not None:
            return cached
        master = derive_key(self._passphrase, salt)
        enc_key = hmac.new(master, b"encrypt", hashlib.sha256).digest()
        mac_key = hmac.new(master, b"mac", hashlib.sha256).digest()
        # The PBKDF2 work factor is the point of derive_key; memoise
        # per salt so chunked sealing pays it once, and keep the memo
        # tiny (it only ever holds a handful of salts).
        if len(self._subkey_cache) < 64:
            self._subkey_cache[salt] = (enc_key, mac_key)
        return enc_key, mac_key

    def seal(
        self,
        plaintext: bytes,
        *,
        salt: bytes | None = None,
        nonce: bytes | None = None,
    ) -> bytes:
        """Encrypt and authenticate *plaintext*.

        Without arguments the salt and nonce are drawn fresh from the
        OS RNG. Passing them explicitly makes sealing deterministic —
        required for reproducible pipelines — in which case the caller
        is responsible for nonce uniqueness per plaintext context
        (derive it from the content, SIV-style).
        """
        if not isinstance(plaintext, (bytes, bytearray)):
            raise SafeguardError("plaintext must be bytes")
        explicit_params = salt is not None and nonce is not None
        if salt is None:
            salt = secrets.token_bytes(_SALT_LEN)
        elif len(salt) != _SALT_LEN:
            raise SafeguardError(f"salt must be {_SALT_LEN} bytes")
        if nonce is None:
            nonce = secrets.token_bytes(_NONCE_LEN)
        elif len(nonce) != _NONCE_LEN:
            raise SafeguardError(f"nonce must be {_NONCE_LEN} bytes")
        enc_key, mac_key = self._subkeys(salt)
        stream = _keystream(enc_key, nonce, len(plaintext))
        ciphertext = _xor(bytes(plaintext), stream)
        header = _MAGIC + salt + nonce
        tag = hmac.new(
            mac_key, header + ciphertext, hashlib.sha256
        ).digest()
        sealed = header + ciphertext + tag
        audit_event(
            "storage",
            "seal",
            plaintext_bytes=len(plaintext),
            sealed_bytes=len(sealed),
            deterministic=explicit_params,
        )
        return sealed

    def open(self, sealed: bytes) -> bytes:
        """Verify and decrypt a sealed container.

        Raises :class:`~repro.errors.IntegrityError` on any tampering,
        truncation or wrong passphrase.
        """
        minimum = len(_MAGIC) + _SALT_LEN + _NONCE_LEN + _TAG_LEN
        if len(sealed) < minimum:
            audit_event(
                "storage",
                "open-failed",
                sealed_bytes=len(sealed),
                reason="container truncated",
            )
            raise IntegrityError("container truncated")
        if sealed[: len(_MAGIC)] != _MAGIC:
            audit_event(
                "storage",
                "open-failed",
                sealed_bytes=len(sealed),
                reason="bad magic",
            )
            raise IntegrityError("not a repro secure container")
        offset = len(_MAGIC)
        salt = sealed[offset : offset + _SALT_LEN]
        offset += _SALT_LEN
        nonce = sealed[offset : offset + _NONCE_LEN]
        offset += _NONCE_LEN
        ciphertext = sealed[offset:-_TAG_LEN]
        tag = sealed[-_TAG_LEN:]
        enc_key, mac_key = self._subkeys(salt)
        header = sealed[: offset]
        expected = hmac.new(
            mac_key, header + ciphertext, hashlib.sha256
        ).digest()
        if not hmac.compare_digest(tag, expected):
            audit_event(
                "storage",
                "open-failed",
                sealed_bytes=len(sealed),
                reason="authentication failure",
            )
            raise IntegrityError(
                "authentication failed (tampered data or wrong "
                "passphrase)"
            )
        stream = _keystream(enc_key, nonce, len(ciphertext))
        plaintext = _xor(ciphertext, stream)
        audit_event(
            "storage",
            "open",
            sealed_bytes=len(sealed),
            plaintext_bytes=len(plaintext),
        )
        return plaintext


@dataclasses.dataclass(frozen=True)
class StoragePolicy:
    """Declarative storage policy for a dataset of illicit origin.

    Conformance checking is what the checklist engine and report
    generators consume; the actual mechanics live in
    :class:`SecureContainer` and :mod:`repro.safeguards.access`.
    """

    encrypted_at_rest: bool = True
    access_controlled: bool = True
    audit_logged: bool = True
    offline_backups_encrypted: bool = True
    raw_data_never_public: bool = True

    def violations(self) -> tuple[str, ...]:
        """Descriptions of every policy requirement not met."""
        problems: list[str] = []
        if not self.encrypted_at_rest:
            problems.append("data is not encrypted at rest")
        if not self.access_controlled:
            problems.append("no access control restricts who can read")
        if not self.audit_logged:
            problems.append("access is not audit-logged")
        if not self.offline_backups_encrypted:
            problems.append("backups are not encrypted")
        if not self.raw_data_never_public:
            problems.append(
                "raw data could become public (the paper: the raw "
                "dataset should not be shared publicly)"
            )
        return tuple(problems)

    @property
    def conformant(self) -> bool:
        return not self.violations()


def _empty_xor_guard() -> None:  # pragma: no cover - documentation
    """``int.from_bytes(b"")`` is 0 and ``(0).to_bytes(0)`` is empty,
    so :func:`_xor` handles zero-length plaintexts without a branch."""
