"""Safeguard toolkit: secure storage, access control, retention,
controlled sharing (§5.2 of the paper, made operational)."""

from .access import (
    AccessController,
    Action,
    AuditLog,
    AuditRecord,
    Grant,
)
from .escrow import Share, combine_shares, split_secret
from .notification import (
    AccessSaleService,
    BreachNotificationService,
    BreachRecord,
    password_range_query,
)
from .retention import (
    DataInventory,
    Holding,
    RetentionPolicy,
    Sensitivity,
)
from .sharing import (
    AcceptableUsePolicy,
    SharingAgreement,
    SharingMode,
    SharingRegistry,
    VettingProcess,
    VettingStatus,
)
from .storage import SecureContainer, StoragePolicy, derive_key

__all__ = [
    "AcceptableUsePolicy",
    "AccessController",
    "AccessSaleService",
    "Action",
    "AuditLog",
    "AuditRecord",
    "BreachNotificationService",
    "BreachRecord",
    "DataInventory",
    "Grant",
    "Holding",
    "RetentionPolicy",
    "SecureContainer",
    "Sensitivity",
    "Share",
    "SharingAgreement",
    "SharingMode",
    "SharingRegistry",
    "StoragePolicy",
    "VettingProcess",
    "VettingStatus",
    "combine_shares",
    "derive_key",
    "password_range_query",
    "split_secret",
]
