"""Streaming safeguard pipeline (§4.4/§6.4 applied operationally).

The paper insists safeguards be applied to *entire* datasets, not
demonstrated on samples. This package is the operational layer that
makes that tractable: it streams any ``datasets`` generator output
(or plain record iterator) through configurable safeguard stages —
prefix-preserving IP anonymization, keyed pseudonymisation,
free-text scrubbing, secure-container sealing — over fixed-size
chunks, optionally fanned out across a ``concurrent.futures``
process pool, with ordered merge and per-stage throughput metrics.

Every stage is a deterministic function of its configuration and its
chunk, so worker count and chunk arrival order never change the
output: a parallel run is byte-identical to a serial one. The same
holds for the audit trail: workers capture per-chunk telemetry
shards (see :mod:`repro.observability.worker`) that the coordinator
replays in chunk order, so a parallel run chains the same events as
a serial one. Stage errors surface as :class:`StageFailure` with the
stage name and chunk index attached. See ``docs/performance.md`` for
the architecture and the cache design of the hot paths this drives.
"""

from .core import PipelineResult, SafeguardPipeline
from .stages import (
    STAGE_NAMES,
    AnonymizeIPsSpec,
    PseudonymizeSpec,
    ScrubTextSpec,
    SealSpec,
    StageFailure,
    default_stages,
)

__all__ = [
    "AnonymizeIPsSpec",
    "PipelineResult",
    "PseudonymizeSpec",
    "STAGE_NAMES",
    "SafeguardPipeline",
    "ScrubTextSpec",
    "SealSpec",
    "StageFailure",
    "default_stages",
]
