"""Pipeline stages: picklable specs + the runners they build.

A stage comes in two halves:

* a **spec** — a small frozen dataclass holding only primitive
  configuration (keys, field names, sizes). Specs are hashable and
  picklable, which is what lets the pipeline ship the *same* stage
  configuration to every worker process and memoise built runners
  per worker (see ``core._pool_apply``);
* a **runner** — the spec's :meth:`~StageSpec.build` product holding
  live state (PRF protos, caches, compiled regexes). Runners stay
  resident for a worker's lifetime so their caches warm up across
  chunks.

Every runner implements ``apply(chunk, index) -> (chunk, artifacts,
stats)``: the transformed record chunk, any sealed-blob artifacts
produced, and a flat dict of numeric counters that the pipeline sums
across chunks and workers. All stages are deterministic functions of
(spec, chunk) — never of worker count, chunk arrival order or cache
state — which is what makes parallel output byte-identical to
serial.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Protocol

from ..anonymization import IPAnonymizer, Pseudonymizer, TextScrubber
from ..anonymization.ip import DEFAULT_CACHE_SIZE
from ..errors import SafeguardError
from ..safeguards.storage import SecureContainer

__all__ = [
    "AnonymizeIPsSpec",
    "PseudonymizeSpec",
    "STAGE_NAMES",
    "ScrubTextSpec",
    "SealSpec",
    "StageFailure",
    "StageRunner",
    "StageSpec",
    "default_stages",
]

#: CLI stage-selection names, in canonical application order.
STAGE_NAMES = ("anonymize", "pseudonymize", "scrub", "seal")


class StageFailure(SafeguardError):
    """A stage raised while processing one chunk.

    Carries the stage name and 0-based chunk index so a failure
    inside a ``ProcessPoolExecutor`` worker surfaces *where* it
    happened instead of a bare remote traceback, and so the
    coordinator can emit a localized ``pipeline/chunk-failed`` audit
    event before re-raising. ``__reduce__`` keeps the structured
    fields intact across the process-pool pickling boundary.
    """

    def __init__(
        self, stage: str, chunk_index: int, cause: str
    ) -> None:
        super().__init__(
            f"stage {stage!r} failed on chunk {chunk_index}: {cause}"
        )
        self.stage = stage
        self.chunk_index = chunk_index
        self.cause = cause

    def __reduce__(self):
        """Pickle by field so workers re-raise the same structure."""
        return (
            StageFailure,
            (self.stage, self.chunk_index, self.cause),
        )


class StageRunner(Protocol):
    """Structural type for built stages (see module docstring)."""

    def apply(
        self, chunk: list[dict], index: int
    ) -> tuple[list[dict], list[bytes], dict]:
        """Transform one chunk; return (chunk, artifacts, stats)."""


class StageSpec(Protocol):
    """Structural type for stage configuration dataclasses."""

    name: str

    def build(self) -> StageRunner:
        """Construct the live runner for this configuration."""


@dataclasses.dataclass(frozen=True)
class AnonymizeIPsSpec:
    """Prefix-preserving anonymization of IP-bearing record fields.

    Fields are rewritten in place via
    :meth:`~repro.anonymization.ip.IPAnonymizer.anonymize_many`, which
    sorts the chunk's addresses for PRF-cache locality; records
    missing a field (or holding a non-string) pass through untouched.
    """

    key: bytes
    fields: tuple[str, ...] = ("last_login_ip", "target_ip")
    cache_size: int = DEFAULT_CACHE_SIZE
    name = "anonymize"

    def build(self) -> _AnonymizeIPsRunner:
        """Construct the live runner for this configuration."""
        return _AnonymizeIPsRunner(self)


class _AnonymizeIPsRunner:
    def __init__(self, spec: AnonymizeIPsSpec) -> None:
        self._fields = spec.fields
        self._anonymizer = IPAnonymizer(
            spec.key, cache_size=spec.cache_size
        )

    def apply(
        self, chunk: list[dict], index: int
    ) -> tuple[list[dict], list[bytes], dict]:
        """Batch-anonymize every IP field present in the chunk."""
        anonymizer = self._anonymizer
        before = anonymizer.cache_info()
        locations: list[tuple[dict, str]] = []
        addresses: list[str] = []
        for record in chunk:
            for field in self._fields:
                value = record.get(field)
                if isinstance(value, str) and value:
                    locations.append((record, field))
                    addresses.append(value)
        if addresses:
            mapped = anonymizer.anonymize_many(addresses)
            for (record, field), replacement in zip(locations, mapped):
                record[field] = replacement
        after = anonymizer.cache_info()
        stats = {
            "addresses": len(addresses),
            "cache_hits": after.hits - before.hits,
            "cache_misses": after.misses - before.misses,
            "cache_evictions": after.evictions - before.evictions,
            "cache_size": after.size,
            "cache_maxsize": after.maxsize,
        }
        return chunk, [], stats


@dataclasses.dataclass(frozen=True)
class PseudonymizeSpec:
    """Keyed pseudonymisation of account-identifier fields.

    ``email_fields`` go through
    :meth:`~repro.anonymization.identifiers.Pseudonymizer.email`
    (local part replaced, domain neutralised); ``id_fields`` through
    :meth:`~repro.anonymization.identifiers.Pseudonymizer.pseudonym`
    with the field name as the HMAC domain, so a username and an
    email sharing text never collide.
    """

    key: bytes
    email_fields: tuple[str, ...] = ("email",)
    id_fields: tuple[str, ...] = ("username",)
    name = "pseudonymize"

    def build(self) -> _PseudonymizeRunner:
        """Construct the live runner for this configuration."""
        return _PseudonymizeRunner(self)


class _PseudonymizeRunner:
    def __init__(self, spec: PseudonymizeSpec) -> None:
        self._email_fields = spec.email_fields
        self._id_fields = spec.id_fields
        self._pseudonymizer = Pseudonymizer(spec.key)

    def apply(
        self, chunk: list[dict], index: int
    ) -> tuple[list[dict], list[bytes], dict]:
        """Replace identifier fields with keyed pseudonyms."""
        pseudonymizer = self._pseudonymizer
        replaced = 0
        for record in chunk:
            for field in self._email_fields:
                value = record.get(field)
                if isinstance(value, str) and "@" in value:
                    record[field] = pseudonymizer.email(value)
                    replaced += 1
            for field in self._id_fields:
                value = record.get(field)
                if isinstance(value, str) and value:
                    record[field] = pseudonymizer.pseudonym(
                        value, domain=field
                    )
                    replaced += 1
        return chunk, [], {"identifiers": replaced}


@dataclasses.dataclass(frozen=True)
class ScrubTextSpec:
    """Scrub free-text fields with the single-pass
    :class:`~repro.anonymization.scrub.TextScrubber`."""

    fields: tuple[str, ...] = ("text", "security_question")
    kinds: tuple[str, ...] = TextScrubber.KINDS
    name = "scrub"

    def build(self) -> _ScrubTextRunner:
        """Construct the live runner for this configuration."""
        return _ScrubTextRunner(self)


class _ScrubTextRunner:
    def __init__(self, spec: ScrubTextSpec) -> None:
        self._fields = spec.fields
        self._scrubber = TextScrubber(kinds=spec.kinds)

    def apply(
        self, chunk: list[dict], index: int
    ) -> tuple[list[dict], list[bytes], dict]:
        """Redact identifiers found in the chunk's text fields."""
        scrub = self._scrubber.scrub
        texts = 0
        redactions = 0
        for record in chunk:
            for field in self._fields:
                value = record.get(field)
                if isinstance(value, str) and value:
                    texts += 1
                    result = scrub(value)
                    if result.matches:
                        record[field] = result.text
                        redactions += len(result.matches)
        return chunk, [], {"texts": texts, "redactions": redactions}


@dataclasses.dataclass(frozen=True)
class SealSpec:
    """Seal each chunk into a :class:`SecureContainer` artifact.

    The chunk is serialised to canonical JSON and sealed with a
    **content-derived** salt and nonce (keyed BLAKE2b of the
    plaintext, SIV-style): a fixed salt per passphrase keeps the
    PBKDF2 subkey derivation memoised across chunks, and the nonce is
    unique per distinct chunk content. Sealing is therefore a pure
    function of (passphrase, chunk) — equal chunks seal to equal
    bytes in serial and parallel runs alike — at the cost of
    revealing when two chunks are identical, which is the right
    trade for a reproducible research pipeline.

    Records pass through unchanged; the sealed blob is emitted as the
    chunk's artifact.
    """

    passphrase: str
    name = "seal"

    def build(self) -> _SealRunner:
        """Construct the live runner for this configuration."""
        return _SealRunner(self)


class _SealRunner:
    def __init__(self, spec: SealSpec) -> None:
        if not spec.passphrase:
            raise SafeguardError("passphrase must be non-empty")
        self._container = SecureContainer(spec.passphrase)
        derivation_key = hashlib.sha256(
            b"repro-pipeline-seal\x00"
            + spec.passphrase.encode("utf-8")
        ).digest()
        self._salt = hashlib.blake2b(
            b"salt", key=derivation_key, digest_size=16
        ).digest()
        self._nonce_proto = hashlib.blake2b(
            key=derivation_key, digest_size=16
        )

    def apply(
        self, chunk: list[dict], index: int
    ) -> tuple[list[dict], list[bytes], dict]:
        """Seal the chunk; emit the container as an artifact."""
        plaintext = json.dumps(
            chunk, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        nonce_prf = self._nonce_proto.copy()
        nonce_prf.update(plaintext)
        sealed = self._container.seal(
            plaintext, salt=self._salt, nonce=nonce_prf.digest()
        )
        return (
            chunk,
            [sealed],
            {
                "plaintext_bytes": len(plaintext),
                "sealed_bytes": len(sealed),
            },
        )


def default_stages(
    *,
    anonymize_key: bytes,
    pseudonymize_key: bytes,
    seal_passphrase: str,
    names: tuple[str, ...] = STAGE_NAMES,
) -> tuple[StageSpec, ...]:
    """The canonical generate → anonymize → scrub → seal stage stack.

    ``names`` selects a subset (order is always canonical regardless
    of the order given). Unknown names raise, matching the CLI's
    ``--stages`` contract.
    """
    unknown = set(names) - set(STAGE_NAMES)
    if unknown:
        raise SafeguardError(
            f"unknown stage name(s): {', '.join(sorted(unknown))}"
        )
    specs: list[StageSpec] = []
    if "anonymize" in names:
        specs.append(AnonymizeIPsSpec(key=anonymize_key))
    if "pseudonymize" in names:
        specs.append(PseudonymizeSpec(key=pseudonymize_key))
    if "scrub" in names:
        specs.append(ScrubTextSpec())
    if "seal" in names:
        specs.append(SealSpec(passphrase=seal_passphrase))
    return tuple(specs)
