"""Pipeline orchestration: chunking, worker fan-out, ordered merge.

:class:`SafeguardPipeline` consumes any record source — a
``datasets`` generator's ``iter_records()`` chunks or a plain
iterator of record dicts — re-chunks it to a fixed ``chunk_size``,
runs every stage over each chunk, and merges results **in chunk
order**. With ``workers <= 1`` everything runs inline with one
persistent set of stage runners (their caches warm across chunks);
with more workers, chunks fan out to a ``concurrent.futures``
process pool and are merged back in submission order, so the
concatenated output is byte-identical to a serial run (stages are
deterministic functions of their spec and chunk — see
:mod:`repro.pipeline.stages`).

Observability: each run accumulates per-stage counters, gauges and
timing histograms in a private
:class:`~repro.observability.metrics.MetricsRegistry` (position- and
name-keyed, e.g. ``stage.00.anonymize.cache_misses``), from which the
JSON metrics report is assembled; when a process-wide observer is
installed the run registry is folded into it and the run is bracketed
by ``pipeline/run-started`` and ``pipeline/run-finished`` audit
events, with one ``pipeline/stage-applied`` event and one tracing
span per stage per chunk. In parallel mode workers run under a
per-chunk :class:`~repro.observability.worker.TelemetryShard`
capture observer; each chunk result ships its shard back and the
coordinator replays shards **in chunk order** (events re-sealed by
the parent trail, spans absorbed, metric snapshots merged), so the
coordinator stays the chain's single writer and ``workers=N``
produces the same audit chain content as ``workers=1``. A stage
exception anywhere surfaces as
:class:`~repro.pipeline.stages.StageFailure` naming the stage and
chunk, after a ``pipeline/chunk-failed`` audit event. Timing never
feeds back into the data path, so observability cannot perturb
determinism: per-stage "seconds" in parallel mode is aggregate
worker time (it can exceed wall-clock elapsed), counters are
summed, and cache-occupancy gauges merge by maximum.
"""

from __future__ import annotations

import dataclasses
import json
import time
from collections import deque
from collections.abc import Iterable, Iterator
from concurrent.futures import ProcessPoolExecutor

from ..datasets.common import chunked
from ..errors import SafeguardError
from ..observability import (
    MetricsRegistry,
    audit_event,
    flight_recorder,
    get_observer,
)
from ..observability import metrics as global_metrics
from ..observability import tracer
from ..observability.worker import (
    TelemetryShard,
    WorkerTelemetry,
    replay_shard,
)
from .stages import StageFailure, StageRunner, StageSpec

__all__ = ["PipelineResult", "SafeguardPipeline"]

#: Counter keys that are point-in-time gauges, merged by max not sum.
_GAUGE_KEYS = frozenset({"cache_size", "cache_maxsize"})

#: Built runners per spec tuple, one entry per (worker) process —
#: keeps stage caches resident for the lifetime of the pool.
_RUNNER_CACHE: dict[tuple[StageSpec, ...], tuple[StageRunner, ...]] = {}


def _runners_for(
    specs: tuple[StageSpec, ...]
) -> tuple[StageRunner, ...]:
    """The process-local persistent runners for *specs*."""
    runners = _RUNNER_CACHE.get(specs)
    if runners is None:
        runners = tuple(spec.build() for spec in specs)
        _RUNNER_CACHE[specs] = runners
    return runners


def _apply_chunk(
    runners: tuple[StageRunner, ...],
    names: tuple[str, ...],
    chunk: list[dict],
    index: int,
) -> tuple[list[dict], list[bytes], list[dict]]:
    """Run every stage over one chunk, timing each stage.

    Each stage runs inside a ``stage.<name>`` tracing span and emits
    one ``pipeline/stage-applied`` audit event whose detail is
    deterministic (record and artifact counts only — never timings
    or cache state, so the chain content is invariant under worker
    count). With the disabled default observer both the span and the
    event cost a few attribute lookups and nothing else; in telemetry
    workers they land in the chunk-local shard.

    A stage exception is wrapped as :class:`StageFailure` carrying
    the stage name and chunk index, so failures inside a process
    pool surface their location instead of a bare remote traceback.
    """
    artifacts: list[bytes] = []
    stage_stats: list[dict] = []
    trace = tracer()
    for runner, name in zip(runners, names):
        with trace.span(f"stage.{name}"):
            started = time.perf_counter()
            try:
                chunk, new_artifacts, stats = runner.apply(
                    chunk, index
                )
            except StageFailure:
                raise
            except Exception as exc:
                raise StageFailure(name, index, str(exc)) from exc
            elapsed = time.perf_counter() - started
        audit_event(
            "pipeline",
            "stage-applied",
            subject=name,
            chunk=index,
            records=len(chunk),
            artifacts=len(new_artifacts),
        )
        artifacts.extend(new_artifacts)
        stats = dict(stats)
        stats["seconds"] = elapsed
        stage_stats.append(stats)
    return chunk, artifacts, stage_stats


def _pool_apply(
    specs: tuple[StageSpec, ...],
    chunk: list[dict],
    index: int,
    telemetry: bool = False,
) -> tuple[
    list[dict], list[bytes], list[dict], WorkerTelemetry | None
]:
    """Worker-side entry point (top-level so it pickles).

    With *telemetry* (the coordinator runs an enabled observer), the
    chunk executes under a :class:`TelemetryShard` capture observer
    and the packed shard ships back with the result; otherwise the
    worker keeps its disabled default observer and ships ``None``.
    """
    names = tuple(spec.name for spec in specs)
    runners = _runners_for(specs)
    if not telemetry:
        return (*_apply_chunk(runners, names, chunk, index), None)
    with TelemetryShard() as shard:
        chunk, artifacts, stage_stats = _apply_chunk(
            runners, names, chunk, index
        )
    return chunk, artifacts, stage_stats, shard.telemetry()


def _flatten(
    source: Iterable[dict] | Iterable[list[dict]],
) -> Iterator[dict]:
    """Accept records or pre-chunked records; yield flat records."""
    for item in source:
        if isinstance(item, dict):
            yield item
        else:
            yield from item


@dataclasses.dataclass
class PipelineResult:
    """Everything a pipeline run produced.

    ``records`` are the transformed records in input order;
    ``artifacts`` the sealed containers in chunk order (empty unless
    a seal stage ran); ``metrics`` the JSON-serialisable per-stage
    throughput report.
    """

    records: list[dict]
    artifacts: list[bytes]
    metrics: dict

    def metrics_json(self, indent: int | None = 2) -> str:
        """The metrics dict rendered as JSON (the CLI's output)."""
        return json.dumps(self.metrics, indent=indent, sort_keys=True)


class SafeguardPipeline:
    """Chunked, optionally parallel safeguard application.

    ``stages`` is an ordered tuple of specs from
    :mod:`repro.pipeline.stages`; ``workers`` selects inline
    execution (``1``) or a process pool; ``chunk_size`` fixes the
    fan-out unit. Output is invariant under both knobs — they trade
    memory and parallelism against overhead, never correctness.
    """

    def __init__(
        self,
        stages: tuple[StageSpec, ...] | list[StageSpec],
        *,
        workers: int = 1,
        chunk_size: int = 1024,
    ) -> None:
        if not stages:
            raise SafeguardError("pipeline needs at least one stage")
        if workers < 1:
            raise SafeguardError("workers must be at least 1")
        if chunk_size < 1:
            raise SafeguardError("chunk_size must be at least 1")
        self._specs = tuple(stages)
        self._workers = workers
        self._chunk_size = chunk_size

    @property
    def specs(self) -> tuple[StageSpec, ...]:
        """The configured stage specs, in application order."""
        return self._specs

    def _stage_prefix(self, position: int) -> str:
        """The registry key prefix for the stage at *position*."""
        return f"stage.{position:02d}.{self._specs[position].name}."

    def run(
        self, source: Iterable[dict] | Iterable[list[dict]]
    ) -> PipelineResult:
        """Stream *source* through every stage; merge in order.

        Input records are never mutated — stages work on copies (the
        pickling boundary provides this in parallel mode; the serial
        path copies explicitly to match), so the same source list can
        be run through several pipelines.
        """
        stage_names = [spec.name for spec in self._specs]
        audit_event(
            "pipeline",
            "run-started",
            subject=",".join(stage_names),
            workers=self._workers,
            chunk_size=self._chunk_size,
        )
        chunks = chunked(_flatten(source), self._chunk_size)
        records: list[dict] = []
        artifacts: list[bytes] = []
        registry = MetricsRegistry()
        chunk_count = 0
        started = time.perf_counter()
        try:
            with tracer().span("pipeline.run"):
                if self._workers == 1:
                    outcomes = self._run_serial(chunks)
                else:
                    outcomes = self._run_parallel(chunks)
                for chunk, chunk_artifacts, stage_stats, shard in (
                    outcomes
                ):
                    if shard is not None:
                        replay_shard(shard)
                    chunk_count += 1
                    records.extend(chunk)
                    artifacts.extend(chunk_artifacts)
                    self._record_chunk(registry, stage_stats)
        except StageFailure as failure:
            audit_event(
                "pipeline",
                "chunk-failed",
                subject=failure.stage,
                chunk=failure.chunk_index,
                error=failure.cause,
            )
            recorder = flight_recorder()
            if recorder is not None:
                # After the chunk-failed event so the ring's last
                # frame names the failing stage and chunk.
                recorder.incident(
                    "stage-failure",
                    reason=failure.cause,
                    stage=failure.stage,
                    chunk=failure.chunk_index,
                )
            raise
        elapsed = time.perf_counter() - started
        registry.counter("pipeline.records").inc(len(records))
        registry.counter("pipeline.chunks").inc(chunk_count)
        registry.histogram("pipeline.run.seconds").observe(elapsed)
        process_registry = global_metrics()
        if process_registry.enabled:
            process_registry.merge(registry.snapshot())
        audit_event(
            "pipeline",
            "run-finished",
            subject=",".join(stage_names),
            records=len(records),
            chunks=chunk_count,
            artifacts=len(artifacts),
        )
        return PipelineResult(
            records=records,
            artifacts=artifacts,
            metrics=self._metrics(
                len(records), chunk_count, elapsed, registry
            ),
        )

    def _record_chunk(
        self, registry: MetricsRegistry, stage_stats: list[dict]
    ) -> None:
        """Fold one chunk's per-stage stats into the run registry."""
        for position, stats in enumerate(stage_stats):
            prefix = self._stage_prefix(position)
            for key, value in stats.items():
                if key == "seconds":
                    registry.histogram(prefix + key).observe(value)
                elif key in _GAUGE_KEYS:
                    registry.gauge(prefix + key).set_max(value)
                else:
                    registry.counter(prefix + key).inc(value)

    def _run_serial(
        self, chunks: Iterator[list[dict]]
    ) -> Iterator[
        tuple[list[dict], list[bytes], list[dict], None]
    ]:
        """Inline execution with one persistent runner set.

        Audit events and spans emit straight into the installed
        observer as each chunk processes, so no shard is shipped
        (the fourth tuple slot is always ``None``).
        """
        runners = tuple(spec.build() for spec in self._specs)
        names = tuple(spec.name for spec in self._specs)
        for index, chunk in enumerate(chunks):
            copies = [dict(record) for record in chunk]
            yield (*_apply_chunk(runners, names, copies, index), None)

    def _run_parallel(
        self, chunks: Iterator[list[dict]]
    ) -> Iterator[
        tuple[
            list[dict],
            list[bytes],
            list[dict],
            WorkerTelemetry | None,
        ]
    ]:
        """Process-pool fan-out with ordered merge.

        Futures are drained strictly in submission order (a bounded
        deque keeps at most ``4 × workers`` chunks in flight), so the
        merged stream preserves chunk order by construction — and so
        worker telemetry shards replay into the parent trail in the
        same order a serial run would have emitted their events.
        """
        window = self._workers * 4
        telemetry = get_observer().enabled
        # Build the runners in the parent before the pool exists: on
        # fork platforms every worker inherits the populated
        # _RUNNER_CACHE, so one-time setup cost (the seal stage's
        # PBKDF2 key stretch, PRF protos) is paid once instead of
        # once per worker. On spawn platforms workers simply rebuild.
        _runners_for(self._specs)
        with ProcessPoolExecutor(
            max_workers=self._workers
        ) as pool:
            pending: deque = deque()
            for index, chunk in enumerate(chunks):
                pending.append(
                    pool.submit(
                        _pool_apply,
                        self._specs,
                        chunk,
                        index,
                        telemetry,
                    )
                )
                if len(pending) >= window:
                    yield pending.popleft().result()
            while pending:
                yield pending.popleft().result()

    def _metrics(
        self,
        record_count: int,
        chunk_count: int,
        elapsed: float,
        registry: MetricsRegistry,
    ) -> dict:
        """Assemble the JSON metrics report from the run registry."""
        snap = registry.snapshot()
        stages = []
        for position, spec in enumerate(self._specs):
            prefix = self._stage_prefix(position)
            stats: dict = {}
            for key, value in snap["counters"].items():
                if key.startswith(prefix):
                    stats[key[len(prefix):]] = value
            for key, value in snap["gauges"].items():
                if key.startswith(prefix):
                    stats[key[len(prefix):]] = value
            seconds = snap["histograms"].get(
                prefix + "seconds", {}
            ).get("total", 0.0)
            stage = {
                "name": spec.name,
                "records": record_count,
                "records_per_second": (
                    round(record_count / seconds, 2) if seconds else 0.0
                ),
                "seconds": round(seconds, 6),
            }
            for key, value in sorted(stats.items()):
                stage[key] = (
                    round(value, 6) if isinstance(value, float) else value
                )
            stages.append(stage)
        return {
            "records": record_count,
            "chunks": chunk_count,
            "chunk_size": self._chunk_size,
            "workers": self._workers,
            "elapsed_seconds": round(elapsed, 6),
            "records_per_second": (
                round(record_count / elapsed, 2) if elapsed else 0.0
            ),
            "stages": stages,
        }
