"""Anonymization primitives: prefix-preserving IPs, pseudonyms, text
scrubbing and k-anonymity risk estimation."""

from .identifiers import Pseudonymizer, TokenMapper
from .ip import CacheStats, IPAnonymizer
from .kanonymity import (
    GeneralizationResult,
    dimensionality_profile,
    generalize,
    kanonymity,
    uniqueness_rate,
)
from .scrub import ScrubMatch, ScrubResult, TextScrubber, luhn_valid

__all__ = [
    "CacheStats",
    "GeneralizationResult",
    "IPAnonymizer",
    "Pseudonymizer",
    "ScrubMatch",
    "ScrubResult",
    "TextScrubber",
    "TokenMapper",
    "dimensionality_profile",
    "generalize",
    "kanonymity",
    "luhn_valid",
    "uniqueness_rate",
]
