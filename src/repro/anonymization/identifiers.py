"""Keyed pseudonymisation of identifiers (emails, usernames, ids).

Das et al. [24] protected privacy "by only working with hashed email
addresses"; this module provides that safeguard done properly: a keyed
HMAC (so pseudonyms cannot be brute-forced from the public email
corpus the way bare hashes can) plus a consistent-token mapper that
produces readable placeholder names for reports.
"""

from __future__ import annotations

import hashlib
import hmac

from ..errors import AnonymizationError

__all__ = ["Pseudonymizer", "TokenMapper"]


class Pseudonymizer:
    """Keyed HMAC-SHA256 pseudonymisation.

    Identical inputs map to identical pseudonyms under the same key,
    preserving joinability (e.g. password-reuse analysis across sites)
    without revealing the identifier. ``domain`` separates pseudonym
    namespaces so an email and a username that happen to share text do
    not collide.
    """

    def __init__(self, key: bytes, *, digest_bytes: int = 12) -> None:
        if len(key) < 16:
            raise AnonymizationError(
                "pseudonymisation key must be at least 16 bytes"
            )
        if not 4 <= digest_bytes <= 32:
            raise AnonymizationError(
                "digest_bytes must be between 4 and 32"
            )
        self._key = key
        self._digest_bytes = digest_bytes
        # Keying the HMAC state once and copy()-ing per call skips
        # the per-call key-block setup; the digests are identical.
        self._proto = hmac.new(key, None, hashlib.sha256)

    def pseudonym(self, identifier: str, domain: str = "id") -> str:
        """Return a stable hex pseudonym for *identifier*."""
        if not identifier:
            raise AnonymizationError("identifier must be non-empty")
        mac = self._proto.copy()
        mac.update(f"{domain}\x00{identifier}".encode("utf-8"))
        return mac.digest()[: self._digest_bytes].hex()

    def email(self, address: str, *, keep_domain: bool = False) -> str:
        """Pseudonymise an email address.

        With ``keep_domain=True`` the mail domain is preserved (useful
        for provider-level statistics) and only the local part is
        pseudonymised.
        """
        if "@" not in address:
            raise AnonymizationError(
                f"not an email address: {address!r}"
            )
        local, _, domain = address.rpartition("@")
        token = self.pseudonym(local + "@" + domain, domain="email")
        if keep_domain:
            return f"{token}@{domain}"
        return f"{token}@example.invalid"


class TokenMapper:
    """Consistent human-readable placeholders (user-1, user-2, ...).

    Useful in qualitative excerpts: the same forum member always
    appears as the same ``user-N`` while the real handle never leaves
    the enclave. The mapping is insertion-ordered and exportable for
    escrow.
    """

    def __init__(self, prefix: str = "user") -> None:
        if not prefix:
            raise AnonymizationError("prefix must be non-empty")
        self._prefix = prefix
        self._mapping: dict[str, str] = {}

    def token(self, identifier: str) -> str:
        """The stable placeholder token for *identifier*."""
        if not identifier:
            raise AnonymizationError("identifier must be non-empty")
        existing = self._mapping.get(identifier)
        if existing is not None:
            return existing
        token = f"{self._prefix}-{len(self._mapping) + 1}"
        self._mapping[identifier] = token
        return token

    def __len__(self) -> int:
        return len(self._mapping)

    def __contains__(self, identifier: str) -> bool:
        return identifier in self._mapping

    def export_escrow(self) -> dict[str, str]:
        """The token → identifier mapping, for sealed escrow only."""
        return {token: ident for ident, token in self._mapping.items()}
