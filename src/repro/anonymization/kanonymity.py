"""k-anonymity and re-identification risk estimation.

The paper warns (via Allman & Paxson and Partridge) "against relying
on the anonymisation of data since deanonymisation techniques are
often surprisingly powerful", and cites Aggarwal [3]: robust
anonymisation is difficult "particularly when it has high
dimensionality, as the anonymisation is likely to lead to an
unacceptable level of data loss".

This module measures, for tabular records:

* the k-anonymity of a quasi-identifier combination,
* the uniqueness rate (fraction of records in equivalence classes of
  size < k),
* the dimensionality effect: how k decays as quasi-identifier columns
  are added (the Aggarwal curse, experimentally checkable),
* generalisation (coarsening) with the induced information loss.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from collections.abc import Callable, Mapping, Sequence

from ..errors import AnonymizationError

__all__ = [
    "Record",
    "kanonymity",
    "uniqueness_rate",
    "dimensionality_profile",
    "generalize",
    "GeneralizationResult",
]

Record = Mapping[str, object]


def _equivalence_classes(
    records: Sequence[Record], quasi_identifiers: Sequence[str]
) -> Counter:
    if not records:
        raise AnonymizationError("no records supplied")
    if not quasi_identifiers:
        raise AnonymizationError("name at least one quasi-identifier")
    classes: Counter = Counter()
    for record in records:
        try:
            key = tuple(record[qi] for qi in quasi_identifiers)
        except KeyError as exc:
            raise AnonymizationError(
                f"record missing quasi-identifier {exc.args[0]!r}"
            ) from None
        classes[key] += 1
    return classes


def kanonymity(
    records: Sequence[Record], quasi_identifiers: Sequence[str]
) -> int:
    """The k of the dataset: the smallest equivalence-class size."""
    classes = _equivalence_classes(records, quasi_identifiers)
    return min(classes.values())


def uniqueness_rate(
    records: Sequence[Record],
    quasi_identifiers: Sequence[str],
    k: int = 2,
) -> float:
    """Fraction of records lying in classes smaller than *k*.

    With k=2 this is the classic "fraction of unique individuals" —
    the headline re-identification risk number.
    """
    if k < 1:
        raise AnonymizationError("k must be at least 1")
    classes = _equivalence_classes(records, quasi_identifiers)
    exposed = sum(
        count for count in classes.values() if count < k
    )
    return exposed / len(records)


def dimensionality_profile(
    records: Sequence[Record], quasi_identifiers: Sequence[str]
) -> list[tuple[int, int, float]]:
    """k and uniqueness as quasi-identifiers accumulate.

    Returns ``[(num_columns, k, uniqueness_rate), ...]`` for prefixes
    of *quasi_identifiers*. On real-shaped data k is non-increasing
    and uniqueness non-decreasing in the number of columns — the curse
    of dimensionality made measurable (property-tested in the suite).
    """
    profile: list[tuple[int, int, float]] = []
    for width in range(1, len(quasi_identifiers) + 1):
        columns = quasi_identifiers[:width]
        profile.append(
            (
                width,
                kanonymity(records, columns),
                uniqueness_rate(records, columns),
            )
        )
    return profile


@dataclasses.dataclass(frozen=True)
class GeneralizationResult:
    """Outcome of coarsening one column."""

    records: tuple[dict, ...]
    column: str
    k_before: int
    k_after: int
    distinct_before: int
    distinct_after: int

    @property
    def information_loss(self) -> float:
        """Fraction of distinct values collapsed by the coarsening."""
        if self.distinct_before == 0:
            return 0.0
        return 1.0 - self.distinct_after / self.distinct_before


def generalize(
    records: Sequence[Record],
    quasi_identifiers: Sequence[str],
    column: str,
    coarsen: Callable[[object], object],
) -> GeneralizationResult:
    """Coarsen *column* with *coarsen* and measure the k/loss trade.

    Example coarsenings: truncate postcodes, bucket ages into decades,
    mask the low octets of an IP address.
    """
    if column not in quasi_identifiers:
        raise AnonymizationError(
            f"{column!r} is not among the quasi-identifiers"
        )
    k_before = kanonymity(records, quasi_identifiers)
    distinct_before = len({r[column] for r in records})
    coarsened = tuple(
        {**dict(r), column: coarsen(r[column])} for r in records
    )
    k_after = kanonymity(coarsened, quasi_identifiers)
    distinct_after = len({r[column] for r in coarsened})
    return GeneralizationResult(
        records=coarsened,
        column=column,
        k_before=k_before,
        k_after=k_after,
        distinct_before=distinct_before,
        distinct_after=distinct_after,
    )
