"""Prefix-preserving IP address anonymization (Crypto-PAn style).

Network datasets of illicit origin (booter attack logs, telescope
captures, scan results) are full of IP addresses, which several
jurisdictions treat as personal data (§3). Prefix-preserving
anonymization keeps subnet structure analysable — two addresses
sharing a k-bit prefix map to outputs sharing a k-bit prefix — while
unlinking addresses from real hosts.

The construction follows Crypto-PAn: for each bit position *i*, the
output bit is the input bit XOR a pseudorandom function of the
*i*-bit input prefix. We use HMAC-SHA256 as the PRF (stdlib only).
The mapping is a deterministic bijection per key.
"""

from __future__ import annotations

import hashlib
import hmac
import ipaddress

from ..errors import AnonymizationError

__all__ = ["IPAnonymizer"]


class IPAnonymizer:
    """Keyed, deterministic, prefix-preserving anonymizer for IPv4/IPv6.

    The same key always produces the same mapping (so longitudinal
    analyses stay joinable) and different keys produce unrelated
    mappings (so two releases cannot be cross-linked).
    """

    def __init__(self, key: bytes) -> None:
        if len(key) < 16:
            raise AnonymizationError(
                "anonymization key must be at least 16 bytes"
            )
        self._key = key
        self._cache: dict[tuple[int, int], int] = {}

    def _prf_bit(self, prefix_bits: int, prefix: int) -> int:
        """Pseudorandom bit for the given input prefix."""
        cache_key = (prefix_bits, prefix)
        cached = self._cache.get(cache_key)
        if cached is not None:
            return cached
        message = prefix_bits.to_bytes(2, "big") + prefix.to_bytes(
            17, "big"
        )
        digest = hmac.new(self._key, message, hashlib.sha256).digest()
        bit = digest[0] & 1
        self._cache[cache_key] = bit
        return bit

    def _anonymize_int(self, value: int, width: int) -> int:
        result = 0
        for i in range(width):
            shift = width - 1 - i
            input_bit = (value >> shift) & 1
            prefix = value >> (width - i) if i else 0
            flip = self._prf_bit(i, prefix)
            result = (result << 1) | (input_bit ^ flip)
        return result

    def anonymize(self, address: str) -> str:
        """Anonymize one IPv4 or IPv6 address string."""
        try:
            parsed = ipaddress.ip_address(address)
        except ValueError as exc:
            raise AnonymizationError(
                f"invalid IP address {address!r}"
            ) from exc
        width = 32 if parsed.version == 4 else 128
        mapped = self._anonymize_int(int(parsed), width)
        if parsed.version == 4:
            return str(ipaddress.IPv4Address(mapped))
        return str(ipaddress.IPv6Address(mapped))

    def anonymize_many(self, addresses: list[str]) -> list[str]:
        return [self.anonymize(a) for a in addresses]

    @staticmethod
    def shared_prefix_length(a: str, b: str) -> int:
        """Length of the common bit prefix of two addresses."""
        pa = ipaddress.ip_address(a)
        pb = ipaddress.ip_address(b)
        if pa.version != pb.version:
            raise AnonymizationError(
                "cannot compare addresses of different versions"
            )
        width = 32 if pa.version == 4 else 128
        diff = int(pa) ^ int(pb)
        if diff == 0:
            return width
        return width - diff.bit_length()
