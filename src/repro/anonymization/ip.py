"""Prefix-preserving IP address anonymization (Crypto-PAn style).

Network datasets of illicit origin (booter attack logs, telescope
captures, scan results) are full of IP addresses, which several
jurisdictions treat as personal data (§3). Prefix-preserving
anonymization keeps subnet structure analysable — two addresses
sharing a k-bit prefix map to outputs sharing a k-bit prefix — while
unlinking addresses from real hosts.

The construction follows Crypto-PAn: for each bit position *i*, the
output bit is the input bit XOR a pseudorandom function of the
*i*-bit input prefix. We use keyed BLAKE2s as the PRF (stdlib only;
BLAKE2's keyed mode is a designed MAC/PRF and is several times
faster than HMAC-SHA256 per short message). The mapping is a
deterministic bijection per key.

The PRF is evaluated **once per byte of prefix depth**, not once
per bit: the 256-bit digest of an 8-bit-aligned prefix carries one
pseudorandom bit for every node of the full binary subtree spanning
the next eight depths (offset ``2^j - 1 + partial`` for the *j*
in-byte bits ``partial``; the subtree has ``2^0 + … + 2^7 = 255``
nodes, which fits the digest). Each flip therefore remains a pure
function of its exact *i*-bit prefix — two prefixes differing
anywhere index different digests or different subtree nodes — so
the classic Crypto-PAn prefix-preservation argument is unchanged
while the digest count per IPv4 address drops from 32 to 4.

Hot path design (the safeguard pipeline drives this at dump scale):

* per-byte-prefix subtree digests are memoised in a **bounded
  prefix cache** — a flattened prefix tree keyed by ``(depth,
  prefix)`` packed into one integer, so a multi-million-address
  corpus cannot grow it without limit. Eviction is amortised oldest-first: when the cache
  exceeds its bound it drops the oldest-inserted half in one sweep
  (a segmented-FIFO policy that approximates LRU for this workload
  without paying per-access recency bookkeeping — sorted batches
  touch prefixes in runs, so insertion age tracks recency closely);
* :meth:`IPAnonymizer.anonymize_many` sorts its batch by address
  value first, so addresses sharing subnets are processed
  consecutively and their shared-prefix PRF bits stay resident even
  in a small cache (keyed determinism means the output is identical
  for any processing order, so parallel pipeline workers produce
  byte-identical results to serial runs);
* the PRF state is built once and ``copy()``-ed per evaluation
  instead of re-keying, and IPv4 parsing/formatting bypasses
  :mod:`ipaddress` on the fast path.

:meth:`IPAnonymizer.cache_info` exposes hit/miss/eviction counters;
the pipeline metrics report them per stage.
"""

from __future__ import annotations

import dataclasses
import hashlib
import ipaddress
from collections.abc import Sequence
from itertools import islice

from ..errors import AnonymizationError

__all__ = ["CacheStats", "IPAnonymizer"]

#: Default bound on the PRF cache (entries, not bytes). 1 << 17
#: 32-byte subtree digests ≈ a few tens of MiB; sorted batch
#: processing keeps the hit rate near an unbounded cache even at
#: this size.
DEFAULT_CACHE_SIZE = 1 << 17

@dataclasses.dataclass(frozen=True)
class CacheStats:
    """Point-in-time counters for the per-prefix PRF cache."""

    hits: int
    misses: int
    evictions: int
    size: int
    maxsize: int

    @property
    def hit_rate(self) -> float:
        """Fraction of PRF lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict:
        """JSON-serialisable view (used by the pipeline metrics)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": self.size,
            "maxsize": self.maxsize,
            "hit_rate": round(self.hit_rate, 4),
        }


class IPAnonymizer:
    """Keyed, deterministic, prefix-preserving anonymizer for IPv4/IPv6.

    The same key always produces the same mapping (so longitudinal
    analyses stay joinable) and different keys produce unrelated
    mappings (so two releases cannot be cross-linked). ``cache_size``
    bounds the per-prefix PRF memo; eviction drops the
    oldest-inserted half in bulk when the bound is crossed (see the
    module docstring) and affects only speed, never output.
    """

    def __init__(
        self, key: bytes, *, cache_size: int = DEFAULT_CACHE_SIZE
    ) -> None:
        if len(key) < 16:
            raise AnonymizationError(
                "anonymization key must be at least 16 bytes"
            )
        if cache_size < 256:
            raise AnonymizationError(
                "cache_size must be at least 256 entries"
            )
        self._key = key
        # BLAKE2s keys are capped at 32 bytes; longer user keys are
        # folded through SHA-256 first (any >=16-byte key works).
        self._prf_proto = hashlib.blake2s(
            key=hashlib.sha256(key).digest()
        )
        self._cache: dict[int, int] = {}
        self._cache_size = cache_size
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # -- cache ----------------------------------------------------------
    def cache_info(self) -> CacheStats:
        """Current PRF-cache counters (bulk oldest-first eviction)."""
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            size=len(self._cache),
            maxsize=self._cache_size,
        )

    def cache_clear(self) -> None:
        """Drop every cached PRF bit and reset the counters."""
        self._cache.clear()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # -- core mapping ---------------------------------------------------
    def _anonymize_int(
        self,
        value: int,
        width: int,
        start: int = 0,
        prefix_result: int = 0,
    ) -> int:
        """Map one address integer; one PRF digest per byte of depth.

        ``start``/``prefix_result`` let the sorted batch path resume
        below an already-computed output prefix: when the previous
        address shares the first *start* bits (*start* must be a
        multiple of 8, matching the digest granularity), its first
        *start* output bits are reused verbatim (the construction
        makes them equal by definition) and only deeper byte blocks
        are evaluated.
        """
        cache = self._cache
        cache_get = cache.get
        copy = self._prf_proto.copy
        hits = misses = 0
        result = prefix_result
        # (depth, prefix) packed into one int: prefix < 2**depth, so
        # shifting the depth above the address width keeps keys
        # unique. The packed key doubles as the 17-byte PRF message,
        # so the encoding is injective. One digest per byte-aligned
        # prefix covers the next eight depths: the in-byte prefix
        # bits walk a 1-rooted heap index (node ``2**j + partial``
        # for the j-bit partial prefix), and ``node - 1`` selects the
        # flip bit out of the digest's 255 usable bits. See the
        # module docstring for why this preserves exact prefixes.
        for depth in range(start, width, 8):
            byte_prefix = value >> (width - depth) if depth else 0
            cache_key = (depth << width) | byte_prefix
            subtree = cache_get(cache_key)
            if subtree is None:
                misses += 1
                prf = copy()
                prf.update(cache_key.to_bytes(17, "big"))
                subtree = int.from_bytes(prf.digest(), "little")
                cache[cache_key] = subtree
            else:
                hits += 1
            input_byte = (value >> (width - depth - 8)) & 0xFF
            out_byte = 0
            node = 1
            for shift in (7, 6, 5, 4, 3, 2, 1, 0):
                bit = (input_byte >> shift) & 1
                out_byte = (
                    (out_byte << 1) | (bit ^ ((subtree >> (node - 1)) & 1))
                )
                node = (node << 1) | bit
            result = (result << 8) | out_byte
        self._hits += hits
        self._misses += misses
        # Bound the cache once per address, not per bit: overshoot is
        # at most ``width`` entries, and the bulk halving amortises
        # eviction to O(1) per miss without any per-hit bookkeeping.
        if len(cache) > self._cache_size:
            self._evict()
        return result

    def _evict(self) -> None:
        """Drop the oldest-inserted entries down to half capacity."""
        cache = self._cache
        drop = len(cache) - (self._cache_size >> 1)
        for key in list(islice(iter(cache), drop)):
            del cache[key]
        self._evictions += drop

    # -- public API -----------------------------------------------------
    def anonymize(self, address: str) -> str:
        """Anonymize one IPv4 or IPv6 address string."""
        value = _parse_ipv4(address)
        if value is not None:
            return _format_ipv4(self._anonymize_int(value, 32))
        try:
            parsed = ipaddress.ip_address(address)
        except ValueError as exc:
            raise AnonymizationError(
                f"invalid IP address {address!r}"
            ) from exc
        if parsed.version == 4:  # pragma: no cover - fast path above
            return _format_ipv4(self._anonymize_int(int(parsed), 32))
        return str(
            ipaddress.IPv6Address(self._anonymize_int(int(parsed), 128))
        )

    def anonymize_many(self, addresses: Sequence[str]) -> list[str]:
        """Anonymize a batch, sorted by prefix for cache locality.

        Addresses are processed in sorted integer order so shared
        subnet prefixes hit the bounded prefix cache instead of
        recomputing PRF digests; results come back in input order and
        are byte-identical to per-address :meth:`anonymize` calls.
        """
        parsed: list[tuple[int, int, int]] = []  # (version, value, idx)
        results: list[str] = [""] * len(addresses)
        for index, address in enumerate(addresses):
            value = _parse_ipv4(address)
            if value is not None:
                parsed.append((4, value, index))
                continue
            try:
                obj = ipaddress.ip_address(address)
            except ValueError as exc:
                raise AnonymizationError(
                    f"invalid IP address {address!r}"
                ) from exc
            parsed.append((obj.version, int(obj), index))
        parsed.sort()
        previous_version = 0
        previous_value = -1
        previous_mapped = -1
        previous_result = ""
        for version, value, index in parsed:
            if version == previous_version and value == previous_value:
                results[index] = previous_result
                continue
            width = 32 if version == 4 else 128
            if version == previous_version and previous_mapped >= 0:
                # Reuse the shared-prefix output bits of the sorted
                # predecessor, rounded down to digest (byte)
                # granularity; only deeper byte blocks are evaluated.
                diff = value ^ previous_value
                shared = (width - diff.bit_length()) & ~7
                mapped_int = self._anonymize_int(
                    value,
                    width,
                    shared,
                    previous_mapped >> (width - shared)
                    if shared
                    else 0,
                )
            else:
                mapped_int = self._anonymize_int(value, width)
            mapped = (
                _format_ipv4(mapped_int)
                if version == 4
                else str(ipaddress.IPv6Address(mapped_int))
            )
            results[index] = mapped
            previous_version = version
            previous_value = value
            previous_mapped = mapped_int
            previous_result = mapped
        return results

    @staticmethod
    def shared_prefix_length(a: str, b: str) -> int:
        """Length of the common bit prefix of two addresses."""
        pa = ipaddress.ip_address(a)
        pb = ipaddress.ip_address(b)
        if pa.version != pb.version:
            raise AnonymizationError(
                "cannot compare addresses of different versions"
            )
        width = 32 if pa.version == 4 else 128
        diff = int(pa) ^ int(pb)
        if diff == 0:
            return width
        return width - diff.bit_length()


def _parse_ipv4(address: str) -> int | None:
    """Fast dotted-quad parse; ``None`` if not a plain IPv4 string."""
    parts = address.split(".")
    if len(parts) != 4:
        return None
    value = 0
    for part in parts:
        if not part.isdigit() or len(part) > 3:
            return None
        if part != "0" and part[0] == "0":
            return None  # leading zeros are ambiguous; reject
        octet = int(part)
        if octet > 255:
            return None
        value = (value << 8) | octet
    return value


def _format_ipv4(value: int) -> str:
    return (
        f"{value >> 24}.{(value >> 16) & 255}."
        f"{(value >> 8) & 255}.{value & 255}"
    )
