"""Text scrubbing: find and redact identifiers in free text.

Leaked databases carry identifiers inside free text (tickets, private
messages, chat logs — §4.3.1 lists all of these). The scrubber finds
IPv4/IPv6 addresses, email addresses, phone-number-like strings and
credit-card numbers (validated with the Luhn checksum to limit false
positives) and replaces them with typed placeholders, reporting what
was found so redaction can be audited.

Hot path design: instead of five sequential ``finditer`` passes, the
scrubber runs **one compiled alternation** with named groups (one
group per identifier kind, ordered by claim priority: email, ipv4,
ipv6, card, phone), guarded by a cheap pre-filter — text with no
digit, ``@`` or ``:`` cannot contain any identifier and is returned
untouched without touching the big regex at all. Semantic validation
(``ipaddress`` for IPv6, Luhn for cards) happens outside the regex;
when it rejects a candidate the scanner backtracks one character so
lower-priority kinds still get their chance at the same position,
preserving the match kinds and audit reporting of the multi-pass
implementation.

Digit-run classification is deterministic: a candidate that passes
the Luhn checksum is always a ``card`` (even when it is shaped like a
phone number, and even when the card is embedded *inside* a larger
phone-shaped run), a run that fails Luhn is a ``phone`` if
phone-shaped, and an IPv4 address swallowed by a phone-shaped run is
recovered as ``ipv4`` — each span is claimed exactly once.
"""

from __future__ import annotations

import dataclasses
import re
from collections.abc import Callable, Iterator

__all__ = ["ScrubMatch", "ScrubResult", "TextScrubber", "luhn_valid"]

_IPV4 = re.compile(
    r"\b(?:(?:25[0-5]|2[0-4]\d|1\d\d|[1-9]?\d)\.){3}"
    r"(?:25[0-5]|2[0-4]\d|1\d\d|[1-9]?\d)\b"
)
# Permissive candidate run of hex and colons; each candidate is then
# validated with ipaddress so compressed (::) forms are matched
# without false positives.
_IPV6 = re.compile(
    r"(?<![0-9A-Fa-f:.])"
    r"(?:(?:[0-9A-Fa-f]{1,4})?(?::{1,2}[0-9A-Fa-f]{1,4}){1,7}:{0,2})"
    r"(?![0-9A-Fa-f:.])"
)
_EMAIL = re.compile(
    r"\b[A-Za-z0-9._%+-]+@[A-Za-z0-9.-]+\.[A-Za-z]{2,}\b"
)
_PHONE = re.compile(
    r"(?<![\w.])\+?\d[\d\s().-]{7,16}\d(?![\w.])"
)
_CARD = re.compile(r"\b\d(?:[ -]?\d){12,18}\b")

#: Card-separator cleanup, hoisted out of the :func:`luhn_valid` hot
#: loop (it runs once per digit-run candidate at dump scale).
_CARD_SEPARATORS = re.compile(r"[ -]")

#: Pre-filter: no digit, ``@`` or ``:`` means no pattern can match
#: (emails need ``@``, IPv6 needs ``:``, everything else needs a
#: digit), so the scrubber can skip clean prose in one cheap scan.
_QUICK = re.compile(r"[0-9@:]")

#: Claim priority; also the alternation order of the combined regex.
_PATTERNS: tuple[tuple[str, re.Pattern[str]], ...] = (
    ("email", _EMAIL),
    ("ipv4", _IPV4),
    ("ipv6", _IPV6),
    ("card", _CARD),
    ("phone", _PHONE),
)

#: Compiled alternation per enabled-kinds tuple (tiny, bounded set).
_COMBINED_CACHE: dict[tuple[str, ...], re.Pattern[str]] = {}


def _combined(kinds: tuple[str, ...]) -> re.Pattern[str]:
    """The single-alternation pattern for the enabled *kinds*."""
    pattern = _COMBINED_CACHE.get(kinds)
    if pattern is None:
        parts = [
            f"(?P<{kind}>{regex.pattern})"
            for kind, regex in _PATTERNS
            if kind in kinds
        ]
        pattern = re.compile("|".join(parts))
        _COMBINED_CACHE[kinds] = pattern
    return pattern


def luhn_valid(digits: str) -> bool:
    """Luhn checksum for candidate card numbers."""
    cleaned = _CARD_SEPARATORS.sub("", digits)
    if not cleaned.isdigit() or not 13 <= len(cleaned) <= 19:
        return False
    total = 0
    for index, char in enumerate(reversed(cleaned)):
        value = int(char)
        if index % 2 == 1:
            value *= 2
            if value > 9:
                value -= 9
        total += value
    return total % 10 == 0


def _search_luhn_card(segment: str) -> re.Match[str] | None:
    """First Luhn-valid card run in *segment*, overlap-tolerant."""
    position = 0
    while True:
        match = _CARD.search(segment, position)
        if match is None:
            return None
        if luhn_valid(match.group()):
            return match
        position = match.start() + 1


@dataclasses.dataclass(frozen=True)
class ScrubMatch:
    """One identifier found in the text."""

    kind: str
    start: int
    end: int
    original: str


@dataclasses.dataclass(frozen=True)
class ScrubResult:
    """Scrubbed text plus the audit trail of matches."""

    text: str
    matches: tuple[ScrubMatch, ...]

    def count(self, kind: str | None = None) -> int:
        if kind is None:
            return len(self.matches)
        return sum(1 for m in self.matches if m.kind == kind)

    @property
    def clean(self) -> bool:
        return not self.matches


class TextScrubber:
    """Find and replace identifiers in free text.

    ``replacer`` maps (kind, original) to the replacement string; by
    default a typed placeholder like ``[redacted-email]``. Pass a
    :class:`~repro.anonymization.identifiers.Pseudonymizer`-backed
    replacer to keep joinability instead of redacting.
    """

    KINDS = ("email", "ipv4", "ipv6", "card", "phone")

    def __init__(
        self,
        replacer: Callable[[str, str], str] | None = None,
        kinds: tuple[str, ...] | None = None,
    ) -> None:
        self._replacer = replacer or (
            lambda kind, original: f"[redacted-{kind}]"
        )
        self._kinds = kinds if kinds is not None else self.KINDS
        self._combined = _combined(
            tuple(k for k in self.KINDS if k in self._kinds)
        )

    def _resolve_digit_run(
        self, kind: str, start: int, end: int, candidate: str
    ) -> tuple[str, int, int, str] | None:
        """Deterministically classify a card/phone-shaped digit run.

        Returns the claimed (kind, start, end, original) or ``None``
        when nothing in the run qualifies. Rules, in order: a
        Luhn-valid run is a card; a Luhn-valid card embedded in a
        longer phone-shaped run is claimed as that card; an IPv4
        address swallowed by a phone-shaped run is claimed as ipv4;
        otherwise a phone-shaped run is a phone.
        """
        if luhn_valid(candidate):
            if "card" in self._kinds:
                return ("card", start, end, candidate)
            return None  # card-shaped but cards are disabled: drop
        if kind == "phone" or "phone" in self._kinds:
            if "card" in self._kinds:
                embedded = _search_luhn_card(candidate)
                if embedded is not None:
                    return (
                        "card",
                        start + embedded.start(),
                        start + embedded.end(),
                        embedded.group(),
                    )
            if "ipv4" in self._kinds:
                inner = _IPV4.search(candidate)
                if inner is not None:
                    return (
                        "ipv4",
                        start + inner.start(),
                        start + inner.end(),
                        inner.group(),
                    )
        if kind == "phone" and "phone" in self._kinds:
            return ("phone", start, end, candidate)
        return None

    def _find(self, text: str) -> list[ScrubMatch]:
        """Single-pass scan with the combined alternation."""
        matches: list[ScrubMatch] = []
        if not _QUICK.search(text):
            return matches
        search = self._combined.search
        position = 0
        while True:
            found = search(text, position)
            if found is None:
                break
            kind = found.lastgroup or ""
            start, end = found.span()
            candidate = found.group()
            claimed: tuple[str, int, int, str] | None
            if kind == "ipv6":
                claimed = (
                    (kind, start, end, candidate)
                    if _valid_ipv6(candidate)
                    else None
                )
            elif kind == "card":
                claimed = self._resolve_digit_run(
                    kind, start, end, candidate
                )
                if claimed is None and "phone" in self._kinds:
                    # The card alternative shadowed the phone one at
                    # this position; give phone its own anchored try.
                    shadowed = _PHONE.match(text, start)
                    if shadowed is not None:
                        claimed = self._resolve_digit_run(
                            "phone",
                            shadowed.start(),
                            shadowed.end(),
                            shadowed.group(),
                        )
            elif kind == "phone":
                claimed = self._resolve_digit_run(
                    kind, start, end, candidate
                )
            else:
                claimed = (kind, start, end, candidate)
            if claimed is None:
                # Rejected candidate: step one character so a lower
                # priority kind can still match inside this span.
                position = start + 1
                continue
            matches.append(ScrubMatch(*claimed))
            position = claimed[2] if claimed[2] > position else (
                position + 1
            )
        return matches

    def scrub(self, text: str) -> ScrubResult:
        """Replace all findable identifiers in *text*."""
        matches = self._find(text)
        if not matches:
            return ScrubResult(text=text, matches=())
        parts: list[str] = []
        cursor = 0
        for match in matches:
            parts.append(text[cursor : match.start])
            parts.append(self._replacer(match.kind, match.original))
            cursor = match.end
        parts.append(text[cursor:])
        return ScrubResult(text="".join(parts), matches=tuple(matches))

    def scrub_many(self, texts: Iterator[str] | list[str]) -> list[ScrubResult]:
        """Scrub a batch of texts (the pipeline's chunk entry point)."""
        scrub = self.scrub
        return [scrub(text) for text in texts]


def _looks_like_card(candidate: str) -> bool:
    return luhn_valid(candidate)


def _valid_ipv6(candidate: str) -> bool:
    import ipaddress

    if ":" not in candidate or candidate.count(":") < 2:
        return False
    try:
        return ipaddress.ip_address(candidate).version == 6
    except ValueError:
        return False
