"""Text scrubbing: find and redact identifiers in free text.

Leaked databases carry identifiers inside free text (tickets, private
messages, chat logs — §4.3.1 lists all of these). The scrubber finds
IPv4/IPv6 addresses, email addresses, phone-number-like strings and
credit-card numbers (validated with the Luhn checksum to limit false
positives) and replaces them with typed placeholders, reporting what
was found so redaction can be audited.
"""

from __future__ import annotations

import dataclasses
import re
from collections.abc import Callable

__all__ = ["ScrubMatch", "ScrubResult", "TextScrubber", "luhn_valid"]

_IPV4 = re.compile(
    r"\b(?:(?:25[0-5]|2[0-4]\d|1\d\d|[1-9]?\d)\.){3}"
    r"(?:25[0-5]|2[0-4]\d|1\d\d|[1-9]?\d)\b"
)
# Permissive candidate run of hex and colons; each candidate is then
# validated with ipaddress so compressed (::) forms are matched
# without false positives.
_IPV6 = re.compile(
    r"(?<![0-9A-Fa-f:.])"
    r"((?:[0-9A-Fa-f]{1,4})?(?::{1,2}[0-9A-Fa-f]{1,4}){1,7}:{0,2})"
    r"(?![0-9A-Fa-f:.])"
)
_EMAIL = re.compile(
    r"\b[A-Za-z0-9._%+-]+@[A-Za-z0-9.-]+\.[A-Za-z]{2,}\b"
)
_PHONE = re.compile(
    r"(?<![\w.])\+?\d[\d\s().-]{7,16}\d(?![\w.])"
)
_CARD = re.compile(r"\b\d(?:[ -]?\d){12,18}\b")


def luhn_valid(digits: str) -> bool:
    """Luhn checksum for candidate card numbers."""
    cleaned = re.sub(r"[ -]", "", digits)
    if not cleaned.isdigit() or not 13 <= len(cleaned) <= 19:
        return False
    total = 0
    for index, char in enumerate(reversed(cleaned)):
        value = int(char)
        if index % 2 == 1:
            value *= 2
            if value > 9:
                value -= 9
        total += value
    return total % 10 == 0


@dataclasses.dataclass(frozen=True)
class ScrubMatch:
    """One identifier found in the text."""

    kind: str
    start: int
    end: int
    original: str


@dataclasses.dataclass(frozen=True)
class ScrubResult:
    """Scrubbed text plus the audit trail of matches."""

    text: str
    matches: tuple[ScrubMatch, ...]

    def count(self, kind: str | None = None) -> int:
        if kind is None:
            return len(self.matches)
        return sum(1 for m in self.matches if m.kind == kind)

    @property
    def clean(self) -> bool:
        return not self.matches


class TextScrubber:
    """Find and replace identifiers in free text.

    ``replacer`` maps (kind, original) to the replacement string; by
    default a typed placeholder like ``[redacted-email]``. Pass a
    :class:`~repro.anonymization.identifiers.Pseudonymizer`-backed
    replacer to keep joinability instead of redacting.
    """

    KINDS = ("email", "ipv4", "ipv6", "card", "phone")

    def __init__(
        self,
        replacer: Callable[[str, str], str] | None = None,
        kinds: tuple[str, ...] | None = None,
    ) -> None:
        self._replacer = replacer or (
            lambda kind, original: f"[redacted-{kind}]"
        )
        self._kinds = kinds if kinds is not None else self.KINDS

    def _find(self, text: str) -> list[ScrubMatch]:
        matches: list[ScrubMatch] = []
        patterns: list[tuple[str, re.Pattern[str]]] = []
        # Email first so user@host is not half-eaten by phone regex;
        # cards before phones (both are digit runs, Luhn arbitrates).
        if "email" in self._kinds:
            patterns.append(("email", _EMAIL))
        if "ipv4" in self._kinds:
            patterns.append(("ipv4", _IPV4))
        if "ipv6" in self._kinds:
            patterns.append(("ipv6", _IPV6))
        if "card" in self._kinds:
            patterns.append(("card", _CARD))
        if "phone" in self._kinds:
            patterns.append(("phone", _PHONE))
        claimed: list[tuple[int, int]] = []

        def overlaps(start: int, end: int) -> bool:
            return any(
                start < c_end and end > c_start
                for c_start, c_end in claimed
            )

        for kind, pattern in patterns:
            for match in pattern.finditer(text):
                start, end = match.span()
                if overlaps(start, end):
                    continue
                candidate = match.group()
                if kind == "ipv6" and not _valid_ipv6(candidate):
                    continue
                if kind == "card" and not luhn_valid(candidate):
                    continue
                if kind == "phone" and _looks_like_card(candidate):
                    continue
                matches.append(
                    ScrubMatch(
                        kind=kind,
                        start=start,
                        end=end,
                        original=candidate,
                    )
                )
                claimed.append((start, end))
        matches.sort(key=lambda m: m.start)
        return matches

    def scrub(self, text: str) -> ScrubResult:
        """Replace all findable identifiers in *text*."""
        matches = self._find(text)
        parts: list[str] = []
        cursor = 0
        for match in matches:
            parts.append(text[cursor : match.start])
            parts.append(self._replacer(match.kind, match.original))
            cursor = match.end
        parts.append(text[cursor:])
        return ScrubResult(text="".join(parts), matches=tuple(matches))


def _looks_like_card(candidate: str) -> bool:
    return luhn_valid(candidate)


def _valid_ipv6(candidate: str) -> bool:
    import ipaddress

    if ":" not in candidate or candidate.count(":") < 2:
        return False
    try:
        return ipaddress.ip_address(candidate).version == 6
    except ValueError:
        return False
