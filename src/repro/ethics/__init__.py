"""Ethics engines: stakeholders, Menlo principles, risk-benefit grids,
justification critiques and the AoIR-style decision process."""

from .aoir import AOIR_QUESTIONS, DecisionProcess, Question
from .human_rights import (
    RIGHTS,
    Right,
    RightRisk,
    RightsContext,
    rights_at_risk,
)
from .interventions import (
    Dilemma,
    InterventionAssessment,
    InterventionOption,
    TAKEDOWN_DILEMMAS,
)
from .harms import (
    BENEFIT_ABBREVS,
    HARM_ABBREVS,
    BenefitInstance,
    HarmInstance,
    Likelihood,
    Severity,
)
from .justifications import (
    JUSTIFICATION_IDS,
    JustificationFacts,
    JustificationVerdict,
    evaluate_all_justifications,
    evaluate_justification,
)
from .menlo import (
    MENLO_QUESTIONS,
    FindingStatus,
    MenloEvaluation,
    MenloPrinciple,
    PrincipleFinding,
)
from .riskbenefit import PartyBalance, RiskBenefitGrid
from .stakeholders import (
    ConsentStatus,
    Stakeholder,
    StakeholderRegistry,
    StakeholderRole,
    default_stakeholders,
)

__all__ = [
    "AOIR_QUESTIONS",
    "BENEFIT_ABBREVS",
    "BenefitInstance",
    "ConsentStatus",
    "DecisionProcess",
    "Dilemma",
    "FindingStatus",
    "HARM_ABBREVS",
    "HarmInstance",
    "InterventionAssessment",
    "InterventionOption",
    "JUSTIFICATION_IDS",
    "JustificationFacts",
    "JustificationVerdict",
    "Likelihood",
    "MENLO_QUESTIONS",
    "MenloEvaluation",
    "MenloPrinciple",
    "PartyBalance",
    "PrincipleFinding",
    "Question",
    "RIGHTS",
    "Right",
    "RightRisk",
    "RightsContext",
    "RiskBenefitGrid",
    "Severity",
    "Stakeholder",
    "StakeholderRegistry",
    "StakeholderRole",
    "TAKEDOWN_DILEMMAS",
    "default_stakeholders",
    "evaluate_all_justifications",
    "evaluate_justification",
    "rights_at_risk",
]
