"""Executable critiques of the §5.1 justifications.

The paper lists five justifications researchers commonly give for
using data of illicit origin, and criticises each in italics. This
module turns those critiques into checkable rules: given the facts of
a project, :func:`evaluate_justification` says whether the
justification *as stated* carries weight, and what additional
conditions it depends on.
"""

from __future__ import annotations

import dataclasses

from ..errors import EthicsModelError

__all__ = [
    "JustificationFacts",
    "JustificationVerdict",
    "evaluate_justification",
    "evaluate_all_justifications",
    "JUSTIFICATION_IDS",
]

JUSTIFICATION_IDS = (
    "not-the-first",
    "public-data",
    "no-additional-harm",
    "fight-malicious-use",
    "necessary-data",
)


@dataclasses.dataclass(frozen=True)
class JustificationFacts:
    """Project facts the justification rules condition on."""

    #: Prior peer-reviewed work used the same data.
    prior_published_use: bool = False
    #: This work's use differs from the prior published uses.
    use_differs_from_prior: bool = False
    #: The data is publicly available.
    data_public: bool = False
    #: The work applies new techniques (e.g. deanonymisation) to the
    #: data beyond what is already public.
    applies_new_techniques: bool = False
    #: No natural person is identified by the research outputs.
    no_persons_identified: bool = True
    #: The data is stored and managed securely.
    secure_handling: bool = False
    #: Any use of the data is itself further harm (e.g. imagery of
    #: child abuse, where every viewing is additional abuse).
    use_is_inherent_harm: bool = False
    #: Malicious actors already use the same data.
    adversaries_use_data: bool = False
    #: The defensive use creates greater harm than it prevents.
    defence_creates_greater_harm: bool = False
    #: The research question cannot be answered without this data.
    no_alternative_source: bool = False
    #: The work has an articulated public-interest benefit.
    public_interest_case: bool = False


@dataclasses.dataclass(frozen=True)
class JustificationVerdict:
    """Whether a justification carries weight, and why."""

    justification_id: str
    acceptable: bool
    weight: str  # "none" | "weak" | "supporting" | "strong"
    critique: str
    conditions: tuple[str, ...] = ()


def evaluate_justification(
    justification_id: str, facts: JustificationFacts
) -> JustificationVerdict:
    """Apply the paper's critique of one justification to the facts."""
    if justification_id == "not-the-first":
        return _not_the_first(facts)
    if justification_id == "public-data":
        return _public_data(facts)
    if justification_id == "no-additional-harm":
        return _no_additional_harm(facts)
    if justification_id == "fight-malicious-use":
        return _fight_malicious_use(facts)
    if justification_id == "necessary-data":
        return _necessary_data(facts)
    raise EthicsModelError(
        f"unknown justification {justification_id!r}; "
        f"one of {JUSTIFICATION_IDS}"
    )


def evaluate_all_justifications(
    facts: JustificationFacts,
) -> tuple[JustificationVerdict, ...]:
    """Evaluate every §5.1 justification against the same facts."""
    return tuple(
        evaluate_justification(justification_id, facts)
        for justification_id in JUSTIFICATION_IDS
    )


def _not_the_first(facts: JustificationFacts) -> JustificationVerdict:
    # "This is a poor argument: not all published work is ethical under
    #  current norms, and ... if your work does something different
    #  with these data then that requires its own justification."
    if not facts.prior_published_use:
        return JustificationVerdict(
            "not-the-first",
            acceptable=False,
            weight="none",
            critique=(
                "no prior published use exists, so the justification "
                "does not even apply"
            ),
        )
    if facts.use_differs_from_prior:
        return JustificationVerdict(
            "not-the-first",
            acceptable=False,
            weight="none",
            critique=(
                "prior publication does not transfer: this work does "
                "something different with the data and requires its "
                "own justification"
            ),
        )
    return JustificationVerdict(
        "not-the-first",
        acceptable=False,
        weight="weak",
        critique=(
            "a poor argument on its own — not all published work is "
            "ethical under current norms; at most it shows community "
            "precedent"
        ),
        conditions=(
            "provide an independent ethical justification",
        ),
    )


def _public_data(facts: JustificationFacts) -> JustificationVerdict:
    # "The ethics of the work must still be considered and in some
    #  cases REB review may still be required. Researchers may develop
    #  or apply new techniques to public data that ... deanonymise
    #  these data, and this may cause harm."
    if not facts.data_public:
        return JustificationVerdict(
            "public-data",
            acceptable=False,
            weight="none",
            critique="the data is not in fact public",
        )
    if facts.applies_new_techniques:
        return JustificationVerdict(
            "public-data",
            acceptable=False,
            weight="none",
            critique=(
                "public availability does not cover new techniques "
                "applied to the data (e.g. deanonymisation), which may "
                "cause fresh harm"
            ),
            conditions=("seek REB review for the new technique",),
        )
    return JustificationVerdict(
        "public-data",
        acceptable=False,
        weight="weak",
        critique=(
            "public availability alone does not settle the ethics; "
            "public data can contain personally identifiable "
            "information and REB review may still be required "
            "(WECSR 2012 panel)"
        ),
        conditions=("consider ethics explicitly; REB review may apply",),
    )


def _no_additional_harm(
    facts: JustificationFacts,
) -> JustificationVerdict:
    # "For there to be no additional harms the research should not
    #  identify any natural persons and data may need to be stored and
    #  managed securely. In some cases any use ... is considered
    #  additional harm."
    if facts.use_is_inherent_harm:
        return JustificationVerdict(
            "no-additional-harm",
            acceptable=False,
            weight="none",
            critique=(
                "for this data any use is itself additional harm "
                "(e.g. imagery of abuse: every viewing is additional "
                "abuse of the victim)"
            ),
        )
    missing = []
    if not facts.no_persons_identified:
        missing.append("the research must identify no natural persons")
    if not facts.secure_handling:
        missing.append("the data must be stored and managed securely")
    if missing:
        return JustificationVerdict(
            "no-additional-harm",
            acceptable=False,
            weight="weak",
            critique=(
                "the no-additional-harm premise fails: "
                + "; ".join(missing)
            ),
            conditions=tuple(missing),
        )
    return JustificationVerdict(
        "no-additional-harm",
        acceptable=True,
        weight="supporting",
        critique=(
            "holds only because no persons are identified and the "
            "data is handled securely"
        ),
        conditions=(
            "maintain secure handling for the life of the data",
        ),
    )


def _fight_malicious_use(
    facts: JustificationFacts,
) -> JustificationVerdict:
    # "If researchers can use the same data to prevent or reduce harm
    #  caused by malicious actors, without creating greater harm by
    #  doing so, then it may be ethical to do so."
    if not facts.adversaries_use_data:
        return JustificationVerdict(
            "fight-malicious-use",
            acceptable=False,
            weight="none",
            critique=(
                "no evidence malicious actors use this data, so there "
                "is nothing to defend against"
            ),
        )
    if facts.defence_creates_greater_harm:
        return JustificationVerdict(
            "fight-malicious-use",
            acceptable=False,
            weight="none",
            critique=(
                "the defensive use would create greater harm than it "
                "prevents"
            ),
        )
    return JustificationVerdict(
        "fight-malicious-use",
        acceptable=True,
        weight="supporting",
        critique=(
            "defensible: the same data is used to prevent or reduce "
            "harm caused by malicious actors without creating greater "
            "harm"
        ),
    )


def _necessary_data(facts: JustificationFacts) -> JustificationVerdict:
    # "This might be a good justification if there is sufficient
    #  benefit to the work (Public interest) and there is no
    #  additional harm."
    if not facts.no_alternative_source:
        return JustificationVerdict(
            "necessary-data",
            acceptable=False,
            weight="none",
            critique=(
                "the research can be conducted from other sources "
                "(cf. Patreon: scraping sufficed, so using the dump "
                "was unjustifiable)"
            ),
        )
    if not facts.public_interest_case:
        return JustificationVerdict(
            "necessary-data",
            acceptable=False,
            weight="weak",
            critique=(
                "necessity without an articulated public-interest "
                "benefit does not justify use"
            ),
            conditions=("articulate the public-interest benefit",),
        )
    return JustificationVerdict(
        "necessary-data",
        acceptable=True,
        weight="strong",
        critique=(
            "a good justification: the data is necessary and the "
            "public-interest benefit is articulated"
        ),
        conditions=("demonstrate no additional harm",),
    )
