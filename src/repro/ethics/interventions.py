"""Intervention ethics: take-down dilemmas and remote mitigation (§2).

Two decision aids from the works the paper builds on:

* Moore & Clayton [75] faced nine dilemmas in take-down research —
  balancing harm reduction against measurement accuracy, the danger
  of telling criminals about flaws in their systems, and whether a
  proposed intervention is likely to work.
  :data:`TAKEDOWN_DILEMMAS` encodes those tensions as structured
  dilemmas with the considerations on each horn.

* Dittrich, Leder & Werner [29] analysed remote mitigation of
  botnets (e.g. cleaning infected machines via the botnet's own
  channel). :class:`InterventionAssessment` encodes their
  reasons-for / reasons-against weighing, gated by the same Menlo
  machinery the rest of the library uses.
"""

from __future__ import annotations

import dataclasses

from ..errors import EthicsModelError

__all__ = [
    "Dilemma",
    "TAKEDOWN_DILEMMAS",
    "InterventionOption",
    "InterventionAssessment",
]


@dataclasses.dataclass(frozen=True)
class Dilemma:
    """A research dilemma with the considerations on each horn."""

    id: str
    question: str
    act_considerations: tuple[str, ...]
    refrain_considerations: tuple[str, ...]


TAKEDOWN_DILEMMAS: tuple[Dilemma, ...] = (
    Dilemma(
        id="intervene-or-measure",
        question=(
            "Should we reduce harm we uncover during measurement, at "
            "the cost of perturbing the measurement?"
        ),
        act_considerations=(
            "ongoing victimisation stops sooner",
            "beneficence favours preventing identifiable harm",
        ),
        refrain_considerations=(
            "interventions change the system under measurement and "
            "bias the results",
            "partial interventions may displace rather than reduce "
            "harm",
        ),
    ),
    Dilemma(
        id="reveal-criminal-flaws",
        question=(
            "Should we publish weaknesses we find in criminal "
            "infrastructure?"
        ),
        act_considerations=(
            "defenders and researchers can exploit the weaknesses",
            "transparency enables reproduction",
        ),
        refrain_considerations=(
            "criminals read papers too and will fix their systems",
            "publication may teach new offenders the trade",
        ),
    ),
    Dilemma(
        id="notify-victims",
        question=(
            "Should we notify identifiable victims found in the "
            "data?"
        ),
        act_considerations=(
            "victims can protect themselves (the "
            "haveibeenpwned.com model)",
            "notification is a direct benefit to the worst-affected "
            "stakeholders",
        ),
        refrain_considerations=(
            "notification reveals that researchers hold the data",
            "mass notification may itself leak sensitive facts "
            "(e.g. membership of a stigmatised service)",
        ),
    ),
    Dilemma(
        id="proposed-intervention-efficacy",
        question=(
            "Is the proposed intervention actually likely to work?"
        ),
        act_considerations=(
            "a working intervention converts research into harm "
            "reduction",
        ),
        refrain_considerations=(
            "ineffective interventions burn goodwill and access "
            "while achieving nothing",
            "Moore & Clayton: ensure proposed interventions are "
            "likely to work before advocating them",
        ),
    ),
    Dilemma(
        id="hand-to-law-enforcement",
        question=(
            "Should the data be handed to law enforcement rather "
            "than analysed?"
        ),
        act_considerations=(
            "prosecution may stop offenders permanently",
            "legal clarity: the data ends up where the law expects",
        ),
        refrain_considerations=(
            "the research value (defences, understanding) is lost",
            "stakeholders in the data face prosecution or worse in "
            "some jurisdictions (the Philippines example, §2)",
        ),
    ),
)


@dataclasses.dataclass(frozen=True)
class InterventionOption:
    """One possible intervention with its expected effects.

    ``harm_reduced`` and ``harm_created`` are expected magnitudes in
    [0, 1]; ``reversible`` and ``authorised`` gate the verdict —
    the Dittrich et al. case studies turn on exactly these: acting
    on third-party machines without authorisation is computer misuse
    however good the intent.
    """

    id: str
    description: str
    harm_reduced: float
    harm_created: float
    reversible: bool
    authorised: bool
    likely_to_work: bool

    def __post_init__(self) -> None:
        for field in ("harm_reduced", "harm_created"):
            value = getattr(self, field)
            if not 0.0 <= value <= 1.0:
                raise EthicsModelError(f"{field} must be in [0, 1]")


class InterventionAssessment:
    """Weigh intervention options in the Dittrich et al. style."""

    def __init__(self, options: tuple[InterventionOption, ...]) -> None:
        if not options:
            raise EthicsModelError("provide at least one option")
        ids = [option.id for option in options]
        if len(set(ids)) != len(ids):
            raise EthicsModelError("duplicate option ids")
        self.options = options

    def evaluate(self, option_id: str) -> tuple[str, tuple[str, ...]]:
        """Return (verdict, reasons) for one option.

        Verdicts: ``proceed``, ``proceed-with-oversight``,
        ``do-not-proceed``.
        """
        option = self._option(option_id)
        reasons: list[str] = []
        if not option.authorised:
            reasons.append(
                "acting on third-party systems without authorisation "
                "is computer misuse regardless of intent"
            )
            return "do-not-proceed", tuple(reasons)
        if not option.likely_to_work:
            reasons.append(
                "the intervention is unlikely to work; it creates "
                "risk without harm reduction"
            )
            return "do-not-proceed", tuple(reasons)
        if option.harm_created >= option.harm_reduced:
            reasons.append(
                "expected harm created is not exceeded by harm "
                "reduced"
            )
            return "do-not-proceed", tuple(reasons)
        if not option.reversible:
            reasons.append(
                "irreversible interventions need external oversight "
                "(REB plus legal sign-off)"
            )
            return "proceed-with-oversight", tuple(reasons)
        reasons.append(
            "authorised, reversible, likely to work, and net "
            "harm-reducing"
        )
        return "proceed", tuple(reasons)

    def best_option(self) -> tuple[InterventionOption | None, str]:
        """The most favourable admissible option, or ``None``.

        Preference: proceed > proceed-with-oversight, then largest
        net harm reduction; do-not-proceed options are excluded.
        """
        ranked: list[tuple[int, float, InterventionOption, str]] = []
        for option in self.options:
            verdict, _ = self.evaluate(option.id)
            if verdict == "do-not-proceed":
                continue
            priority = 0 if verdict == "proceed" else 1
            net = option.harm_reduced - option.harm_created
            ranked.append((priority, -net, option, verdict))
        if not ranked:
            return None, "do-not-proceed"
        ranked.sort(key=lambda item: (item[0], item[1]))
        __, __, option, verdict = ranked[0]
        return option, verdict

    def _option(self, option_id: str) -> InterventionOption:
        for option in self.options:
            if option.id == option_id:
                return option
        raise EthicsModelError(f"unknown option {option_id!r}")
