"""AoIR-style guided ethical decision process (§2, [33, 71]).

The Association of Internet Researchers' ethics guidance is a set of
questions and a process rather than rules. This module provides the
question inventory for research with data of illicit origin plus a
small state machine (:class:`DecisionProcess`) that walks a researcher
through the questions, records answers, and reports which areas remain
unaddressed — the "process for ethical decision making" the paper says
only one of its 30 case studies used.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterator

from ..errors import EthicsModelError

__all__ = ["Question", "AOIR_QUESTIONS", "DecisionProcess"]


@dataclasses.dataclass(frozen=True)
class Question:
    """One guided question.

    ``area`` groups questions (context, consent, harm, data handling,
    publication); ``blocking`` marks questions that must be answered
    before the process can conclude.
    """

    id: str
    area: str
    text: str
    blocking: bool = True


AOIR_QUESTIONS: tuple[Question, ...] = (
    Question(
        id="context-venue",
        area="context",
        text=(
            "Where did the data come from, and under what expectation "
            "of privacy was it originally produced?"
        ),
    ),
    Question(
        id="context-origin",
        area="context",
        text=(
            "Which clause of illicit origin applies: exploitation of a "
            "vulnerability, unintended disclosure, or unauthorized "
            "leak?"
        ),
    ),
    Question(
        id="consent-feasible",
        area="consent",
        text=(
            "Is informed consent from the people in the data possible? "
            "If not, why — and who protects their interests instead?"
        ),
    ),
    Question(
        id="consent-covert",
        area="consent",
        text=(
            "If the research must be covert (e.g. studying criminal "
            "marketplaces), do the ends justify the means under the "
            "BSC statement of ethics?"
        ),
    ),
    Question(
        id="harm-subjects",
        area="harm",
        text=(
            "What harms could befall the people identified in the "
            "data: prosecution, re-exposure, discrimination, violence?"
        ),
    ),
    Question(
        id="harm-researchers",
        area="harm",
        text=(
            "What harms could befall the researchers: legal liability, "
            "threats from criminals, emotional trauma from distressing "
            "content?"
        ),
    ),
    Question(
        id="harm-behaviour",
        area="harm",
        text=(
            "Could the research change stakeholder behaviour for the "
            "worse, or encourage future collection of illicit data?"
        ),
        blocking=False,
    ),
    Question(
        id="data-storage",
        area="data-handling",
        text=(
            "How is the data stored, encrypted and access-controlled "
            "to prevent further disclosure?"
        ),
    ),
    Question(
        id="data-minimisation",
        area="data-handling",
        text=(
            "Is only the data needed for the research question "
            "retained, and is there a retention/destruction plan?"
        ),
    ),
    Question(
        id="data-sharing",
        area="data-handling",
        text=(
            "Will the data be shared — if so, under what controlled "
            "terms (written acceptable usage policy, vetted "
            "researchers)?"
        ),
    ),
    Question(
        id="publication-identities",
        area="publication",
        text=(
            "Do the outputs avoid identifying any natural person, "
            "directly or by aggregation?"
        ),
    ),
    Question(
        id="publication-benefit",
        area="publication",
        text=(
            "What is the public benefit of publishing, and does it "
            "exceed the harms (social acceptability)?"
        ),
    ),
    Question(
        id="publication-ethics-section",
        area="publication",
        text=(
            "Does the paper include an explicit ethics section "
            "recording this reasoning?"
        ),
        blocking=False,
    ),
)


class DecisionProcess:
    """Walk through the AoIR-style questions and track completeness."""

    def __init__(
        self, questions: tuple[Question, ...] = AOIR_QUESTIONS
    ) -> None:
        ids = [q.id for q in questions]
        if len(set(ids)) != len(ids):
            raise EthicsModelError("duplicate question ids")
        self.questions = questions
        self._answers: dict[str, str] = {}

    def answer(self, question_id: str, text: str) -> None:
        """Record the answer to one question."""
        if question_id not in {q.id for q in self.questions}:
            raise EthicsModelError(
                f"unknown question {question_id!r}"
            )
        if not text.strip():
            raise EthicsModelError("answers must be non-empty")
        self._answers[question_id] = text.strip()

    def __iter__(self) -> Iterator[Question]:
        return iter(self.questions)

    @property
    def answers(self) -> dict[str, str]:
        return dict(self._answers)

    def unanswered(self) -> tuple[Question, ...]:
        return tuple(
            q for q in self.questions if q.id not in self._answers
        )

    def blocking_unanswered(self) -> tuple[Question, ...]:
        return tuple(q for q in self.unanswered() if q.blocking)

    def areas(self) -> tuple[str, ...]:
        """Question areas in first-appearance order."""
        seen: list[str] = []
        for question in self.questions:
            if question.area not in seen:
                seen.append(question.area)
        return tuple(seen)

    def area_completeness(self) -> dict[str, float]:
        """Fraction of questions answered per area."""
        result: dict[str, float] = {}
        for area in self.areas():
            in_area = [q for q in self.questions if q.area == area]
            answered = sum(
                1 for q in in_area if q.id in self._answers
            )
            result[area] = answered / len(in_area)
        return result

    def complete(self) -> bool:
        """All blocking questions answered."""
        return not self.blocking_unanswered()

    def transcript(self) -> str:
        """Question/answer transcript for inclusion in an REB pack."""
        lines: list[str] = []
        for question in self.questions:
            lines.append(f"Q [{question.area}] {question.text}")
            answer = self._answers.get(question.id)
            lines.append(f"A: {answer}" if answer else "A: (unanswered)")
        return "\n".join(lines)
