"""Human-rights baseline for research with illicit-origin data (§2).

The paper: "Human rights also provide an important ethical baseline.
These include, the right to life, the right to be free of arbitrary
arrest, the right to a fair trial, a presumption of innocence until
proven guilty, a right to not have arbitrary invasions of privacy,
and a right not to be arbitrarily deprived of property. Research
using data of illicit origin may indirectly deprive people of such
rights" — with the Philippines example, where data from online drug
markets could feed extra-judicial killings.

:func:`rights_at_risk` maps research-context facts to the rights the
research could indirectly compromise, with the mechanism spelled out;
the assessment and reporting layers surface the result.
"""

from __future__ import annotations

import dataclasses

from ..errors import EthicsModelError

__all__ = ["Right", "RIGHTS", "RightsContext", "RightRisk",
           "rights_at_risk"]


@dataclasses.dataclass(frozen=True)
class Right:
    """One right from the paper's UDHR-derived list [112]."""

    id: str
    name: str
    udhr_article: int


RIGHTS: tuple[Right, ...] = (
    Right(id="life", name="the right to life", udhr_article=3),
    Right(
        id="no-arbitrary-arrest",
        name="the right to be free of arbitrary arrest",
        udhr_article=9,
    ),
    Right(
        id="fair-trial",
        name="the right to a fair trial",
        udhr_article=10,
    ),
    Right(
        id="presumption-of-innocence",
        name="a presumption of innocence until proven guilty",
        udhr_article=11,
    ),
    Right(
        id="privacy",
        name="a right to not have arbitrary invasions of privacy",
        udhr_article=12,
    ),
    Right(
        id="property",
        name="a right not to be arbitrarily deprived of property",
        udhr_article=17,
    ),
)

_BY_ID = {right.id: right for right in RIGHTS}


@dataclasses.dataclass(frozen=True)
class RightsContext:
    """Facts about the research context that bear on rights."""

    #: Individuals in the data could be identified.
    identifies_individuals: bool = False
    #: The data evidences (or implies) criminal conduct by subjects.
    implies_criminality: bool = False
    #: Results may reach law enforcement or be published where law
    #: enforcement will read them.
    reaches_law_enforcement: bool = False
    #: Any implicated jurisdiction practises extra-judicial violence
    #: against the implicated population (the Philippines example).
    extrajudicial_violence_risk: bool = False
    #: The data includes private communications or private facts.
    contains_private_life: bool = False
    #: Publication could trigger asset seizure / account termination
    #: without process.
    triggers_asset_action: bool = False


@dataclasses.dataclass(frozen=True)
class RightRisk:
    """One right the research puts at risk, with the mechanism."""

    right: Right
    mechanism: str


def rights_at_risk(context: RightsContext) -> tuple[RightRisk, ...]:
    """The rights the research could indirectly compromise.

    The mapping follows §2's reasoning: identification plus implied
    criminality is the gateway; what it opens onto depends on who
    can act on the identification and how.
    """
    if not isinstance(context, RightsContext):
        raise EthicsModelError("pass a RightsContext")
    risks: list[RightRisk] = []
    gateway = (
        context.identifies_individuals and context.implies_criminality
    )
    if gateway and context.extrajudicial_violence_risk:
        risks.append(
            RightRisk(
                right=_BY_ID["life"],
                mechanism=(
                    "identified subjects face extra-judicial "
                    "violence in an implicated jurisdiction (the "
                    "Philippines drug-market example)"
                ),
            )
        )
    if gateway and context.reaches_law_enforcement:
        risks.append(
            RightRisk(
                right=_BY_ID["no-arbitrary-arrest"],
                mechanism=(
                    "research outputs could single out individuals "
                    "for arrest without due investigative process"
                ),
            )
        )
        risks.append(
            RightRisk(
                right=_BY_ID["fair-trial"],
                mechanism=(
                    "illicitly obtained data used as lead evidence "
                    "may be untestable in court, compromising the "
                    "fairness of any proceedings"
                ),
            )
        )
    if gateway:
        risks.append(
            RightRisk(
                right=_BY_ID["presumption-of-innocence"],
                mechanism=(
                    "publication that links identifiable people to "
                    "criminal conduct convicts them in public before "
                    "any trial"
                ),
            )
        )
    if (
        context.identifies_individuals
        and context.contains_private_life
    ):
        risks.append(
            RightRisk(
                right=_BY_ID["privacy"],
                mechanism=(
                    "private communications or private facts about "
                    "identifiable people would be further exposed"
                ),
            )
        )
    if context.identifies_individuals and context.triggers_asset_action:
        risks.append(
            RightRisk(
                right=_BY_ID["property"],
                mechanism=(
                    "publication could trigger seizure or "
                    "termination of identified subjects' assets "
                    "without process"
                ),
            )
        )
    return tuple(risks)
