"""Stakeholder identification (§2.1 of the paper).

The paper's first ethical issue is *identification of stakeholders*:

    "Primary stakeholders are those directly connected with data, such
    as those identified in it; secondary stakeholders are
    intermediaries in the delivery of benefits or harms, such as
    service providers; and key stakeholders are those such as the
    leaker or the researcher who are critical to the conduct of the
    research."

This module models stakeholders, their roles, vulnerability and
consent status, and provides the registry an assessment starts from.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Iterator

from ..errors import EthicsModelError

__all__ = [
    "StakeholderRole",
    "ConsentStatus",
    "Stakeholder",
    "StakeholderRegistry",
    "default_stakeholders",
]


class StakeholderRole:
    """The paper's three stakeholder roles."""

    PRIMARY = "primary"
    SECONDARY = "secondary"
    KEY = "key"

    ALL = (PRIMARY, SECONDARY, KEY)


class ConsentStatus:
    """Whether informed consent was, or could be, obtained."""

    OBTAINED = "obtained"
    IMPOSSIBLE = "impossible"  # cannot be acquired (e.g. anonymous actors)
    IMPRACTICAL = "impractical"  # possible in principle, infeasible scale
    NOT_REQUIRED = "not-required"  # research designed so it is not needed
    NOT_SOUGHT = "not-sought"  # could have been sought but was not

    ALL = (OBTAINED, IMPOSSIBLE, IMPRACTICAL, NOT_REQUIRED, NOT_SOUGHT)


@dataclasses.dataclass(frozen=True)
class Stakeholder:
    """One stakeholder (individual, group or organisation).

    ``vulnerable`` marks persons with diminished autonomy who, under
    the Menlo *respect for persons* principle, must be given additional
    protection. ``natural_person`` distinguishes humans (whose harms
    dominate ethical review) from corporate persons.
    """

    id: str
    name: str
    role: str
    natural_person: bool = True
    vulnerable: bool = False
    consent: str = ConsentStatus.NOT_SOUGHT
    interests: tuple[str, ...] = ()
    notes: str = ""

    def __post_init__(self) -> None:
        if self.role not in StakeholderRole.ALL:
            raise EthicsModelError(
                f"unknown stakeholder role {self.role!r}"
            )
        if self.consent not in ConsentStatus.ALL:
            raise EthicsModelError(
                f"unknown consent status {self.consent!r}"
            )
        if not self.id:
            raise EthicsModelError("stakeholder id must be non-empty")

    @property
    def needs_reb_protection(self) -> bool:
        """Menlo: when consent is impossible the REB must protect the
        interests of the individuals."""
        return self.natural_person and self.consent in (
            ConsentStatus.IMPOSSIBLE,
            ConsentStatus.IMPRACTICAL,
            ConsentStatus.NOT_SOUGHT,
        )


class StakeholderRegistry:
    """Ordered collection of stakeholders with role queries."""

    def __init__(self, stakeholders: Iterable[Stakeholder] = ()) -> None:
        self._by_id: dict[str, Stakeholder] = {}
        for stakeholder in stakeholders:
            self.add(stakeholder)

    def add(self, stakeholder: Stakeholder) -> None:
        """Register one stakeholder (ids must be unique)."""
        if stakeholder.id in self._by_id:
            raise EthicsModelError(
                f"duplicate stakeholder {stakeholder.id!r}"
            )
        self._by_id[stakeholder.id] = stakeholder

    def __iter__(self) -> Iterator[Stakeholder]:
        return iter(self._by_id.values())

    def __len__(self) -> int:
        return len(self._by_id)

    def __contains__(self, stakeholder_id: str) -> bool:
        return stakeholder_id in self._by_id

    def __getitem__(self, stakeholder_id: str) -> Stakeholder:
        try:
            return self._by_id[stakeholder_id]
        except KeyError:
            raise EthicsModelError(
                f"unknown stakeholder {stakeholder_id!r}"
            ) from None

    def by_role(self, role: str) -> tuple[Stakeholder, ...]:
        if role not in StakeholderRole.ALL:
            raise EthicsModelError(f"unknown stakeholder role {role!r}")
        return tuple(s for s in self if s.role == role)

    @property
    def primary(self) -> tuple[Stakeholder, ...]:
        return self.by_role(StakeholderRole.PRIMARY)

    @property
    def secondary(self) -> tuple[Stakeholder, ...]:
        return self.by_role(StakeholderRole.SECONDARY)

    @property
    def key(self) -> tuple[Stakeholder, ...]:
        return self.by_role(StakeholderRole.KEY)

    def unprotected(self) -> tuple[Stakeholder, ...]:
        """Natural persons without consent who need REB protection."""
        return tuple(s for s in self if s.needs_reb_protection)

    def vulnerable(self) -> tuple[Stakeholder, ...]:
        return tuple(s for s in self if s.vulnerable)

    def is_complete(self) -> bool:
        """A minimally complete identification names at least one
        primary stakeholder and the researcher (a key stakeholder)."""
        return bool(self.primary) and bool(self.key)


def default_stakeholders(
    data_subjects: str = "individuals identified in the data",
    service: str = "the service the data was taken from",
    leaker: str = "the person who leaked the data",
) -> StakeholderRegistry:
    """A canonical starting registry for illicit-origin data research.

    Mirrors the paper's running example: data subjects (primary), the
    compromised service (secondary), and the leaker and researcher
    (key). Callers refine consent / vulnerability per project.
    """
    registry = StakeholderRegistry()
    registry.add(
        Stakeholder(
            id="data-subjects",
            name=data_subjects,
            role=StakeholderRole.PRIMARY,
            consent=ConsentStatus.IMPOSSIBLE,
        )
    )
    registry.add(
        Stakeholder(
            id="service-operator",
            name=service,
            role=StakeholderRole.SECONDARY,
            natural_person=False,
        )
    )
    registry.add(
        Stakeholder(
            id="leaker",
            name=leaker,
            role=StakeholderRole.KEY,
            consent=ConsentStatus.NOT_REQUIRED,
        )
    )
    registry.add(
        Stakeholder(
            id="researchers",
            name="the researchers conducting the study",
            role=StakeholderRole.KEY,
            consent=ConsentStatus.OBTAINED,
        )
    )
    return registry
