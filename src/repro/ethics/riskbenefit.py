"""Keegan–Matias multi-party risk-benefit grid (§2, [56]).

Keegan and Matias propose analysing online-community research by
enumerating, for every affected party, the risks and benefits the
research imposes on them — rather than aggregating over everyone at
once. :class:`RiskBenefitGrid` materialises that grid from harm and
benefit instances and supports the balance queries the assessment
engine uses (who carries net risk, where is the grid empty, does any
party subsidise the others).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

from ..errors import EthicsModelError
from .harms import BenefitInstance, HarmInstance
from .stakeholders import StakeholderRegistry

__all__ = ["PartyBalance", "RiskBenefitGrid"]


@dataclasses.dataclass(frozen=True)
class PartyBalance:
    """Net position of one party in the grid."""

    stakeholder_id: str
    name: str
    risk: float
    benefit: float
    harm_count: int
    benefit_count: int

    @property
    def net(self) -> float:
        return self.benefit - self.risk

    @property
    def is_subsidising(self) -> bool:
        """True when the party carries risk but receives no benefit."""
        return self.risk > 0.0 and self.benefit == 0.0


class RiskBenefitGrid:
    """Per-party risk/benefit accounting over an assessment's register.

    Benefits whose ``beneficiary`` is ``"society"`` are treated as a
    distinguished diffuse party rather than spread over stakeholders,
    matching how the paper discusses public-interest benefits.
    """

    SOCIETY = "society"

    def __init__(
        self,
        stakeholders: StakeholderRegistry,
        harms: Sequence[HarmInstance],
        benefits: Sequence[BenefitInstance],
    ) -> None:
        for harm in harms:
            if harm.stakeholder_id not in stakeholders:
                raise EthicsModelError(
                    f"harm names unknown stakeholder "
                    f"{harm.stakeholder_id!r}"
                )
        for benefit in benefits:
            if (
                benefit.beneficiary != self.SOCIETY
                and benefit.beneficiary not in stakeholders
            ):
                raise EthicsModelError(
                    f"benefit names unknown beneficiary "
                    f"{benefit.beneficiary!r}"
                )
        self.stakeholders = stakeholders
        self.harms = tuple(harms)
        self.benefits = tuple(benefits)

    def balance(self, party_id: str) -> PartyBalance:
        """The net position of one party (stakeholder id or society)."""
        if party_id == self.SOCIETY:
            name = "society at large"
        else:
            name = self.stakeholders[party_id].name
        harms = [
            h for h in self.harms if h.stakeholder_id == party_id
        ]
        benefits = [
            b for b in self.benefits if b.beneficiary == party_id
        ]
        return PartyBalance(
            stakeholder_id=party_id,
            name=name,
            risk=sum(h.residual_risk for h in harms),
            benefit=sum(b.expected_value for b in benefits),
            harm_count=len(harms),
            benefit_count=len(benefits),
        )

    def balances(self) -> tuple[PartyBalance, ...]:
        """Balances for all stakeholders plus society (when present)."""
        parties = [s.id for s in self.stakeholders]
        if any(b.beneficiary == self.SOCIETY for b in self.benefits):
            parties.append(self.SOCIETY)
        return tuple(self.balance(p) for p in parties)

    def subsidising_parties(self) -> tuple[PartyBalance, ...]:
        """Parties carrying risk with no benefit — the fairness red
        flag the multi-party framing exists to surface."""
        return tuple(b for b in self.balances() if b.is_subsidising)

    def unassessed_parties(self) -> tuple[str, ...]:
        """Stakeholders with neither harms nor benefits recorded.

        An empty grid row usually means the analysis is incomplete,
        not that the party is unaffected.
        """
        return tuple(
            s.id
            for s in self.stakeholders
            if self.balance(s.id).harm_count == 0
            and self.balance(s.id).benefit_count == 0
        )

    def total_risk(self) -> float:
        return sum(h.residual_risk for h in self.harms)

    def total_benefit(self) -> float:
        return sum(b.expected_value for b in self.benefits)

    def favourable(self) -> bool:
        """Aggregate benefit exceeds aggregate residual risk *and* no
        party subsidises the rest."""
        return (
            self.total_benefit() > self.total_risk()
            and not self.subsidising_parties()
        )

    def render_text(self) -> str:
        """Human-readable grid for reports."""
        lines = ["Party                          Risk  Benefit  Net"]
        for balance in self.balances():
            lines.append(
                f"{balance.name[:30]:<30} {balance.risk:5.2f} "
                f"{balance.benefit:8.2f} {balance.net:+5.2f}"
                + ("  [subsidising]" if balance.is_subsidising else "")
            )
        return "\n".join(lines)
