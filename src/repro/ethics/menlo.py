"""The Menlo Report principles as an executable evaluation (§2).

The Menlo Report [28] identifies four principles for ICT research:
respect for persons, beneficence, justice, and respect for law and
public interest. :class:`MenloEvaluation` applies each principle to a
stakeholder registry plus harm/benefit instances and produces
:class:`PrincipleFinding` objects with a status and the applicable
guidance, which the assessment engine and the ethics-section generator
consume.
"""

from __future__ import annotations

import dataclasses
import enum
from collections.abc import Sequence

from ..errors import EthicsModelError
from .harms import BenefitInstance, HarmInstance
from .stakeholders import ConsentStatus, StakeholderRegistry

__all__ = [
    "MenloPrinciple",
    "FindingStatus",
    "PrincipleFinding",
    "MenloEvaluation",
    "MENLO_QUESTIONS",
]


class MenloPrinciple(enum.Enum):
    """The four Menlo Report principles (§2, [26 §B])."""

    RESPECT_FOR_PERSONS = "respect-for-persons"
    BENEFICENCE = "beneficence"
    JUSTICE = "justice"
    RESPECT_FOR_LAW_AND_PUBLIC_INTEREST = (
        "respect-for-law-and-public-interest"
    )

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Guiding questions per principle, condensed from the Menlo Report
#: and its companion; used in checklists and generated ethics sections.
MENLO_QUESTIONS: dict[MenloPrinciple, tuple[str, ...]] = {
    MenloPrinciple.RESPECT_FOR_PERSONS: (
        "Are individuals treated as autonomous agents?",
        "Is informed consent obtained, or if not, why is it impossible "
        "or impractical, and how are the individuals' interests "
        "protected (e.g. by REB oversight)?",
        "Are persons with diminished autonomy given additional "
        "protection?",
    ),
    MenloPrinciple.BENEFICENCE: (
        "Have potential harms been systematically identified for every "
        "stakeholder?",
        "Are possible harms minimised and possible benefits maximised?",
        "Are safeguards in place against each identified harm?",
    ),
    MenloPrinciple.JUSTICE: (
        "Are risks and benefits distributed fairly?",
        "Is no group selected (or burdened) on the basis of protected "
        "characteristics or their correlates?",
    ),
    MenloPrinciple.RESPECT_FOR_LAW_AND_PUBLIC_INTEREST: (
        "Does the research conform to applicable laws in all relevant "
        "jurisdictions?",
        "Is the research in the public interest, and is it open, "
        "transparent, reproducible and peer-reviewed?",
    ),
}


class FindingStatus:
    """Outcome of evaluating one principle."""

    SATISFIED = "satisfied"
    NEEDS_SAFEGUARDS = "needs-safeguards"
    VIOLATED = "violated"
    INDETERMINATE = "indeterminate"

    ORDER = (SATISFIED, INDETERMINATE, NEEDS_SAFEGUARDS, VIOLATED)

    @classmethod
    def worst(cls, statuses: Sequence[str]) -> str:
        if not statuses:
            return cls.INDETERMINATE
        return max(statuses, key=cls.ORDER.index)


@dataclasses.dataclass(frozen=True)
class PrincipleFinding:
    """The evaluation result for one Menlo principle."""

    principle: MenloPrinciple
    status: str
    reasons: tuple[str, ...]
    recommendations: tuple[str, ...] = ()

    def describe(self) -> str:
        """Multi-line rendering: status, reasons, recommendations."""
        lines = [f"{self.principle.value}: {self.status}"]
        lines.extend(f"  - {reason}" for reason in self.reasons)
        lines.extend(
            f"  -> {recommendation}"
            for recommendation in self.recommendations
        )
        return "\n".join(lines)


class MenloEvaluation:
    """Evaluate the four Menlo principles for one research design.

    Parameters
    ----------
    stakeholders:
        The identified stakeholders.
    harms, benefits:
        Concrete instances (see :mod:`repro.ethics.harms`).
    lawful:
        Whether the research conforms to applicable law (from the
        legal engine); ``None`` when not yet analysed.
    public_interest:
        Whether a public-interest case has been made.
    reproducible:
        Whether the work supports reproduction (e.g. via controlled
        sharing).
    residual_risk_threshold:
        Maximum tolerable total residual risk per natural-person
        stakeholder before beneficence demands more safeguards.
    """

    def __init__(
        self,
        stakeholders: StakeholderRegistry,
        harms: Sequence[HarmInstance],
        benefits: Sequence[BenefitInstance],
        *,
        lawful: bool | None = None,
        public_interest: bool = False,
        reproducible: bool = False,
        residual_risk_threshold: float = 0.25,
    ) -> None:
        if residual_risk_threshold <= 0:
            raise EthicsModelError("risk threshold must be positive")
        for harm in harms:
            if harm.stakeholder_id not in stakeholders:
                raise EthicsModelError(
                    f"harm references unknown stakeholder "
                    f"{harm.stakeholder_id!r}"
                )
        self.stakeholders = stakeholders
        self.harms = tuple(harms)
        self.benefits = tuple(benefits)
        self.lawful = lawful
        self.public_interest = public_interest
        self.reproducible = reproducible
        self.residual_risk_threshold = residual_risk_threshold

    # -- per-principle evaluations ------------------------------------
    def respect_for_persons(self) -> PrincipleFinding:
        """Evaluate the respect-for-persons principle."""
        reasons: list[str] = []
        recommendations: list[str] = []
        status = FindingStatus.SATISFIED
        unprotected = self.stakeholders.unprotected()
        if unprotected:
            status = FindingStatus.NEEDS_SAFEGUARDS
            names = ", ".join(s.name for s in unprotected)
            reasons.append(
                f"informed consent is absent for: {names}"
            )
            recommendations.append(
                "seek REB review so the board can protect the "
                "interests of individuals for whom consent is "
                "impossible (Menlo / BSC guidance)"
            )
        not_sought = [
            s
            for s in self.stakeholders
            if s.consent == ConsentStatus.NOT_SOUGHT and s.natural_person
        ]
        if not_sought:
            status = FindingStatus.NEEDS_SAFEGUARDS
            reasons.append(
                "consent was not sought from stakeholders where it may "
                "have been feasible"
            )
            recommendations.append(
                "justify why consent is impossible or impractical, or "
                "obtain it"
            )
        for stakeholder in self.stakeholders.vulnerable():
            reasons.append(
                f"{stakeholder.name} has diminished autonomy and needs "
                "additional protection"
            )
            recommendations.append(
                f"add specific protections for {stakeholder.name}"
            )
            status = FindingStatus.worst(
                [status, FindingStatus.NEEDS_SAFEGUARDS]
            )
        if not reasons:
            reasons.append(
                "all natural-person stakeholders consented or are "
                "protected"
            )
        return PrincipleFinding(
            MenloPrinciple.RESPECT_FOR_PERSONS,
            status,
            tuple(reasons),
            tuple(recommendations),
        )

    def beneficence(self) -> PrincipleFinding:
        """Evaluate the beneficence principle."""
        reasons: list[str] = []
        recommendations: list[str] = []
        if not self.harms:
            return PrincipleFinding(
                MenloPrinciple.BENEFICENCE,
                FindingStatus.INDETERMINATE,
                (
                    "no harms were identified; an empty harm register "
                    "more often reflects missing analysis than absent "
                    "risk",
                ),
                (
                    "enumerate potential harms per stakeholder before "
                    "claiming beneficence",
                ),
            )
        total_benefit = sum(b.expected_value for b in self.benefits)
        status = FindingStatus.SATISFIED
        for stakeholder in self.stakeholders:
            if not stakeholder.natural_person:
                continue
            residual = sum(
                h.residual_risk
                for h in self.harms
                if h.stakeholder_id == stakeholder.id
            )
            if residual > self.residual_risk_threshold:
                status = FindingStatus.NEEDS_SAFEGUARDS
                reasons.append(
                    f"residual risk {residual:.2f} to "
                    f"{stakeholder.name} exceeds the threshold "
                    f"{self.residual_risk_threshold:.2f}"
                )
                recommendations.append(
                    f"add safeguards mitigating harms to "
                    f"{stakeholder.name}"
                )
        if total_benefit == 0.0:
            status = FindingStatus.worst(
                [status, FindingStatus.NEEDS_SAFEGUARDS]
            )
            reasons.append("no benefits have been articulated")
            recommendations.append(
                "articulate the research benefits (the paper finds "
                "benefits as well as harms often go unidentified)"
            )
        total_residual = sum(h.residual_risk for h in self.harms)
        if total_benefit and total_residual > total_benefit:
            status = FindingStatus.VIOLATED
            reasons.append(
                f"total residual risk {total_residual:.2f} exceeds "
                f"expected benefit {total_benefit:.2f}"
            )
            recommendations.append(
                "redesign the study: harms currently outweigh benefits"
            )
        if not reasons:
            reasons.append(
                "identified harms are mitigated below threshold and "
                "benefits are articulated"
            )
        return PrincipleFinding(
            MenloPrinciple.BENEFICENCE,
            status,
            tuple(reasons),
            tuple(recommendations),
        )

    def justice(self) -> PrincipleFinding:
        # Risks and benefits should not concentrate on one group while
        # another captures the gains.
        """Evaluate the justice principle."""
        harmed = {h.stakeholder_id for h in self.harms}
        benefiting = {b.beneficiary for b in self.benefits}
        reasons: list[str] = []
        recommendations: list[str] = []
        status = FindingStatus.SATISFIED
        only_harmed = harmed - benefiting - {"society"}
        if only_harmed and benefiting:
            status = FindingStatus.NEEDS_SAFEGUARDS
            names = ", ".join(
                self.stakeholders[s].name
                for s in sorted(only_harmed)
                if s in self.stakeholders
            )
            if names:
                reasons.append(
                    f"risk is borne by {names} while benefits accrue "
                    "elsewhere"
                )
                recommendations.append(
                    "rebalance: reduce risk on the burdened group or "
                    "direct benefits toward it"
                )
        if not self.harms and not self.benefits:
            status = FindingStatus.INDETERMINATE
            reasons.append(
                "no harm/benefit register to assess distribution over"
            )
        if not reasons:
            reasons.append(
                "risks and benefits are not concentrated on a single "
                "group"
            )
        return PrincipleFinding(
            MenloPrinciple.JUSTICE,
            status,
            tuple(reasons),
            tuple(recommendations),
        )

    def respect_for_law_and_public_interest(self) -> PrincipleFinding:
        """Evaluate respect for law and the public interest."""
        reasons: list[str] = []
        recommendations: list[str] = []
        if self.lawful is None:
            status = FindingStatus.INDETERMINATE
            reasons.append("legal analysis has not been performed")
            recommendations.append(
                "run the legal engine (or obtain legal advice) for "
                "every relevant jurisdiction"
            )
        elif not self.lawful:
            # Occasionally research is illegal but still ethical; the
            # paper requires transparency and REB approval in that case.
            status = FindingStatus.NEEDS_SAFEGUARDS
            reasons.append(
                "the research may breach applicable law; it can only "
                "proceed with transparency, institutional backing and "
                "REB approval"
            )
            recommendations.append(
                "obtain REB approval, be transparent, and engage "
                "lawmakers to improve the law (Israel 2004)"
            )
        else:
            status = FindingStatus.SATISFIED
            reasons.append("the research conforms to applicable law")
        if not self.public_interest:
            status = FindingStatus.worst(
                [status, FindingStatus.NEEDS_SAFEGUARDS]
            )
            reasons.append("no public-interest case has been made")
            recommendations.append(
                "state the social benefit that exceeds the harms "
                "(Floridi & Taddeo)"
            )
        if not self.reproducible:
            reasons.append(
                "the work is not reproducible by other researchers"
            )
            recommendations.append(
                "support controlled sharing of the data or derived "
                "artefacts"
            )
        return PrincipleFinding(
            MenloPrinciple.RESPECT_FOR_LAW_AND_PUBLIC_INTEREST,
            status,
            tuple(reasons),
            tuple(recommendations),
        )

    # -- aggregate -----------------------------------------------------
    def findings(self) -> tuple[PrincipleFinding, ...]:
        """All four principle findings, in Menlo order."""
        return (
            self.respect_for_persons(),
            self.beneficence(),
            self.justice(),
            self.respect_for_law_and_public_interest(),
        )

    def overall_status(self) -> str:
        return FindingStatus.worst(
            [finding.status for finding in self.findings()]
        )
