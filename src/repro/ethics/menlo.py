"""The Menlo Report principles as an executable evaluation (§2).

The Menlo Report [28] identifies four principles for ICT research:
respect for persons, beneficence, justice, and respect for law and
public interest. :class:`MenloEvaluation` applies each principle to a
stakeholder registry plus harm/benefit instances and produces
:class:`PrincipleFinding` objects with a status and the applicable
guidance, which the assessment engine and the ethics-section generator
consume.
"""

from __future__ import annotations

import dataclasses
import enum
from collections.abc import Sequence

from ..errors import EthicsModelError
from .harms import BenefitInstance, HarmInstance
from .stakeholders import StakeholderRegistry

__all__ = [
    "MenloPrinciple",
    "FindingStatus",
    "PrincipleFinding",
    "MenloEvaluation",
    "MENLO_QUESTIONS",
]


class MenloPrinciple(enum.Enum):
    """The four Menlo Report principles (§2, [26 §B])."""

    RESPECT_FOR_PERSONS = "respect-for-persons"
    BENEFICENCE = "beneficence"
    JUSTICE = "justice"
    RESPECT_FOR_LAW_AND_PUBLIC_INTEREST = (
        "respect-for-law-and-public-interest"
    )

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Guiding questions per principle, condensed from the Menlo Report
#: and its companion; used in checklists and generated ethics sections.
MENLO_QUESTIONS: dict[MenloPrinciple, tuple[str, ...]] = {
    MenloPrinciple.RESPECT_FOR_PERSONS: (
        "Are individuals treated as autonomous agents?",
        "Is informed consent obtained, or if not, why is it impossible "
        "or impractical, and how are the individuals' interests "
        "protected (e.g. by REB oversight)?",
        "Are persons with diminished autonomy given additional "
        "protection?",
    ),
    MenloPrinciple.BENEFICENCE: (
        "Have potential harms been systematically identified for every "
        "stakeholder?",
        "Are possible harms minimised and possible benefits maximised?",
        "Are safeguards in place against each identified harm?",
    ),
    MenloPrinciple.JUSTICE: (
        "Are risks and benefits distributed fairly?",
        "Is no group selected (or burdened) on the basis of protected "
        "characteristics or their correlates?",
    ),
    MenloPrinciple.RESPECT_FOR_LAW_AND_PUBLIC_INTEREST: (
        "Does the research conform to applicable laws in all relevant "
        "jurisdictions?",
        "Is the research in the public interest, and is it open, "
        "transparent, reproducible and peer-reviewed?",
    ),
}


class FindingStatus:
    """Outcome of evaluating one principle."""

    SATISFIED = "satisfied"
    NEEDS_SAFEGUARDS = "needs-safeguards"
    VIOLATED = "violated"
    INDETERMINATE = "indeterminate"

    ORDER = (SATISFIED, INDETERMINATE, NEEDS_SAFEGUARDS, VIOLATED)
    _RANK = {status: index for index, status in enumerate(ORDER)}

    @classmethod
    def worst(cls, statuses: Sequence[str]) -> str:
        """The most severe of *statuses* (indeterminate when empty).

        Unknown statuses raise :class:`EthicsModelError` naming the
        offending value.
        """
        if not statuses:
            return cls.INDETERMINATE
        rank = cls._RANK
        worst = 0
        for status in statuses:
            position = rank.get(status)
            if position is None:
                raise EthicsModelError(
                    f"unknown finding status {status!r}"
                )
            if position > worst:
                worst = position
        return cls.ORDER[worst]


@dataclasses.dataclass(frozen=True)
class PrincipleFinding:
    """The evaluation result for one Menlo principle."""

    principle: MenloPrinciple
    status: str
    reasons: tuple[str, ...]
    recommendations: tuple[str, ...] = ()

    def describe(self) -> str:
        """Multi-line rendering: status, reasons, recommendations."""
        lines = [f"{self.principle.value}: {self.status}"]
        lines.extend(f"  - {reason}" for reason in self.reasons)
        lines.extend(
            f"  -> {recommendation}"
            for recommendation in self.recommendations
        )
        return "\n".join(lines)


class MenloEvaluation:
    """Evaluate the four Menlo principles for one research design.

    Parameters
    ----------
    stakeholders:
        The identified stakeholders.
    harms, benefits:
        Concrete instances (see :mod:`repro.ethics.harms`).
    lawful:
        Whether the research conforms to applicable law (from the
        legal engine); ``None`` when not yet analysed.
    public_interest:
        Whether a public-interest case has been made.
    reproducible:
        Whether the work supports reproduction (e.g. via controlled
        sharing).
    residual_risk_threshold:
        Maximum tolerable total residual risk per natural-person
        stakeholder before beneficence demands more safeguards.
    """

    def __init__(
        self,
        stakeholders: StakeholderRegistry,
        harms: Sequence[HarmInstance],
        benefits: Sequence[BenefitInstance],
        *,
        lawful: bool | None = None,
        public_interest: bool = False,
        reproducible: bool = False,
        residual_risk_threshold: float = 0.25,
    ) -> None:
        if residual_risk_threshold <= 0:
            raise EthicsModelError("risk threshold must be positive")
        for harm in harms:
            if harm.stakeholder_id not in stakeholders:
                raise EthicsModelError(
                    f"harm references unknown stakeholder "
                    f"{harm.stakeholder_id!r}"
                )
        self.stakeholders = stakeholders
        self.harms = tuple(harms)
        self.benefits = tuple(benefits)
        self.lawful = lawful
        self.public_interest = public_interest
        self.reproducible = reproducible
        self.residual_risk_threshold = residual_risk_threshold

    # -- per-principle evaluations ------------------------------------
    # The principle checks are declarative rows in the default policy
    # pack; these methods evaluate its compiled decision tables.
    def respect_for_persons(self) -> PrincipleFinding:
        """Evaluate the respect-for-persons principle."""
        return self._policy_finding(
            MenloPrinciple.RESPECT_FOR_PERSONS
        )

    def beneficence(self) -> PrincipleFinding:
        """Evaluate the beneficence principle."""
        return self._policy_finding(MenloPrinciple.BENEFICENCE)

    def justice(self) -> PrincipleFinding:
        """Evaluate the justice principle."""
        return self._policy_finding(MenloPrinciple.JUSTICE)

    def respect_for_law_and_public_interest(self) -> PrincipleFinding:
        """Evaluate respect for law and the public interest."""
        return self._policy_finding(
            MenloPrinciple.RESPECT_FOR_LAW_AND_PUBLIC_INTEREST
        )

    def _policy_finding(
        self, principle: MenloPrinciple
    ) -> PrincipleFinding:
        from ..policy.runtime import default_policy

        return default_policy().menlo_finding(self, principle.value)

    # -- aggregate -----------------------------------------------------
    def findings(self) -> tuple[PrincipleFinding, ...]:
        """All four principle findings, in Menlo order."""
        from ..policy.runtime import default_policy

        return default_policy().menlo_findings(self)

    def overall_status(self) -> str:
        return FindingStatus.worst(
            [finding.status for finding in self.findings()]
        )
