"""Harm and benefit instances with likelihood/severity scoring.

The paper's §5.3/§5.4 taxonomies (the codebook's open-set harm and
benefit codes) classify *kinds*; an assessment also needs concrete
*instances* — "publishing attack logs could re-expose victim IP
addresses" — each with the stakeholder it falls on, a likelihood and a
severity. The classic risk product (likelihood × severity) gives a
comparable magnitude, and mitigation by safeguards reduces residual
likelihood.
"""

from __future__ import annotations

import dataclasses

from .._util import clamp
from ..codebook.paper import BENEFIT_CODES, HARM_CODES
from ..errors import EthicsModelError

__all__ = [
    "Likelihood",
    "Severity",
    "HarmInstance",
    "BenefitInstance",
    "HARM_ABBREVS",
    "BENEFIT_ABBREVS",
]

HARM_ABBREVS = tuple(code.abbrev for code in HARM_CODES)
BENEFIT_ABBREVS = tuple(code.abbrev for code in BENEFIT_CODES)


class Likelihood:
    """Qualitative likelihood scale mapped to [0, 1] midpoints."""

    RARE = 0.05
    UNLIKELY = 0.2
    POSSIBLE = 0.5
    LIKELY = 0.8
    CERTAIN = 1.0

    SCALE = {
        "rare": RARE,
        "unlikely": UNLIKELY,
        "possible": POSSIBLE,
        "likely": LIKELY,
        "certain": CERTAIN,
    }

    @classmethod
    def parse(cls, value: float | str) -> float:
        if isinstance(value, str):
            try:
                return cls.SCALE[value.lower()]
            except KeyError:
                raise EthicsModelError(
                    f"unknown likelihood {value!r}"
                ) from None
        if not 0.0 <= value <= 1.0:
            raise EthicsModelError("likelihood must be in [0, 1]")
        return float(value)


class Severity:
    """Qualitative severity scale mapped to [0, 1]."""

    NEGLIGIBLE = 0.1
    MINOR = 0.3
    MODERATE = 0.5
    MAJOR = 0.8
    CATASTROPHIC = 1.0

    SCALE = {
        "negligible": NEGLIGIBLE,
        "minor": MINOR,
        "moderate": MODERATE,
        "major": MAJOR,
        "catastrophic": CATASTROPHIC,
    }

    @classmethod
    def parse(cls, value: float | str) -> float:
        if isinstance(value, str):
            try:
                return cls.SCALE[value.lower()]
            except KeyError:
                raise EthicsModelError(
                    f"unknown severity {value!r}"
                ) from None
        if not 0.0 <= value <= 1.0:
            raise EthicsModelError("severity must be in [0, 1]")
        return float(value)


@dataclasses.dataclass(frozen=True)
class HarmInstance:
    """A concrete potential harm to one stakeholder.

    ``kind`` is a §5.3 harm code abbreviation (I, PA, DA, SI, RH, BC);
    ``mitigation`` in [0, 1] is the fraction of likelihood removed by
    safeguards (0 = unmitigated).
    """

    description: str
    kind: str
    stakeholder_id: str
    likelihood: float
    severity: float
    mitigation: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in HARM_ABBREVS:
            raise EthicsModelError(
                f"unknown harm kind {self.kind!r}; one of {HARM_ABBREVS}"
            )
        object.__setattr__(
            self, "likelihood", Likelihood.parse(self.likelihood)
        )
        object.__setattr__(
            self, "severity", Severity.parse(self.severity)
        )
        if not 0.0 <= self.mitigation <= 1.0:
            raise EthicsModelError("mitigation must be in [0, 1]")
        if not self.description:
            raise EthicsModelError("harm description must be non-empty")

    @property
    def raw_risk(self) -> float:
        """Unmitigated risk magnitude (likelihood × severity)."""
        return self.likelihood * self.severity

    @property
    def residual_risk(self) -> float:
        """Risk remaining after mitigation."""
        return clamp(
            self.likelihood * (1.0 - self.mitigation) * self.severity,
            0.0,
            1.0,
        )

    def mitigated(self, additional: float) -> "HarmInstance":
        """A copy with *additional* mitigation composed in.

        Mitigations compose multiplicatively on the remaining
        likelihood: applying 0.5 twice leaves 25% of the original.
        """
        if not 0.0 <= additional <= 1.0:
            raise EthicsModelError("mitigation must be in [0, 1]")
        remaining = (1.0 - self.mitigation) * (1.0 - additional)
        return dataclasses.replace(self, mitigation=1.0 - remaining)


@dataclasses.dataclass(frozen=True)
class BenefitInstance:
    """A concrete potential benefit.

    ``kind`` is a §5.4 benefit code abbreviation (R, U, DM, AT);
    ``beneficiary`` names who gains (a stakeholder id or "society").
    ``magnitude`` in [0, 1] scores the expected benefit.
    """

    description: str
    kind: str
    beneficiary: str
    magnitude: float
    likelihood: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in BENEFIT_ABBREVS:
            raise EthicsModelError(
                f"unknown benefit kind {self.kind!r}; "
                f"one of {BENEFIT_ABBREVS}"
            )
        if not 0.0 <= self.magnitude <= 1.0:
            raise EthicsModelError("magnitude must be in [0, 1]")
        object.__setattr__(
            self, "likelihood", Likelihood.parse(self.likelihood)
        )
        if not self.description:
            raise EthicsModelError(
                "benefit description must be non-empty"
            )

    @property
    def expected_value(self) -> float:
        return self.magnitude * self.likelihood
