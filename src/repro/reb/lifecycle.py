"""REB submission lifecycle: the stateful process around a review.

:mod:`repro.reb.workflow` decides *what* a board concludes; this
module models the administrative process around that decision — the
part researchers actually experience. A :class:`SubmissionCase`
advances through a strict state machine::

    draft ──submit──▶ submitted ──triage──▶ exempt            (terminal)
                                └─────────▶ in-review
    in-review ──decide──▶ approved                            (terminal)
                        ├▶ conditions-pending ──satisfy──▶ approved
                        ├▶ rejected ──appeal──▶ in-review   (once)
                        └▶ referred ──advice──▶ in-review
    approved ──amend──▶ in-review                 (material changes)

Illegal transitions raise, every transition is recorded with the day
it happened, and the case exposes the paper's key process quantity:
days from submission to a final decision.
"""

from __future__ import annotations

import dataclasses

from ..errors import REBError
from .workflow import Decision, REBWorkflow, Submission

__all__ = ["CaseState", "Transition", "SubmissionCase"]


class CaseState:
    """States of a submission case."""

    DRAFT = "draft"
    SUBMITTED = "submitted"
    EXEMPT = "exempt"
    IN_REVIEW = "in-review"
    CONDITIONS_PENDING = "conditions-pending"
    APPROVED = "approved"
    REJECTED = "rejected"
    REFERRED = "referred"

    TERMINAL = (EXEMPT, APPROVED, REJECTED)


@dataclasses.dataclass(frozen=True)
class Transition:
    """One recorded state change."""

    day: int
    from_state: str
    to_state: str
    note: str = ""


class SubmissionCase:
    """A submission's administrative journey through a board."""

    def __init__(
        self, submission: Submission, workflow: REBWorkflow
    ) -> None:
        self.submission = submission
        self.workflow = workflow
        self.state = CaseState.DRAFT
        self.history: list[Transition] = []
        self.conditions: tuple[str, ...] = ()
        self._submitted_day: int | None = None
        self._decided_day: int | None = None
        self._appealed = False

    # -- helpers ---------------------------------------------------------
    def _move(self, to_state: str, day: int, note: str = "") -> None:
        if self.history and day < self.history[-1].day:
            raise REBError("transitions must not go back in time")
        self.history.append(
            Transition(
                day=day,
                from_state=self.state,
                to_state=to_state,
                note=note,
            )
        )
        self.state = to_state

    def _require(self, *states: str) -> None:
        if self.state not in states:
            raise REBError(
                f"operation invalid in state {self.state!r} "
                f"(needs one of {states})"
            )

    @property
    def is_terminal(self) -> bool:
        return self.state in CaseState.TERMINAL

    @property
    def days_to_decision(self) -> int | None:
        """Days from submission to terminal decision (None while
        open)."""
        if self._submitted_day is None or self._decided_day is None:
            return None
        return self._decided_day - self._submitted_day

    # -- transitions -------------------------------------------------------
    def submit(self, day: int) -> None:
        self._require(CaseState.DRAFT)
        self._submitted_day = day
        self._move(CaseState.SUBMITTED, day, "submitted to board")

    def triage(self, day: int) -> None:
        """Apply the board's trigger policy."""
        self._require(CaseState.SUBMITTED)
        if self.workflow.needs_review(self.submission):
            self._move(CaseState.IN_REVIEW, day, "review required")
        else:
            self._decided_day = day
            self._move(
                CaseState.EXEMPT,
                day,
                f"exempt under {self.workflow.policy.value} trigger",
            )

    def decide(self, day: int) -> Decision:
        """Board renders its decision."""
        self._require(CaseState.IN_REVIEW)
        outcome = self.workflow.review(self.submission)
        if outcome.decision is Decision.APPROVED:
            self._decided_day = day
            self._move(CaseState.APPROVED, day, outcome.rationale)
        elif outcome.decision is Decision.APPROVED_WITH_CONDITIONS:
            self.conditions = outcome.conditions
            self._move(
                CaseState.CONDITIONS_PENDING, day, outcome.rationale
            )
        elif outcome.decision is Decision.REJECTED:
            self._decided_day = day
            self._move(CaseState.REJECTED, day, outcome.rationale)
        elif outcome.decision is Decision.REFERRED:
            self._move(CaseState.REFERRED, day, outcome.rationale)
        else:  # pragma: no cover - EXEMPT handled in triage
            raise REBError("unexpected decision from review")
        return outcome.decision

    def satisfy_conditions(self, day: int, evidence: str) -> None:
        """Researcher demonstrates the conditions are met."""
        self._require(CaseState.CONDITIONS_PENDING)
        if not evidence.strip():
            raise REBError("evidence of compliance is required")
        self.conditions = ()
        self._decided_day = day
        self._move(
            CaseState.APPROVED, day, f"conditions met: {evidence}"
        )

    def appeal(self, day: int, grounds: str) -> None:
        """One appeal against rejection returns the case to review."""
        self._require(CaseState.REJECTED)
        if self._appealed:
            raise REBError("a case may be appealed only once")
        if not grounds.strip():
            raise REBError("appeals need grounds")
        self._appealed = True
        self._decided_day = None
        self._move(CaseState.IN_REVIEW, day, f"appeal: {grounds}")

    def external_advice(self, day: int, advice: str) -> None:
        """Referred cases return to review once advice arrives."""
        self._require(CaseState.REFERRED)
        if not advice.strip():
            raise REBError("record the advice received")
        self._move(
            CaseState.IN_REVIEW, day, f"external advice: {advice}"
        )

    def amend(self, day: int, change: str) -> None:
        """Material changes to approved research reopen review —
        the continuing-review obligation."""
        self._require(CaseState.APPROVED)
        if not change.strip():
            raise REBError("describe the material change")
        self._decided_day = None
        self._move(
            CaseState.IN_REVIEW, day, f"amendment: {change}"
        )

    def transcript(self) -> str:
        """Human-readable case history."""
        lines = [
            f"Case for submission {self.submission.id!r} "
            f"({self.workflow.board.name})"
        ]
        for transition in self.history:
            note = f" — {transition.note}" if transition.note else ""
            lines.append(
                f"  day {transition.day:>4}: "
                f"{transition.from_state} -> "
                f"{transition.to_state}{note}"
            )
        lines.append(f"  current state: {self.state}")
        return "\n".join(lines)
