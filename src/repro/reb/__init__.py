"""REB modelling: boards, review workflow, trigger-policy ablation."""

from .lifecycle import CaseState, SubmissionCase, Transition
from .board import Board, Reviewer, ictr_board, medical_style_board
from .policy_experiment import (
    PolicyComparison,
    run_policy_experiment,
    submission_from_entry,
)
from .simulation import SimulationResult, simulate_reb_year
from .workflow import (
    Decision,
    REBWorkflow,
    ReviewOutcome,
    Submission,
    TriggerPolicy,
)

__all__ = [
    "Board",
    "CaseState",
    "Decision",
    "PolicyComparison",
    "REBWorkflow",
    "ReviewOutcome",
    "Reviewer",
    "SimulationResult",
    "Submission",
    "SubmissionCase",
    "Transition",
    "TriggerPolicy",
    "ictr_board",
    "medical_style_board",
    "run_policy_experiment",
    "simulate_reb_year",
    "submission_from_entry",
]
