"""REB submission workflow: triage → review → decision.

Models the lifecycle the paper discusses: a submission arrives, the
board's trigger policy decides whether it needs review at all (the
"human subjects" trigger the paper criticises versus the risk-based
trigger it recommends), expert review produces a decision with
conditions, and the outcome carries the latency implied by the board's
service level.
"""

from __future__ import annotations

import dataclasses
import enum

from ..errors import REBError
from ..observability import audit_event
from .board import Board

__all__ = [
    "TriggerPolicy",
    "Decision",
    "Submission",
    "ReviewOutcome",
    "REBWorkflow",
]


class TriggerPolicy(enum.Enum):
    """What obliges a submission to undergo review."""

    #: Review only research with direct human subjects — the narrow
    #: policy the paper's §6 calls "unhelpful".
    HUMAN_SUBJECTS = "human-subjects"
    #: Review any research with potential to harm humans, even absent
    #: direct human subjects — the paper's recommendation.
    RISK_BASED = "risk-based"


class Decision(enum.Enum):
    """Possible review outcomes."""

    APPROVED = "approved"
    APPROVED_WITH_CONDITIONS = "approved-with-conditions"
    EXEMPT = "exempt"
    REJECTED = "rejected"
    REFERRED = "referred"  # board lacks expertise; external advice


@dataclasses.dataclass(frozen=True)
class Submission:
    """A project submitted for review.

    The flags summarise what the triage and review steps need:
    ``human_subjects`` (direct subjects such as survey participants),
    ``potential_human_harm`` (any stakeholder could be harmed),
    ``risk_score`` (total residual risk from the assessment engine),
    ``uses_illicit_data``, and the safeguard summary.
    """

    id: str
    title: str
    human_subjects: bool
    potential_human_harm: bool
    risk_score: float
    uses_illicit_data: bool = True
    safeguard_codes: tuple[str, ...] = ()
    may_be_illegal: bool = False
    area: str = "ictr"

    def __post_init__(self) -> None:
        if not self.id:
            raise REBError("submission id must be non-empty")
        if self.risk_score < 0:
            raise REBError("risk score must be non-negative")


@dataclasses.dataclass(frozen=True)
class ReviewOutcome:
    """The board's decision plus process metadata."""

    submission: Submission
    decision: Decision
    days_taken: int
    conditions: tuple[str, ...] = ()
    rationale: str = ""
    reviewed: bool = True

    @property
    def approved(self) -> bool:
        return self.decision in (
            Decision.APPROVED,
            Decision.APPROVED_WITH_CONDITIONS,
        )


class REBWorkflow:
    """Route submissions through a board under a trigger policy."""

    #: Residual-risk level above which approval requires conditions.
    CONDITION_THRESHOLD = 0.1
    #: Residual-risk level above which the project is rejected
    #: outright unless strong safeguards are in place.
    REJECT_THRESHOLD = 1.0

    def __init__(
        self, board: Board, policy: TriggerPolicy | None = None
    ) -> None:
        self.board = board
        if policy is None:
            policy = (
                TriggerPolicy.HUMAN_SUBJECTS
                if board.human_subjects_trigger_only
                else TriggerPolicy.RISK_BASED
            )
        self.policy = policy

    # -- triage ----------------------------------------------------------
    def needs_review(self, submission: Submission) -> bool:
        """Does the trigger policy require this submission be reviewed?

        Under the narrow policy, work like the booter-dump studies is
        waved through as "no human subjects" even though humans could
        be harmed — exactly the gap the paper documents.
        """
        if self.policy is TriggerPolicy.HUMAN_SUBJECTS:
            return submission.human_subjects
        return (
            submission.human_subjects
            or submission.potential_human_harm
        )

    # -- review -------------------------------------------------------------
    def review(self, submission: Submission) -> ReviewOutcome:
        """Triage and (when triggered) review one submission.

        Each state transition leaves an audit event — ``reb/triaged``
        with the trigger outcome, then ``reb/decision`` with the
        decision, latency and condition count — so a persisted trail
        reconstructs the board's full caseload.
        """
        triggered = self.needs_review(submission)
        audit_event(
            "reb",
            "triaged",
            subject=submission.id,
            policy=self.policy.value,
            needs_review=triggered,
        )
        outcome = self._decide(submission, triggered)
        audit_event(
            "reb",
            "decision",
            subject=submission.id,
            decision=outcome.decision.value,
            reviewed=outcome.reviewed,
            days_taken=outcome.days_taken,
            conditions=len(outcome.conditions),
        )
        return outcome

    def _decide(
        self, submission: Submission, triggered: bool
    ) -> ReviewOutcome:
        """The decision logic behind :meth:`review`."""
        if not triggered:
            return ReviewOutcome(
                submission=submission,
                decision=Decision.EXEMPT,
                days_taken=1,
                rationale=(
                    "exempt under the "
                    f"{self.policy.value} trigger policy"
                ),
                reviewed=False,
            )
        if not self.board.has_expertise(submission.area):
            return ReviewOutcome(
                submission=submission,
                decision=Decision.REFERRED,
                days_taken=self.board.complex_case_days,
                rationale=(
                    "the board lacks expertise in "
                    f"{submission.area}; external advice required"
                ),
            )
        complex_case = (
            submission.may_be_illegal
            or submission.risk_score > self.CONDITION_THRESHOLD
        )
        days = self.board.review_days(complex_case)
        conditions: list[str] = []
        if submission.uses_illicit_data:
            if "SS" not in submission.safeguard_codes:
                conditions.append(
                    "store the data securely (encryption and access "
                    "control)"
                )
            if "P" not in submission.safeguard_codes:
                conditions.append(
                    "do not deanonymise or reveal identities"
                )
        if submission.may_be_illegal:
            conditions.append(
                "institutional legal sign-off and transparency about "
                "the planned activity"
            )
        if (
            submission.risk_score > self.REJECT_THRESHOLD
            and len(submission.safeguard_codes) < 2
        ):
            return ReviewOutcome(
                submission=submission,
                decision=Decision.REJECTED,
                days_taken=days,
                rationale=(
                    "residual risk is too high for the safeguards "
                    "offered; redesign and resubmit"
                ),
            )
        if conditions or submission.risk_score > self.CONDITION_THRESHOLD:
            return ReviewOutcome(
                submission=submission,
                decision=Decision.APPROVED_WITH_CONDITIONS,
                days_taken=days,
                conditions=tuple(conditions),
                rationale="approved subject to the listed conditions",
            )
        return ReviewOutcome(
            submission=submission,
            decision=Decision.APPROVED,
            days_taken=days,
            rationale="low-risk and adequately safeguarded",
        )

    def review_all(
        self, submissions: list[Submission]
    ) -> list[ReviewOutcome]:
        return [self.review(s) for s in submissions]
