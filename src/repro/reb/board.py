"""Research Ethics Board model (§2 and §6 of the paper).

The paper contrasts two kinds of REB: boards "structured around
serving [the medical] original purpose" that lack ICTR expertise and
"may introduce many months of delay", and boards (like Cambridge's)
with ICTR specialists that "aim to provide a response in five working
days for simple cases". :class:`Board` models composition, expertise
and review latency; the workflow in :mod:`repro.reb.workflow` routes
submissions through a board.
"""

from __future__ import annotations

import dataclasses

from ..errors import REBError

__all__ = ["Reviewer", "Board", "medical_style_board", "ictr_board"]


@dataclasses.dataclass(frozen=True)
class Reviewer:
    """One board member with expertise areas."""

    id: str
    name: str
    expertise: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.id:
            raise REBError("reviewer id must be non-empty")

    def can_assess(self, area: str) -> bool:
        return area in self.expertise


@dataclasses.dataclass(frozen=True)
class Board:
    """An REB with members and service-level behaviour.

    ``simple_case_days`` / ``complex_case_days`` model the review
    latency; ``human_subjects_trigger_only`` reproduces the flawed
    policy the paper criticises — reviewing only research with direct
    human subjects rather than any research with potential to harm
    humans.
    """

    id: str
    name: str
    members: tuple[Reviewer, ...]
    simple_case_days: int
    complex_case_days: int
    human_subjects_trigger_only: bool = False

    def __post_init__(self) -> None:
        if not self.members:
            raise REBError("a board needs at least one member")
        if self.simple_case_days <= 0 or self.complex_case_days <= 0:
            raise REBError("review latencies must be positive")
        if self.complex_case_days < self.simple_case_days:
            raise REBError(
                "complex cases cannot be faster than simple ones"
            )

    def has_expertise(self, area: str) -> bool:
        return any(m.can_assess(area) for m in self.members)

    @property
    def ictr_capable(self) -> bool:
        """Whether the board can competently assess ICT research."""
        return self.has_expertise("ictr")

    def reviewers_for(self, area: str) -> tuple[Reviewer, ...]:
        return tuple(m for m in self.members if m.can_assess(area))

    def review_days(self, complex_case: bool) -> int:
        """Expected calendar days to a decision.

        A board without ICTR expertise treats every ICTR case as
        complex (it must seek external advice), matching the paper's
        "many months of delay" complaint.
        """
        if complex_case or not self.ictr_capable:
            return self.complex_case_days
        return self.simple_case_days


def medical_style_board() -> Board:
    """The legacy board the paper criticises: medical expertise only,
    slow, and triggered solely by direct human subjects."""
    return Board(
        id="medical-reb",
        name="Legacy medical-model REB",
        members=(
            Reviewer(
                id="chair-med",
                name="Chair (clinical trials)",
                expertise=("medicine", "clinical-trials"),
            ),
            Reviewer(
                id="ethicist",
                name="Bioethicist",
                expertise=("medicine", "consent"),
            ),
            Reviewer(
                id="lay-member",
                name="Lay member",
                expertise=(),
            ),
        ),
        simple_case_days=60,
        complex_case_days=180,
        human_subjects_trigger_only=True,
    )


def ictr_board() -> Board:
    """An ICTR-capable board in the style the paper recommends
    (five working days for simple cases, risk-based trigger)."""
    return Board(
        id="ictr-reb",
        name="ICTR-capable REB",
        members=(
            Reviewer(
                id="chair-ictr",
                name="Chair (computer science)",
                expertise=("ictr", "measurement", "security"),
            ),
            Reviewer(
                id="lawyer",
                name="Legal specialist",
                expertise=("law", "data-protection"),
            ),
            Reviewer(
                id="criminologist",
                name="Criminologist",
                expertise=("ictr", "criminology", "consent"),
            ),
            Reviewer(
                id="lay-member",
                name="Lay member",
                expertise=(),
            ),
        ),
        simple_case_days=5,
        complex_case_days=30,
        human_subjects_trigger_only=False,
    )
