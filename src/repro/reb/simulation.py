"""REB queue simulation: board capacity and policy over a year.

The paper's complaint about legacy REBs is not only *what* they
review but *how slowly* ("many months of delay"). This deterministic
discrete-time simulation feeds a year of submissions into a board
with finite review capacity and measures queueing delay, backlog and
decision mix — so the latency claims of §2 become a measurable
trade-off between trigger policy (how much is reviewed) and board
capacity/expertise (how fast each review is).
"""

from __future__ import annotations

import dataclasses
import random

from ..errors import REBError
from .board import Board
from .workflow import REBWorkflow, Submission, TriggerPolicy

__all__ = ["SimulationResult", "simulate_reb_year"]


@dataclasses.dataclass(frozen=True)
class SimulationResult:
    """Aggregate outcome of one simulated year."""

    submissions: int
    reviewed: int
    exempted: int
    mean_queue_days: float
    mean_total_days: float
    max_backlog: int
    decisions: dict[str, int]

    def describe(self) -> str:
        """One-line rendering of the simulated year."""
        return (
            f"{self.submissions} submissions: {self.reviewed} "
            f"reviewed, {self.exempted} exempt; mean wait "
            f"{self.mean_queue_days:.1f}d in queue, "
            f"{self.mean_total_days:.1f}d total; peak backlog "
            f"{self.max_backlog}; decisions {self.decisions}"
        )


def _synthetic_submission(rng: random.Random, index: int) -> Submission:
    """A plausible ICTR submission mix.

    ~15% direct human subjects (surveys), ~70% potential human harm,
    risk scores concentrated low with a heavy-ish tail.
    """
    human_subjects = rng.random() < 0.15
    potential_harm = human_subjects or rng.random() < 0.65
    risk = round(min(2.0, rng.expovariate(3.0)), 3) if potential_harm else 0.0
    safeguard_pool = ("SS", "P", "CS")
    safeguards = tuple(
        code for code in safeguard_pool if rng.random() < 0.5
    )
    return Submission(
        id=f"sim-{index:04d}",
        title=f"Synthetic submission {index}",
        human_subjects=human_subjects,
        potential_human_harm=potential_harm,
        risk_score=risk,
        uses_illicit_data=rng.random() < 0.4,
        safeguard_codes=safeguards,
        may_be_illegal=rng.random() < 0.03,
    )


def simulate_reb_year(
    board: Board,
    policy: TriggerPolicy,
    *,
    submissions_per_week: int = 3,
    concurrent_reviews: int = 4,
    weeks: int = 52,
    seed: int = 0,
) -> SimulationResult:
    """Simulate *weeks* of arrivals into a finite-capacity board.

    Reviews occupy one of ``concurrent_reviews`` slots for the
    board's review duration (from :meth:`Board.review_days`); queued
    submissions wait FIFO. Deterministic for a given seed.
    """
    if submissions_per_week < 1 or concurrent_reviews < 1:
        raise REBError("rates and capacity must be positive")
    if weeks < 1:
        raise REBError("simulate at least one week")
    rng = random.Random(seed)
    workflow = REBWorkflow(board, policy)
    # (arrival_day, submission)
    arrivals = [
        (week * 7 + rng.randrange(5), _synthetic_submission(rng, i))
        for week in range(weeks)
        for i, __ in enumerate(
            range(submissions_per_week),
            start=week * submissions_per_week,
        )
    ]
    arrivals.sort(key=lambda pair: pair[0])

    slots: list[int] = [0] * concurrent_reviews  # day each slot frees
    queue_days: list[float] = []
    total_days: list[float] = []
    decisions: dict[str, int] = {}
    reviewed = 0
    exempted = 0
    max_backlog = 0
    start_days: list[int] = []  # start day of every reviewed item

    for arrival_day, submission in arrivals:
        if not workflow.needs_review(submission):
            exempted += 1
            decisions["exempt"] = decisions.get("exempt", 0) + 1
            continue
        # Assign the earliest-free slot (FIFO service).
        slot_index = min(range(len(slots)), key=lambda i: slots[i])
        start_day = max(arrival_day, slots[slot_index])
        outcome = workflow.review(submission)
        finish_day = start_day + outcome.days_taken
        slots[slot_index] = finish_day
        start_days.append(start_day)
        # Backlog at this instant: prior arrivals still waiting to
        # start (their start day lies in the future).
        waiting = sum(1 for day in start_days if day > arrival_day)
        max_backlog = max(max_backlog, waiting)
        queue_days.append(start_day - arrival_day)
        total_days.append(finish_day - arrival_day)
        decisions[outcome.decision.value] = (
            decisions.get(outcome.decision.value, 0) + 1
        )
        reviewed += 1

    return SimulationResult(
        submissions=len(arrivals),
        reviewed=reviewed,
        exempted=exempted,
        mean_queue_days=(
            sum(queue_days) / len(queue_days) if queue_days else 0.0
        ),
        mean_total_days=(
            sum(total_days) / len(total_days) if total_days else 0.0
        ),
        max_backlog=max_backlog,
        decisions=decisions,
    )
