"""REB trigger-policy ablation over the Table 1 corpus (exp E13).

The paper's §6 argues: "This narrow focus on whether the research
involves 'human subjects', rather than a risk based analysis of the
potential harms to human participants is unhelpful. If research has
potential to harm humans, even in absence of direct human subjects,
REB approval should be sought."

This experiment encodes each Table 1 case study as an REB submission
and runs both trigger policies, measuring coverage: how many of the
studies with potential human harm each policy actually reviews. The
risk-based policy must dominate (review a strict superset), and the
two really-exempted studies ([55], [110]) must flip from exempt to
reviewed — the paper's concrete complaint.
"""

from __future__ import annotations

import dataclasses

from ..assessment import corpus_profiles
from ..corpus import CaseStudyEntry, Corpus
from ..legal import DataProfile
from .board import Board, ictr_board
from .workflow import REBWorkflow, Submission, TriggerPolicy

__all__ = [
    "submission_from_entry",
    "PolicyComparison",
    "run_policy_experiment",
]

#: Entries whose authors ran surveys/interviews — the only direct
#: human subjects in the corpus (§5.5).
_HUMAN_SUBJECT_ENTRIES = frozenset(
    {"guess-again-kelley", "tangled-web-das"}
)

#: Risk contributed per coded harm kind (heuristic, documented).
_HARM_WEIGHT = {
    "I": 0.4,
    "PA": 0.2,
    "DA": 0.3,
    "SI": 0.3,
    "RH": 0.2,
    "BC": 0.1,
}


def submission_from_entry(entry: CaseStudyEntry) -> Submission:
    """Encode one case study as an REB submission.

    Entries outside Table 1 (extensions) have no recorded data
    profile; they get a conservative default (personal data assumed
    present), erring toward review.
    """
    profile = corpus_profiles().get(
        entry.id, DataProfile(contains_personal_data=True)
    )
    harms = entry.codes("harms")
    risk = sum(_HARM_WEIGHT[kind] for kind in harms)
    potential_human_harm = bool(harms) or profile.any_personal_data
    return Submission(
        id=entry.id,
        title=entry.source_label,
        human_subjects=entry.id in _HUMAN_SUBJECT_ENTRIES,
        potential_human_harm=potential_human_harm,
        risk_score=risk,
        uses_illicit_data=entry.used_data,
        safeguard_codes=entry.codes("safeguards"),
        may_be_illegal=profile.collected_by_researcher_intrusion,
    )


@dataclasses.dataclass(frozen=True)
class PolicyComparison:
    """Coverage of the two trigger policies over the corpus."""

    total: int
    at_risk: int
    reviewed_human_subjects: tuple[str, ...]
    reviewed_risk_based: tuple[str, ...]
    flipped: tuple[str, ...]  # exempt under HS, reviewed under RB

    @property
    def human_subjects_coverage(self) -> float:
        """Fraction of at-risk studies the narrow policy reviews."""
        if not self.at_risk:
            return 1.0
        hits = sum(
            1
            for s in self.reviewed_human_subjects
            if s in self.reviewed_risk_based
        )
        return hits / self.at_risk

    @property
    def risk_based_coverage(self) -> float:
        if not self.at_risk:
            return 1.0
        return len(self.reviewed_risk_based) / self.at_risk

    @property
    def risk_based_dominates(self) -> bool:
        return set(self.reviewed_human_subjects) <= set(
            self.reviewed_risk_based
        )

    def describe(self) -> str:
        """One-line rendering of the coverage comparison."""
        return (
            f"{self.at_risk}/{self.total} studies carry potential "
            f"human harm; human-subjects trigger reviews "
            f"{len(self.reviewed_human_subjects)} "
            f"({self.human_subjects_coverage:.0%} of at-risk), "
            f"risk-based trigger reviews "
            f"{len(self.reviewed_risk_based)} "
            f"({self.risk_based_coverage:.0%}); "
            f"{len(self.flipped)} studies flip from exempt to "
            "reviewed"
        )


def run_policy_experiment(
    corpus: Corpus, board: Board | None = None
) -> PolicyComparison:
    """Run both trigger policies over the corpus (experiment E13)."""
    board = board or ictr_board()
    submissions = [submission_from_entry(e) for e in corpus]
    narrow = REBWorkflow(board, TriggerPolicy.HUMAN_SUBJECTS)
    broad = REBWorkflow(board, TriggerPolicy.RISK_BASED)
    reviewed_narrow = tuple(
        s.id for s in submissions if narrow.needs_review(s)
    )
    reviewed_broad = tuple(
        s.id for s in submissions if broad.needs_review(s)
    )
    at_risk = [s for s in submissions if s.potential_human_harm]
    flipped = tuple(
        s.id
        for s in submissions
        if broad.needs_review(s) and not narrow.needs_review(s)
    )
    return PolicyComparison(
        total=len(submissions),
        at_risk=len(at_risk),
        reviewed_human_subjects=reviewed_narrow,
        reviewed_risk_based=reviewed_broad,
        flipped=flipped,
    )
