"""Research-project model for ethics/legal assessment.

A :class:`ResearchProject` bundles everything the engines need: the
data profile (legal facts), stakeholders, harm/benefit register,
justification facts, planned safeguards, and the jurisdictions in
scope. It is the input to :func:`repro.assessment.engine.assess_project`
and to the report generators.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

from ..errors import AssessmentError
from ..ethics import (
    BenefitInstance,
    HarmInstance,
    JustificationFacts,
    RightsContext,
    StakeholderRegistry,
    default_stakeholders,
)
from ..legal import DataProfile, JurisdictionSet, relevant_jurisdictions

__all__ = ["ResearchProject", "PlannedSafeguards"]


@dataclasses.dataclass(frozen=True)
class PlannedSafeguards:
    """The §5.2 safeguard families as planned controls.

    Mirrors the codebook's SS / P / CS codes plus the operational
    details the GDPR checker and report generators need.
    """

    secure_storage: bool = False
    encryption_at_rest: bool = False
    access_control: bool = False
    privacy_preserved: bool = False  # no deanonymisation, no identities
    pseudonymisation: bool = False
    data_minimisation: bool = False
    controlled_sharing: bool = False
    acceptable_use_policy: str = ""
    retention_limit_days: int | None = None

    def codes(self) -> tuple[str, ...]:
        """The Table 1 safeguard abbreviations this plan earns."""
        result: list[str] = []
        if self.secure_storage or (
            self.encryption_at_rest and self.access_control
        ):
            result.append("SS")
        if self.privacy_preserved:
            result.append("P")
        if self.controlled_sharing:
            result.append("CS")
        return tuple(result)

    def mitigation_for(self, harm_kind: str) -> float:
        """Fraction of likelihood these controls remove per harm kind.

        The numbers are deliberately conservative heuristics; they are
        surfaced (not hidden) in generated reports.
        """
        mitigation = 0.0
        if harm_kind == "SI":  # sensitive information exposure
            if self.secure_storage or self.encryption_at_rest:
                mitigation += 0.4
            if self.privacy_preserved:
                mitigation += 0.3
            if self.data_minimisation:
                mitigation += 0.1
        elif harm_kind == "DA":  # de-anonymisation
            if self.privacy_preserved:
                mitigation += 0.5
            if self.pseudonymisation:
                mitigation += 0.3
        elif harm_kind == "PA":  # potential abuse of results
            if self.controlled_sharing:
                mitigation += 0.5
        elif harm_kind == "RH":  # researcher harm
            if self.secure_storage:
                mitigation += 0.2
        elif harm_kind == "BC":  # behavioural change
            mitigation += 0.0
        elif harm_kind == "I":  # illicit measurement (historic fact)
            mitigation += 0.0
        return min(mitigation, 0.9)


@dataclasses.dataclass(frozen=True)
class ResearchProject:
    """A proposed research activity using data of illicit origin."""

    title: str
    research_question: str
    data_description: str
    profile: DataProfile
    stakeholders: StakeholderRegistry = dataclasses.field(
        default_factory=default_stakeholders
    )
    harms: tuple[HarmInstance, ...] = ()
    benefits: tuple[BenefitInstance, ...] = ()
    justification_facts: JustificationFacts = dataclasses.field(
        default_factory=JustificationFacts
    )
    safeguards: PlannedSafeguards = dataclasses.field(
        default_factory=PlannedSafeguards
    )
    jurisdictions: JurisdictionSet = dataclasses.field(
        default_factory=relevant_jurisdictions
    )
    rights_context: RightsContext = dataclasses.field(
        default_factory=RightsContext
    )
    reb_approved: bool = False
    has_ethics_section: bool = False

    def __post_init__(self) -> None:
        if not self.title:
            raise AssessmentError("project title must be non-empty")
        if not self.research_question:
            raise AssessmentError("state the research question")
        for harm in self.harms:
            if harm.stakeholder_id not in self.stakeholders:
                raise AssessmentError(
                    f"harm references unknown stakeholder "
                    f"{harm.stakeholder_id!r}"
                )

    def mitigated_harms(self) -> tuple[HarmInstance, ...]:
        """The harm register with planned safeguards applied."""
        return tuple(
            harm.mitigated(self.safeguards.mitigation_for(harm.kind))
            for harm in self.harms
        )

    def with_safeguards(
        self, safeguards: PlannedSafeguards
    ) -> "ResearchProject":
        """A copy of the project with a different safeguard plan."""
        return dataclasses.replace(self, safeguards=safeguards)

    def with_harms(
        self, harms: Sequence[HarmInstance]
    ) -> "ResearchProject":
        return dataclasses.replace(self, harms=tuple(harms))
