"""Data profiles for every Table 1 entry, and the E10 validator.

Each profile encodes the §4 facts about the dataset a case study used
(what it contained, how it arose, what the researchers did). The
validator re-derives the applicable legal issues from those facts via
the rules engine and compares them with the Table 1 legal bullets —
a first-principles consistency check on both the engine and the
bullet-column reconstruction (experiment E10 in DESIGN.md).

The comparison runs under the US jurisdiction: Table 1 codes data
privacy in the narrow personally-identifiable sense, discussing the
jurisdiction-specific IP-address question (Germany/EU) in prose
instead, so the IP-as-personal-data rule must not fire here.
"""

from __future__ import annotations

import dataclasses

from ..corpus import Corpus, DataOrigin
from ..errors import AssessmentError
from ..legal import DataProfile, JurisdictionSet, analyze_legal
from ..policy.defaults import table1_issue_ids

__all__ = [
    "corpus_profiles",
    "profile_for",
    "validate_legal_reconstruction",
    "ReconstructionCheck",
]

_EXPLOIT = DataOrigin.VULNERABILITY_EXPLOITATION
_LEAK = DataOrigin.UNAUTHORIZED_LEAK

#: Table 1 has six legal columns; contracts is discussed in §3 only.
#: The pack marks each issue with a ``table1`` flag.
_TABLE_ISSUES = table1_issue_ids()

_PASSWORD_DUMP = DataProfile(
    origin=_LEAK,
    contains_credentials=True,
    contains_email_addresses=True,
    publicly_available=True,
)

_BOOTER_DB = DataProfile(
    origin=_LEAK,
    contains_personal_data=True,
    contains_email_addresses=True,
    contains_ip_addresses=True,
    contains_private_messages=True,
    copyrighted_material=True,
    publicly_available=True,
)

_FORUM_DB = DataProfile(
    origin=_LEAK,
    contains_personal_data=True,
    contains_email_addresses=True,
    contains_private_messages=True,
    copyrighted_material=True,
    terrorism_related=True,
    may_contain_indecent_images=True,
    publicly_available=True,
)

_MANNING = DataProfile(
    origin=_LEAK,
    contains_personal_data=True,
    classified=True,
    terrorism_related=True,
    us_government_work=True,
    publicly_available=True,
)

_SNOWDEN = DataProfile(
    origin=_LEAK,
    contains_personal_data=True,
    classified=True,
    terrorism_related=True,
    copyrighted_material=True,  # GCHQ material is Crown copyright
    publicly_available=True,
)

_PANAMA = DataProfile(
    origin=_LEAK,
    contains_personal_data=True,
    contains_financial_records=True,
    copyrighted_material=True,
    state_sensitive=True,
    publicly_available=True,
)

_CARNA = DataProfile(
    origin=_EXPLOIT,
    contains_ip_addresses=True,
    publicly_available=True,
)

_PROFILES: dict[str, DataProfile] = {
    # Malware & exploitation
    "att-ipad": DataProfile(
        origin=_EXPLOIT,
        contains_email_addresses=True,
        collected_by_researcher_intrusion=True,
    ),
    "pushdo-cutwail": DataProfile(
        origin=_EXPLOIT,
        contains_email_addresses=True,
        contains_malware_or_exploits=True,
        copyrighted_material=True,
    ),
    "exploit-kits": DataProfile(
        origin=_LEAK,
        contains_malware_or_exploits=True,
        copyrighted_material=True,
        publicly_available=True,
    ),
    "carna-caida": _CARNA,
    "carna-telescope": _CARNA,
    "carna-census-note": _CARNA,
    "carna-menlo": _CARNA,
    "malware-metrics": DataProfile(
        origin=_LEAK,
        contains_malware_or_exploits=True,
        copyrighted_material=True,
        publicly_available=True,
        plans_controlled_sharing=True,
    ),
    # Password dumps
    "pcfg-weir": dataclasses.replace(
        _PASSWORD_DUMP, plans_controlled_sharing=True
    ),
    "guess-again-kelley": _PASSWORD_DUMP,
    "tangled-web-das": _PASSWORD_DUMP,
    "measuring-ur": _PASSWORD_DUMP,
    "omen-durmuth": _PASSWORD_DUMP,
    # Leaked databases
    "underground-forums-motoyama": _FORUM_DB,
    "carding-forums-yip": dataclasses.replace(
        _FORUM_DB, terrorism_related=False
    ),
    "twbooter-karami": _BOOTER_DB,
    "booters-santanna": _BOOTER_DB,
    "booters-karami-stress": _BOOTER_DB,
    "patreon": DataProfile(
        origin=_LEAK,
        contains_personal_data=True,
        contains_email_addresses=True,
        contains_private_messages=True,
        copyrighted_material=True,
        publicly_available=True,
    ),
    "udp-ddos-thomas": DataProfile(
        origin=_LEAK,
        contains_email_addresses=True,
        contains_ip_addresses=True,
        publicly_available=True,
        plans_controlled_sharing=True,
    ),
    "cybercrime-markets-portnoff": _FORUM_DB,
    # Classified materials
    "manning-berger": _MANNING,
    "manning-barnard": _MANNING,
    "manning-talarico": _MANNING,
    "snowden-landau": _SNOWDEN,
    "snowden-schneier": _SNOWDEN,
    "snowden-rfc7624": _SNOWDEN,
    "snowden-walsh": _SNOWDEN,
    # Financial data
    "panama-omartian": _PANAMA,
    "panama-odonovan": _PANAMA,
}


def corpus_profiles() -> dict[str, DataProfile]:
    """Entry id → data profile for all 30 case studies."""
    return dict(_PROFILES)


def profile_for(entry_id: str) -> DataProfile:
    """The recorded data profile for one Table 1 entry."""
    try:
        return _PROFILES[entry_id]
    except KeyError:
        raise AssessmentError(
            f"no data profile recorded for entry {entry_id!r}"
        ) from None


@dataclasses.dataclass(frozen=True)
class ReconstructionCheck:
    """Comparison of derived vs. coded legal issues for one entry."""

    entry_id: str
    coded: tuple[str, ...]
    derived: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return set(self.coded) == set(self.derived)

    def describe(self) -> str:
        """One-line OK/FAIL rendering of the comparison."""
        mark = "OK " if self.ok else "FAIL"
        return (
            f"[{mark}] {self.entry_id}: coded={sorted(self.coded)} "
            f"derived={sorted(self.derived)}"
        )


def validate_legal_reconstruction(
    corpus: Corpus,
) -> list[ReconstructionCheck]:
    """Derive legal issues from profiles and compare with Table 1.

    Returns one check per entry; all should pass (experiment E10).
    """
    jurisdictions = JurisdictionSet.from_codes(["US"])
    checks: list[ReconstructionCheck] = []
    for entry in corpus:
        profile = _PROFILES.get(entry.id)
        if profile is None:
            # Entries outside Table 1 have no recorded profile; the
            # check fails loudly rather than raising, so the battery
            # stays total over extended corpora.
            checks.append(
                ReconstructionCheck(
                    entry_id=entry.id,
                    coded=entry.legal_issues,
                    derived=("<no-data-profile>",),
                )
            )
            continue
        report = analyze_legal(profile, jurisdictions)
        derived = tuple(
            issue
            for issue in report.applicable_issues()
            if issue in _TABLE_ISSUES
        )
        checks.append(
            ReconstructionCheck(
                entry_id=entry.id,
                coded=entry.legal_issues,
                derived=derived,
            )
        )
    return checks
