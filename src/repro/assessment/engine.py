"""The assessment engine: evaluate a project end to end.

:func:`assess_project` runs the legal rules engine, the Menlo
evaluation, the Keegan–Matias risk-benefit grid and the §5.1
justification critiques over a :class:`ResearchProject` and produces
an :class:`EthicsAssessment` — the machine-readable core from which
the ethics-section and REB-application generators work.

The verdict-folding policy (which facts escalate the verdict, which
actions and notes they emit, and in what order) is declarative data
in the policy pack; :func:`assess_with_policy` evaluates any compiled
pack, and :func:`assess_project` binds the default pack to preserve
the historical behaviour exactly.
"""

from __future__ import annotations

import dataclasses

from ..ethics import (
    MenloEvaluation,
    PrincipleFinding,
    RightRisk,
    RiskBenefitGrid,
    evaluate_all_justifications,
    JustificationVerdict,
    rights_at_risk,
)
from ..errors import AssessmentError
from ..legal import LegalReport
from ..observability import audit_event
from ..policy import assessment_facts, default_policy
from .project import ResearchProject

__all__ = [
    "EthicsAssessment",
    "Verdict",
    "assess_project",
    "assess_with_policy",
]


class Verdict:
    """Overall recommendation of the assessment."""

    PROCEED = "proceed"
    PROCEED_WITH_SAFEGUARDS = "proceed-with-safeguards"
    REQUIRES_REB = "requires-reb-review"
    DO_NOT_PROCEED = "do-not-proceed"

    ORDER = (
        PROCEED,
        PROCEED_WITH_SAFEGUARDS,
        REQUIRES_REB,
        DO_NOT_PROCEED,
    )
    _RANK = {verdict: index for index, verdict in enumerate(ORDER)}

    @classmethod
    def worst(cls, verdicts: list[str]) -> str:
        """The most severe of *verdicts* (``PROCEED`` when empty).

        Uses a precomputed rank map rather than ``ORDER.index`` per
        element; an unknown verdict raises
        :class:`~repro.errors.AssessmentError` naming the offending
        value.
        """
        if not verdicts:
            return cls.PROCEED
        rank = cls._RANK
        worst = 0
        for verdict in verdicts:
            position = rank.get(verdict)
            if position is None:
                raise AssessmentError(
                    f"unknown verdict {verdict!r}"
                )
            if position > worst:
                worst = position
        return cls.ORDER[worst]


@dataclasses.dataclass(frozen=True)
class EthicsAssessment:
    """The complete assessment output for one project."""

    project: ResearchProject
    legal: LegalReport
    menlo: tuple[PrincipleFinding, ...]
    grid: RiskBenefitGrid
    justifications: tuple[JustificationVerdict, ...]
    rights_risks: tuple[RightRisk, ...]
    verdict: str
    required_actions: tuple[str, ...]
    notes: tuple[str, ...]

    @property
    def applicable_legal_issues(self) -> tuple[str, ...]:
        return self.legal.applicable_issues()

    @property
    def acceptable_justifications(
        self,
    ) -> tuple[JustificationVerdict, ...]:
        return tuple(j for j in self.justifications if j.acceptable)

    def summary(self) -> str:
        """Terse multi-line summary of the whole assessment."""
        lines = [
            f"Assessment of: {self.project.title}",
            f"Verdict: {self.verdict}",
            f"Legal risk: {self.legal.overall_risk} "
            f"(issues: {', '.join(self.applicable_legal_issues) or 'none'})",
        ]
        for finding in self.menlo:
            lines.append(
                f"Menlo {finding.principle.value}: {finding.status}"
            )
        if self.required_actions:
            lines.append("Required actions:")
            lines.extend(f"  - {a}" for a in self.required_actions)
        for note in self.notes:
            lines.append(f"Note: {note}")
        return "\n".join(lines)


def assess_with_policy(
    project: ResearchProject, policy
) -> EthicsAssessment:
    """Run every engine over the project under a compiled *policy*.

    *policy* is a :class:`~repro.policy.CompiledPolicy` (or the
    duck-type compatible interpreter): it supplies the legal decision
    tables, the Menlo principle checks and the verdict-folding steps.
    """
    legal = policy.legal_report(
        project.profile,
        project.jurisdictions,
        reb_approved=project.reb_approved,
    )
    mitigated = project.mitigated_harms()
    menlo_eval = MenloEvaluation(
        project.stakeholders,
        mitigated,
        project.benefits,
        lawful=legal.lawful_with_safeguards,
        public_interest=(
            project.justification_facts.public_interest_case
        ),
        reproducible=project.safeguards.controlled_sharing,
    )
    menlo = policy.menlo_findings(menlo_eval)
    grid = RiskBenefitGrid(
        project.stakeholders, mitigated, project.benefits
    )
    justifications = evaluate_all_justifications(
        project.justification_facts
    )
    rights_risks = rights_at_risk(project.rights_context)

    scalars, enums = assessment_facts(
        legal=legal,
        menlo=menlo,
        grid=grid,
        justifications=justifications,
        rights_risks=rights_risks,
        reb_approved=project.reb_approved,
        has_ethics_section=project.has_ethics_section,
    )

    def collect_legal_mitigations(required: list[str]) -> None:
        for finding in legal.findings:
            for mitigation in finding.mitigations:
                if (
                    finding.applicable
                    and mitigation not in required
                ):
                    required.append(mitigation)

    def collect_menlo_recommendations(required: list[str]) -> None:
        for finding in menlo:
            for recommendation in finding.recommendations:
                if recommendation not in required:
                    required.append(recommendation)

    verdict, required, notes = policy.fold_verdict(
        scalars,
        enums,
        {
            "legal-mitigations": collect_legal_mitigations,
            "menlo-recommendations": collect_menlo_recommendations,
        },
    )
    audit_event(
        "assessment",
        "assessed",
        subject=project.title,
        verdict=verdict,
        legal_risk=legal.overall_risk,
        required_actions=len(required),
        rights_risks=len(rights_risks),
    )
    return EthicsAssessment(
        project=project,
        legal=legal,
        menlo=menlo,
        grid=grid,
        justifications=justifications,
        rights_risks=rights_risks,
        verdict=verdict,
        required_actions=tuple(required),
        notes=tuple(notes),
    )


def assess_project(project: ResearchProject) -> EthicsAssessment:
    """Run every engine over the project and combine the outcomes.

    Evaluates the default policy pack, which reproduces the paper's
    folding rules exactly (E10 golden parity).
    """
    return assess_with_policy(project, default_policy())
