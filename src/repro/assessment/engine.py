"""The assessment engine: evaluate a project end to end.

:func:`assess_project` runs the legal rules engine, the Menlo
evaluation, the Keegan–Matias risk-benefit grid and the §5.1
justification critiques over a :class:`ResearchProject` and produces
an :class:`EthicsAssessment` — the machine-readable core from which
the ethics-section and REB-application generators work.
"""

from __future__ import annotations

import dataclasses

from ..ethics import (
    FindingStatus,
    MenloEvaluation,
    PrincipleFinding,
    RightRisk,
    RiskBenefitGrid,
    evaluate_all_justifications,
    JustificationVerdict,
    rights_at_risk,
)
from ..legal import LegalReport, RiskLevel, analyze_legal
from ..observability import audit_event
from .project import ResearchProject

__all__ = ["EthicsAssessment", "Verdict", "assess_project"]


class Verdict:
    """Overall recommendation of the assessment."""

    PROCEED = "proceed"
    PROCEED_WITH_SAFEGUARDS = "proceed-with-safeguards"
    REQUIRES_REB = "requires-reb-review"
    DO_NOT_PROCEED = "do-not-proceed"

    ORDER = (
        PROCEED,
        PROCEED_WITH_SAFEGUARDS,
        REQUIRES_REB,
        DO_NOT_PROCEED,
    )

    @classmethod
    def worst(cls, verdicts: list[str]) -> str:
        if not verdicts:
            return cls.PROCEED
        return max(verdicts, key=cls.ORDER.index)


@dataclasses.dataclass(frozen=True)
class EthicsAssessment:
    """The complete assessment output for one project."""

    project: ResearchProject
    legal: LegalReport
    menlo: tuple[PrincipleFinding, ...]
    grid: RiskBenefitGrid
    justifications: tuple[JustificationVerdict, ...]
    rights_risks: tuple[RightRisk, ...]
    verdict: str
    required_actions: tuple[str, ...]
    notes: tuple[str, ...]

    @property
    def applicable_legal_issues(self) -> tuple[str, ...]:
        return self.legal.applicable_issues()

    @property
    def acceptable_justifications(
        self,
    ) -> tuple[JustificationVerdict, ...]:
        return tuple(j for j in self.justifications if j.acceptable)

    def summary(self) -> str:
        """Terse multi-line summary of the whole assessment."""
        lines = [
            f"Assessment of: {self.project.title}",
            f"Verdict: {self.verdict}",
            f"Legal risk: {self.legal.overall_risk} "
            f"(issues: {', '.join(self.applicable_legal_issues) or 'none'})",
        ]
        for finding in self.menlo:
            lines.append(
                f"Menlo {finding.principle.value}: {finding.status}"
            )
        if self.required_actions:
            lines.append("Required actions:")
            lines.extend(f"  - {a}" for a in self.required_actions)
        for note in self.notes:
            lines.append(f"Note: {note}")
        return "\n".join(lines)


def assess_project(project: ResearchProject) -> EthicsAssessment:
    """Run every engine over the project and combine the outcomes."""
    legal = analyze_legal(
        project.profile,
        project.jurisdictions,
        reb_approved=project.reb_approved,
    )
    mitigated = project.mitigated_harms()
    menlo_eval = MenloEvaluation(
        project.stakeholders,
        mitigated,
        project.benefits,
        lawful=legal.lawful_with_safeguards,
        public_interest=(
            project.justification_facts.public_interest_case
        ),
        reproducible=project.safeguards.controlled_sharing,
    )
    menlo = menlo_eval.findings()
    grid = RiskBenefitGrid(
        project.stakeholders, mitigated, project.benefits
    )
    justifications = evaluate_all_justifications(
        project.justification_facts
    )
    rights_risks = rights_at_risk(project.rights_context)

    required: list[str] = []
    notes: list[str] = []
    verdicts: list[str] = [Verdict.PROCEED]

    # -- human-rights baseline (§2) ---------------------------------------
    for risk in rights_risks:
        notes.append(
            f"human-rights exposure: {risk.right.name} — "
            f"{risk.mechanism}"
        )
    if any(risk.right.id == "life" for risk in rights_risks):
        verdicts.append(Verdict.DO_NOT_PROCEED)
        required.append(
            "the research could indirectly cost identified people "
            "their lives; redesign so individuals cannot be "
            "identified before any further work"
        )
    elif rights_risks:
        verdicts.append(Verdict.REQUIRES_REB)
        required.append(
            "human rights of data subjects are engaged; REB review "
            "must weigh the rights exposure explicitly"
        )

    # -- legal gating ---------------------------------------------------
    if legal.overall_risk == RiskLevel.SEVERE:
        verdicts.append(Verdict.DO_NOT_PROCEED)
        required.append(
            "severe legal exposure: redesign the study before any "
            "further work"
        )
    elif legal.overall_risk == RiskLevel.HIGH:
        verdicts.append(Verdict.REQUIRES_REB)
        required.append(
            "high legal risk: obtain REB approval and institutional "
            "legal advice before proceeding"
        )
    elif legal.overall_risk in (RiskLevel.MEDIUM, RiskLevel.LOW):
        verdicts.append(Verdict.PROCEED_WITH_SAFEGUARDS)
    for finding in legal.findings:
        for mitigation in finding.mitigations:
            if finding.applicable and mitigation not in required:
                required.append(mitigation)

    # -- Menlo gating ----------------------------------------------------
    worst_menlo = FindingStatus.worst([f.status for f in menlo])
    if worst_menlo == FindingStatus.VIOLATED:
        verdicts.append(Verdict.DO_NOT_PROCEED)
    elif worst_menlo == FindingStatus.NEEDS_SAFEGUARDS:
        verdicts.append(Verdict.PROCEED_WITH_SAFEGUARDS)
    for finding in menlo:
        for recommendation in finding.recommendations:
            if recommendation not in required:
                required.append(recommendation)

    # -- risk-based REB trigger (the paper's proposed policy) ----------------
    if grid.total_risk() > 0 and not project.reb_approved:
        verdicts.append(Verdict.REQUIRES_REB)
        required.append(
            "potential to harm humans exists even without direct "
            "human subjects: seek REB approval (risk-based trigger, "
            "§6 of the paper)"
        )

    # -- fairness red flags -----------------------------------------------
    for balance in grid.subsidising_parties():
        notes.append(
            f"{balance.name} bears risk {balance.risk:.2f} with no "
            "benefit — justice concern"
        )
    for party in grid.unassessed_parties():
        notes.append(
            f"stakeholder {party!r} has no harms or benefits recorded; "
            "the register looks incomplete"
        )

    # -- justification quality ---------------------------------------------
    if not any(j.acceptable for j in justifications):
        notes.append(
            "no justification for using this data currently carries "
            "weight; the strongest path is necessity plus public "
            "interest with no additional harm"
        )
    if not project.has_ethics_section:
        required.append(
            "include an explicit ethics section recording this "
            "reasoning (Partridge & Allman)"
        )

    # -- benefit/harm balance hard stop -------------------------------------
    if (
        grid.total_benefit() > 0
        and grid.total_risk() > grid.total_benefit()
    ):
        verdicts.append(Verdict.DO_NOT_PROCEED)

    verdict = Verdict.worst(verdicts)
    audit_event(
        "assessment",
        "assessed",
        subject=project.title,
        verdict=verdict,
        legal_risk=legal.overall_risk,
        required_actions=len(required),
        rights_risks=len(rights_risks),
    )
    return EthicsAssessment(
        project=project,
        legal=legal,
        menlo=menlo,
        grid=grid,
        justifications=justifications,
        rights_risks=rights_risks,
        verdict=verdict,
        required_actions=tuple(required),
        notes=tuple(notes),
    )
