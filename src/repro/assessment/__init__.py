"""Project assessment: the end-to-end ethics/legal decision support."""

from .checklist import (
    Checklist,
    ChecklistItem,
    ChecklistResult,
    publication_checklist,
)
from .corpus_profiles import (
    ReconstructionCheck,
    corpus_profiles,
    profile_for,
    validate_legal_reconstruction,
)
from .engine import (
    EthicsAssessment,
    Verdict,
    assess_project,
    assess_with_policy,
)
from .project import PlannedSafeguards, ResearchProject

__all__ = [
    "Checklist",
    "ChecklistItem",
    "ChecklistResult",
    "EthicsAssessment",
    "PlannedSafeguards",
    "ReconstructionCheck",
    "ResearchProject",
    "Verdict",
    "assess_project",
    "assess_with_policy",
    "corpus_profiles",
    "profile_for",
    "publication_checklist",
    "validate_legal_reconstruction",
]
