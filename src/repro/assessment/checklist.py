"""Checklist engine: the paper's §2.1/§3/§6 requirements as items.

A :class:`Checklist` is a flat list of :class:`ChecklistItem` objects,
each with an automatic predicate over an
:class:`~repro.assessment.engine.EthicsAssessment`. Running the
checklist yields per-item pass/fail plus the overall readiness — what
a shepherd or REB administrator would scan first.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Sequence

from ..ethics import FindingStatus
from ..legal import RiskLevel
from .engine import EthicsAssessment

__all__ = ["ChecklistItem", "ChecklistResult", "Checklist",
           "publication_checklist"]


@dataclasses.dataclass(frozen=True)
class ChecklistItem:
    """One checkable requirement."""

    id: str
    text: str
    check: Callable[[EthicsAssessment], bool]
    severity: str = "required"  # "required" | "recommended"


@dataclasses.dataclass(frozen=True)
class ChecklistResult:
    """Outcome of one item."""

    item: ChecklistItem
    passed: bool

    def describe(self) -> str:
        mark = "x" if self.passed else " "
        return f"[{mark}] ({self.item.severity}) {self.item.text}"


class Checklist:
    """Run a sequence of items over an assessment."""

    def __init__(self, items: Sequence[ChecklistItem]) -> None:
        self.items = tuple(items)

    def run(
        self, assessment: EthicsAssessment
    ) -> tuple[ChecklistResult, ...]:
        """Evaluate every item against the assessment."""
        return tuple(
            ChecklistResult(item=item, passed=item.check(assessment))
            for item in self.items
        )

    def ready(self, assessment: EthicsAssessment) -> bool:
        """All *required* items pass."""
        return all(
            result.passed
            for result in self.run(assessment)
            if result.item.severity == "required"
        )

    def report(self, assessment: EthicsAssessment) -> str:
        """Human-readable pass/fail report for all items."""
        results = self.run(assessment)
        passed = sum(1 for r in results if r.passed)
        lines = [f"Checklist: {passed}/{len(results)} items pass"]
        lines.extend(result.describe() for result in results)
        return "\n".join(lines)


def publication_checklist() -> Checklist:
    """The pre-publication checklist the paper's §6 implies.

    "papers using data of illicit origin should always have an ethics
    section, explaining how these data were obtained, how it has been
    protected, analysing the harms, benefits, and need for using such
    data."
    """
    return Checklist(
        (
            ChecklistItem(
                id="stakeholders-identified",
                text="primary, secondary and key stakeholders are "
                "identified",
                check=lambda a: a.project.stakeholders.is_complete(),
            ),
            ChecklistItem(
                id="harms-identified",
                text="potential harms are identified",
                check=lambda a: bool(a.project.harms),
            ),
            ChecklistItem(
                id="benefits-identified",
                text="benefits are identified (they, too, often go "
                "unstated)",
                check=lambda a: bool(a.project.benefits),
            ),
            ChecklistItem(
                id="safeguards-planned",
                text="safeguards mitigate the identified harms",
                check=lambda a: bool(a.project.safeguards.codes()),
            ),
            ChecklistItem(
                id="legal-analysed",
                text="legal issues are analysed for every relevant "
                "jurisdiction",
                check=lambda a: bool(a.legal.findings),
            ),
            ChecklistItem(
                id="no-severe-legal",
                text="no severe unmitigated legal exposure remains",
                check=lambda a: a.legal.overall_risk
                != RiskLevel.SEVERE,
            ),
            ChecklistItem(
                id="menlo-clean",
                text="no Menlo principle is violated",
                check=lambda a: all(
                    f.status != FindingStatus.VIOLATED for f in a.menlo
                ),
            ),
            ChecklistItem(
                id="reb-when-risky",
                text="REB review obtained when humans could be harmed "
                "(risk-based trigger)",
                check=lambda a: a.project.reb_approved
                or a.grid.total_risk() == 0,
            ),
            ChecklistItem(
                id="ethics-section",
                text="the paper has an explicit ethics section",
                check=lambda a: a.project.has_ethics_section,
            ),
            ChecklistItem(
                id="justified",
                text="at least one justification carries weight",
                check=lambda a: bool(a.acceptable_justifications),
            ),
            ChecklistItem(
                id="controlled-sharing",
                text="controlled sharing supports reproducibility",
                check=lambda a: (
                    a.project.safeguards.controlled_sharing
                ),
                severity="recommended",
            ),
            ChecklistItem(
                id="aup-citable",
                text="the acceptable usage policy is citable",
                check=lambda a: bool(
                    a.project.safeguards.acceptable_use_policy
                ),
                severity="recommended",
            ),
        )
    )
