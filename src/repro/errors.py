"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CodebookError(ReproError):
    """A codebook definition or lookup is invalid."""


class UnknownCodeError(CodebookError):
    """A code identifier does not exist in the codebook."""

    def __init__(self, code: str, dimension: str | None = None) -> None:
        self.code = code
        self.dimension = dimension
        where = f" in dimension {dimension!r}" if dimension else ""
        super().__init__(f"unknown code {code!r}{where}")


class UnknownDimensionError(CodebookError):
    """A dimension identifier does not exist in the codebook."""

    def __init__(self, dimension: str) -> None:
        self.dimension = dimension
        super().__init__(f"unknown dimension {dimension!r}")


class CodingError(ReproError):
    """An annotation or coding operation is invalid."""


class CorpusError(ReproError):
    """A corpus entry is malformed or a corpus lookup failed."""


class UnknownEntryError(CorpusError):
    """A case-study entry identifier does not exist in the corpus."""

    def __init__(self, entry_id: str) -> None:
        self.entry_id = entry_id
        super().__init__(f"unknown corpus entry {entry_id!r}")


class BibliographyError(ReproError):
    """A bibliography record is malformed or a lookup failed."""


class AnalysisError(ReproError):
    """A tabulation or statistical computation could not be performed."""


class RenderError(ReproError):
    """A table could not be rendered in the requested format."""


class LegalModelError(ReproError):
    """A legal model (jurisdiction, statute, rule) is misconfigured."""


class EthicsModelError(ReproError):
    """An ethics model (stakeholder, harm, benefit) is misconfigured."""


class AssessmentError(ReproError):
    """A research-project assessment could not be completed."""


class REBError(ReproError):
    """An REB workflow operation is invalid for the submission state."""


class SafeguardError(ReproError):
    """A safeguard (storage, sharing, retention) operation failed."""


class AccessDeniedError(SafeguardError):
    """An access-controlled operation was attempted without authorisation."""

    def __init__(self, principal: str, action: str, resource: str) -> None:
        self.principal = principal
        self.action = action
        self.resource = resource
        super().__init__(
            f"access denied: {principal!r} may not {action!r} on {resource!r}"
        )


class IntegrityError(SafeguardError):
    """Stored data failed an integrity (authentication) check."""


class AnonymizationError(ReproError):
    """An anonymisation primitive was used incorrectly."""


class DatasetError(ReproError):
    """A synthetic dataset could not be generated or parsed."""


class MetricError(ReproError):
    """A survey-algorithm metric could not be computed."""


class ReportingError(ReproError):
    """A report could not be generated."""


class StaticCheckError(ReproError):
    """The static policy linter could not analyse a source file."""


class OperationError(ReproError):
    """An operation request is malformed (unknown op, bad arguments)."""


class PolicyError(OperationError):
    """A policy pack is malformed, unresolvable, or fails validation.

    Subclasses :class:`OperationError` deliberately: a bad pack is a
    bad *request* (the caller named a pack that cannot be compiled),
    so the failure table maps it to the usage exit code.
    """


class BatchError(OperationError):
    """A batch request file is malformed or cannot be read."""
