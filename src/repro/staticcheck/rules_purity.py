"""R8 — purity: ``pure=True`` declarations are machine-checked.

:class:`repro.ops.cache.ResultCache` trusts the catalog completely: a
result computed once for a ``pure=True`` operation is served forever
(until the corpus digest moves), so a mis-declared operation poisons
every cached caller with stale bytes. Until now that trust rested on
a reviewer reading the handler; R8 makes it a checked property of the
whole program.

The rule finds every ``Operation(..., pure=True)`` construction in
the package (resolving the ``Operation`` name through re-exports to
``repro.ops.spec.Operation``), takes the declared ``handler``, and
walks its *transitive* call graph over the
:class:`~repro.staticcheck.project.Project`. Any reachable effect is
flagged at the effect site:

* **clock reads** — ``time.time()``/``monotonic()``/
  ``perf_counter()``, ``datetime.now()`` and friends (purity is
  stricter than R2: even timing metrics change returned bytes if
  they leak into output);
* **randomness** — global-RNG ``random.*`` draws, ``secrets``,
  ``os.urandom``, ``uuid.uuid1``/``uuid4``;
* **process environment** — ``os.environ`` access, ``os.getenv``;
* **filesystem** — ``open()``, ``pathlib`` read/write methods,
  ``shutil``/``tempfile``, ``os`` file calls;
* **network** — ``socket``/``urllib``/``http.client`` and the like;
* **processes and stdio** — ``subprocess``, ``os.system``,
  ``print()``/``input()``;
* **module-state mutation** — ``global`` rebinding or in-place
  mutation of a module-level container (the one allowed shape is the
  ``global X`` + ``if X is None`` memo idiom, which is idempotent
  and therefore cache-safe).

Like every call-graph analysis of Python, reachability is an
under-approximation: calls through values of unknown type (a
parameter, ``ctx.corpus()``, a dict of callables) contribute no
edges. R8 proves what it can see and the declared handler chain is
exactly the code a cached result replaces, so the bargain is the
right one. A handler the rule cannot resolve at all is itself a
finding — an unverifiable purity claim does not get the benefit of
the doubt.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator
from typing import TYPE_CHECKING

from .engine import Finding, ModuleInfo, Rule

if TYPE_CHECKING:
    from .project import FunctionSymbol, Project

__all__ = ["PurityRule"]

#: The canonical constructor whose ``pure=True`` keyword R8 audits.
_OPERATION = "repro.ops.spec.Operation"

_CLOCK_CALLS = frozenset(
    {
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
    }
)

_RNG_CALLS = frozenset(
    {
        "random.SystemRandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "os.urandom",
    }
)
#: ``random.*`` attributes that do NOT touch the global RNG.
_RANDOM_ALLOWED = frozenset({"random.Random"})

_ENV_TARGETS = frozenset(
    {"os.environ", "os.getenv", "os.putenv", "os.unsetenv"}
)

_FS_CALLS = frozenset(
    {
        "open",
        "os.remove",
        "os.unlink",
        "os.rename",
        "os.replace",
        "os.mkdir",
        "os.makedirs",
        "os.rmdir",
        "os.chmod",
    }
)
_FS_PREFIXES = ("shutil.", "tempfile.")
#: Effectful ``pathlib.Path`` methods, reached via local inference
#: (``p = Path(x); p.read_text()`` resolves to the dotted form).
_PATH_EFFECTS = frozenset(
    f"pathlib.Path.{method}"
    for method in (
        "open",
        "read_text",
        "read_bytes",
        "write_text",
        "write_bytes",
        "unlink",
        "mkdir",
        "rmdir",
        "touch",
        "rename",
        "replace",
        "chmod",
    )
)

_NET_PREFIXES = (
    "socket.",
    "urllib.",
    "http.client",
    "requests.",
    "ftplib.",
    "smtplib.",
)

_PROC_CALLS = frozenset({"os.system", "os.popen"})
_PROC_PREFIXES = ("subprocess.",)

_STDIO_CALLS = frozenset({"print", "input", "builtins.print"})


def _classify(dotted: str) -> str | None:
    """The effect class of a dotted call target, or ``None``."""
    if dotted in _CLOCK_CALLS:
        return "clock read"
    if dotted in _RNG_CALLS or dotted.startswith("secrets."):
        return "randomness"
    if (
        dotted.startswith("random.")
        and dotted not in _RANDOM_ALLOWED
    ):
        return "global-RNG draw"
    if dotted in _ENV_TARGETS:
        return "environment access"
    if (
        dotted in _FS_CALLS
        or dotted in _PATH_EFFECTS
        or dotted.startswith(_FS_PREFIXES)
    ):
        return "filesystem access"
    if dotted.startswith(_NET_PREFIXES):
        return "network access"
    if dotted in _PROC_CALLS or dotted.startswith(_PROC_PREFIXES):
        return "subprocess launch"
    if dotted in _STDIO_CALLS:
        return "stdio use"
    return None


#: Methods that mutate a container in place.
_MUTATORS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "sort",
    }
)


class PurityRule(Rule):
    """Prove every ``pure=True`` op effect-free along visible calls."""

    id = "R8"
    name = "purity"
    description = (
        "every operation declared pure=True must reach no effect "
        "(clock, RNG, env, filesystem, network, module-state "
        "mutation) through its transitive call graph — the "
        "ResultCache serves stale bytes otherwise"
    )

    def check_project(self, project: "Project") -> Iterable[Finding]:
        """Walk each declared-pure handler's call graph for effects."""
        declared = list(self._declared_pure(project))
        if not declared:
            return []
        findings: list[Finding] = []
        effect_cache: dict[str, tuple] = {}
        # (path, line, message-core) → sorted op names reaching it.
        sites: dict[tuple, dict] = {}
        for op_name, handler, module, call in declared:
            symbol = self._resolve_handler(project, module, handler)
            if symbol is None:
                findings.append(
                    Finding(
                        rule_id=self.id,
                        path=module.path,
                        line=call.lineno,
                        message=(
                            f"operation {op_name!r} is declared "
                            "pure=True but its handler does not "
                            "resolve to a module-level function; "
                            "purity cannot be verified"
                        ),
                    )
                )
                continue
            for fn, chain in self._reachable(project, symbol):
                key = fn.qualname
                if key not in effect_cache:
                    effect_cache[key] = tuple(
                        self._effects(project, fn)
                    )
                for line, effect, detail in effect_cache[key]:
                    site = (fn.module.path, line, effect, detail)
                    entry = sites.setdefault(
                        site, {"ops": set(), "chain": chain}
                    )
                    entry["ops"].add(op_name)
        for (path, line, effect, detail), entry in sites.items():
            ops = ", ".join(repr(o) for o in sorted(entry["ops"]))
            via = " → ".join(
                name.rsplit(".", 1)[-1] for name in entry["chain"]
            )
            findings.append(
                Finding(
                    rule_id=self.id,
                    path=path,
                    line=line,
                    message=(
                        f"operation(s) {ops} declared pure=True "
                        f"reach {effect} ({detail}) via {via}; a "
                        "pure result is cached and replayed, so "
                        "this effect makes the ResultCache serve "
                        "stale bytes"
                    ),
                )
            )
        return findings

    # -- declared-pure discovery ----------------------------------------
    def _declared_pure(
        self, project: "Project"
    ) -> Iterator[tuple[str, ast.expr, ModuleInfo, ast.Call]]:
        """Yield (op name, handler expr, module, call) per pure op."""
        for module in project:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                dotted = project.call_target(module, node)
                if (
                    dotted is None
                    or project.canonical(dotted) != _OPERATION
                ):
                    continue
                keywords = {
                    kw.arg: kw.value
                    for kw in node.keywords
                    if kw.arg
                }
                pure = keywords.get("pure")
                if not (
                    isinstance(pure, ast.Constant)
                    and pure.value is True
                ):
                    continue
                handler = keywords.get("handler")
                if handler is None and len(node.args) >= 3:
                    handler = node.args[2]
                name = keywords.get("name")
                op_name = (
                    name.value
                    if isinstance(name, ast.Constant)
                    and isinstance(name.value, str)
                    else ast.unparse(handler)
                    if handler is not None
                    else "<unnamed>"
                )
                if handler is None:
                    continue
                yield op_name, handler, module, node

    @staticmethod
    def _resolve_handler(project, module, expr):
        from .project import FunctionSymbol, module_dotted

        if isinstance(expr, ast.Name):
            dotted = module.import_aliases().get(expr.id) or (
                f"{module_dotted(module.relpath)}.{expr.id}"
            )
        elif isinstance(expr, ast.Attribute):
            dotted = module.resolve_dotted(expr)
        else:
            return None
        if dotted is None:
            return None
        symbol = project.resolve(dotted)
        return (
            symbol if isinstance(symbol, FunctionSymbol) else None
        )

    # -- reachability ---------------------------------------------------
    def _reachable(
        self, project: "Project", handler: "FunctionSymbol"
    ) -> Iterator[tuple["FunctionSymbol", tuple[str, ...]]]:
        """BFS of resolvable callees, with the call chain to each."""
        from .project import ClassSymbol, FunctionSymbol

        queue = [(handler, (handler.qualname,))]
        seen = {handler.qualname}
        while queue:
            fn, chain = queue.pop(0)
            yield fn, chain
            for dotted, _line in project.callees(fn):
                symbol = project.resolve(dotted)
                if isinstance(symbol, ClassSymbol):
                    symbol = symbol.methods.get("__init__")
                if not isinstance(symbol, FunctionSymbol):
                    continue
                if symbol.qualname in seen:
                    continue
                seen.add(symbol.qualname)
                queue.append(
                    (symbol, chain + (symbol.qualname,))
                )

    # -- effect scanning ------------------------------------------------
    def _effects(
        self, project: "Project", fn: "FunctionSymbol"
    ) -> Iterator[tuple[int, str, str]]:
        """Yield (line, effect class, detail) for one function body."""
        for dotted, line in project.callees(fn):
            effect = _classify(dotted)
            if effect is not None:
                yield line, effect, f"{dotted}()"
        # ``os.environ[...]``/``os.environ.get`` are attribute reads,
        # not calls of an ``os.*`` function — scan them separately
        # (calls like ``os.getenv()`` are already covered above).
        module = fn.module
        for node in ast.walk(fn.node):
            if (
                isinstance(node, ast.Attribute)
                and node.attr == "environ"
                and module.resolve_dotted(node) == "os.environ"
            ):
                yield (
                    node.lineno,
                    "environment access",
                    "os.environ",
                )
        yield from self._state_mutations(fn)

    def _state_mutations(
        self, fn: "FunctionSymbol"
    ) -> Iterator[tuple[int, str, str]]:
        """Module-state writes, minus the idempotent memo idiom."""
        body = fn.node
        global_names: set[str] = set()
        for node in ast.walk(body):
            if isinstance(node, ast.Global):
                global_names.update(node.names)
        assigned = {
            node.id
            for node in ast.walk(body)
            if isinstance(node, ast.Name)
            and isinstance(node.ctx, ast.Store)
        }
        for name in sorted(global_names & assigned):
            if self._is_memo_guarded(body, name):
                continue
            line = body.lineno
            for node in ast.walk(body):
                if (
                    isinstance(node, ast.Name)
                    and node.id == name
                    and isinstance(node.ctx, ast.Store)
                ):
                    line = node.lineno
                    break
            yield (
                line,
                "module-state mutation",
                f"global {name} rebinding",
            )
        module_level = self._module_level_names(fn.module)
        local = assigned | self._parameter_names(body) | global_names
        for node in ast.walk(body):
            target_name, line = self._container_write(node)
            if target_name is None:
                continue
            if target_name in local:
                continue
            if target_name not in module_level:
                continue
            yield (
                line,
                "module-state mutation",
                f"in-place write to module-level {target_name!r}",
            )

    @staticmethod
    def _is_memo_guarded(body: ast.AST, name: str) -> bool:
        """``global X`` guarded by ``if X is None`` is idempotent."""
        for node in ast.walk(body):
            if not isinstance(node, ast.If):
                continue
            test = node.test
            if (
                isinstance(test, ast.Compare)
                and isinstance(test.left, ast.Name)
                and test.left.id == name
                and len(test.ops) == 1
                and isinstance(test.ops[0], ast.Is)
                and len(test.comparators) == 1
                and isinstance(test.comparators[0], ast.Constant)
                and test.comparators[0].value is None
            ):
                return True
        return False

    @staticmethod
    def _module_level_names(module: ModuleInfo) -> set[str]:
        names: set[str] = set()
        for node in module.tree.body:
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        return names

    @staticmethod
    def _parameter_names(body: ast.AST) -> set[str]:
        names: set[str] = set()
        for node in ast.walk(body):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                args = node.args
                for arg in (
                    *args.posonlyargs,
                    *args.args,
                    *args.kwonlyargs,
                ):
                    names.add(arg.arg)
                if args.vararg:
                    names.add(args.vararg.arg)
                if args.kwarg:
                    names.add(args.kwarg.arg)
        return names

    @staticmethod
    def _container_write(node: ast.AST) -> tuple[str | None, int]:
        """A subscript store or mutator call on a bare name, if any."""
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name
                ):
                    return target.value.id, node.lineno
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATORS
            and isinstance(node.func.value, ast.Name)
        ):
            return node.func.value.id, node.lineno
        return None, 0
