"""Static policy linter: the paper's safeguards, enforced on this code.

``repro.staticcheck`` lints the repro package itself for violations of
the safeguards the reproduction implements (see
``docs/static-analysis.md``):

* **R1** ``safeguard-boundary`` — outbound modules (``reporting/``,
  ``safeguards/sharing``) may not consume raw ``datasets/`` records
  except through an ``anonymization`` function;
* **R2** ``determinism`` — no clock reads, global-RNG calls or random
  UUIDs inside ``datasets/``, ``analysis/`` and ``pipeline/`` (the
  worker pool is in scope noqa-free: ``concurrent.futures`` and
  ``time.perf_counter`` are allowed because they never affect output
  bytes);
* **R3** ``pii-literals`` — no email-shaped strings, routable IPv4
  literals or realistic phone numbers anywhere in ``src/``;
* **R4** ``data-consistency`` — codebook, corpus and §5 statistics
  stay mutually complete;
* **R5** ``audit-boundary`` — public methods in ``safeguards/`` that
  mutate instance state must emit an audit event
  (:func:`repro.observability.audit_event` or an audit/trail
  attribute call), so every safeguard-boundary change is
  inspectable;
* **R6** ``telemetry-naming`` — metric/span names at instrument-
  creation sites must be dotted snake_case and audit-event
  category/action lowercase kebab, so the Prometheus/OTLP exporters
  emit collision-free, grep-friendly identifiers;
* **R7** ``layering`` — modules under ``cli/`` import repro
  subsystems only via :mod:`repro.ops`, keeping the CLI a thin
  adapter over the service kernel;
* **R8** ``purity`` — every operation declared ``pure=True`` in the
  ops catalog is proven effect-free along its transitive call graph
  (clocks, RNG, env, filesystem, network, module-state mutation),
  so the ``ResultCache`` trust in the flag is machine-checked;
* **R9** ``worker-safety`` — every callable submitted to a process
  pool is module-level and picklable by construction: no lambdas,
  bound methods, nested functions or mutable default arguments;
* **R10** ``policy-literals`` — legal-issue ids and Menlo principle
  names are policy-pack vocabulary: outside ``repro.policy`` (and
  the coded corpus data) they must come from the pack helpers, not
  re-spelled string literals.

R1–R7 and R10 judge one file at a time; R8/R9 are interprocedural and run on
the once-per-run :class:`~repro.staticcheck.project.Project` graph
(symbol table, import graph, call graph). Findings are cached
content-addressed per file (:mod:`repro.staticcheck.cache`), so warm
lints are near-instant and ``repro-ethics lint --changed`` reports
only what a change could have affected.

Run it as ``repro-ethics lint`` (text or JSON output, rule selection
via ``--select``, ``--changed``/``--jobs``/``--no-cache`` for the
incremental machinery); ``repro-ethics verify`` includes the same
gate.
"""

from .baseline import BASELINE, BaselineEntry, baseline_drift
from .cache import LintCache, default_cache_path
from .engine import (
    Finding,
    LintEngine,
    ModuleInfo,
    Rule,
    RuleRegistry,
    Suppression,
    default_registry,
    package_root,
    unsuppressed,
)
from .project import Project
from .reporters import render_json, render_text, summarize
from .rules_audit import AuditBoundaryRule
from .rules_consistency import ConsistencyRule, check_consistency
from .rules_dataflow import SafeguardBoundaryRule
from .rules_determinism import DeterminismRule
from .rules_layering import LayeringRule
from .rules_naming import TelemetryNamingRule
from .rules_pii import PIILiteralRule
from .rules_policy import PolicyLiteralRule
from .rules_purity import PurityRule
from .rules_workers import WorkerSafetyRule

__all__ = [
    "AuditBoundaryRule",
    "BASELINE",
    "BaselineEntry",
    "ConsistencyRule",
    "DeterminismRule",
    "Finding",
    "LayeringRule",
    "LintCache",
    "LintEngine",
    "ModuleInfo",
    "PIILiteralRule",
    "PolicyLiteralRule",
    "Project",
    "PurityRule",
    "Rule",
    "RuleRegistry",
    "SafeguardBoundaryRule",
    "Suppression",
    "TelemetryNamingRule",
    "WorkerSafetyRule",
    "baseline_drift",
    "check_consistency",
    "default_cache_path",
    "default_registry",
    "lint_repo",
    "package_root",
    "render_json",
    "render_text",
    "summarize",
    "unsuppressed",
]


def lint_repo(
    select: tuple[str, ...] = (),
    *,
    with_baseline: bool = True,
    incremental: bool = True,
    workers: int = 1,
    changed_only: bool = False,
) -> list[Finding]:
    """Lint the installed ``repro`` package with the default rules.

    *select* restricts to the given rule ids; with *with_baseline*
    the baseline-drift pseudo-rule R0 findings are appended. This is
    the entry point the CLI, the verify gate and the self-test share.

    *incremental* reuses content-addressed findings from the repo
    cache (:func:`default_cache_path`) — only when the full rule set
    runs, so a ``--select`` subset never clobbers the full-run cache.
    *workers* fans cold files out to a process pool. *changed_only*
    limits output to files whose digest moved since the cached run
    (the ``lint --changed`` fast path); stale-baseline drift is not
    judged then, since unchanged files are not re-examined. A
    ``--select`` subset judges staleness only for entries whose rule
    ran — a skipped rule cannot prove its exceptions fixed.
    """
    registry = default_registry()
    if select:
        registry = registry.select(select)
    cache_path = (
        default_cache_path() if incremental and not select else None
    )
    findings = LintEngine(registry).lint_package(
        cache_path=cache_path,
        workers=workers,
        changed_only=changed_only,
    )
    if with_baseline:
        baseline = BASELINE
        if select:
            ran = {rule.id for rule in registry}
            baseline = tuple(
                entry
                for entry in BASELINE
                if entry.rule_id in ran
            )
        findings.extend(
            baseline_drift(
                findings, baseline, stale=not changed_only
            )
        )
    return findings
