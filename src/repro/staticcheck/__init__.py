"""Static policy linter: the paper's safeguards, enforced on this code.

``repro.staticcheck`` lints the repro package itself for violations of
the safeguards the reproduction implements (see
``docs/static-analysis.md``):

* **R1** ``safeguard-boundary`` — outbound modules (``reporting/``,
  ``safeguards/sharing``) may not consume raw ``datasets/`` records
  except through an ``anonymization`` function;
* **R2** ``determinism`` — no clock reads, global-RNG calls or random
  UUIDs inside ``datasets/``, ``analysis/`` and ``pipeline/`` (the
  worker pool is in scope noqa-free: ``concurrent.futures`` and
  ``time.perf_counter`` are allowed because they never affect output
  bytes);
* **R3** ``pii-literals`` — no email-shaped strings, routable IPv4
  literals or realistic phone numbers anywhere in ``src/``;
* **R4** ``data-consistency`` — codebook, corpus and §5 statistics
  stay mutually complete;
* **R5** ``audit-boundary`` — public methods in ``safeguards/`` that
  mutate instance state must emit an audit event
  (:func:`repro.observability.audit_event` or an audit/trail
  attribute call), so every safeguard-boundary change is
  inspectable;
* **R6** ``telemetry-naming`` — metric/span names at instrument-
  creation sites must be dotted snake_case and audit-event
  category/action lowercase kebab, so the Prometheus/OTLP exporters
  emit collision-free, grep-friendly identifiers;
* **R7** ``layering`` — modules under ``cli/`` import repro
  subsystems only via :mod:`repro.ops`, keeping the CLI a thin
  adapter over the service kernel.

Run it as ``repro-ethics lint`` (text or JSON output, rule selection
via ``--select``); ``repro-ethics verify`` includes the same gate.
"""

from .baseline import BASELINE, BaselineEntry, baseline_drift
from .engine import (
    Finding,
    LintEngine,
    ModuleInfo,
    Rule,
    RuleRegistry,
    Suppression,
    default_registry,
    package_root,
    unsuppressed,
)
from .reporters import render_json, render_text, summarize
from .rules_audit import AuditBoundaryRule
from .rules_consistency import ConsistencyRule, check_consistency
from .rules_dataflow import SafeguardBoundaryRule
from .rules_determinism import DeterminismRule
from .rules_layering import LayeringRule
from .rules_naming import TelemetryNamingRule
from .rules_pii import PIILiteralRule

__all__ = [
    "AuditBoundaryRule",
    "BASELINE",
    "BaselineEntry",
    "ConsistencyRule",
    "DeterminismRule",
    "Finding",
    "LayeringRule",
    "LintEngine",
    "ModuleInfo",
    "PIILiteralRule",
    "Rule",
    "RuleRegistry",
    "SafeguardBoundaryRule",
    "Suppression",
    "TelemetryNamingRule",
    "baseline_drift",
    "check_consistency",
    "default_registry",
    "lint_repo",
    "package_root",
    "render_json",
    "render_text",
    "summarize",
    "unsuppressed",
]


def lint_repo(
    select: tuple[str, ...] = (), *, with_baseline: bool = True
) -> list[Finding]:
    """Lint the installed ``repro`` package with the default rules.

    *select* restricts to the given rule ids; with *with_baseline*
    the baseline-drift pseudo-rule R0 findings are appended. This is
    the entry point the CLI, the verify gate and the self-test share.
    """
    registry = default_registry()
    if select:
        registry = registry.select(select)
    findings = LintEngine(registry).lint_package()
    if with_baseline:
        findings.extend(baseline_drift(findings))
    return findings
