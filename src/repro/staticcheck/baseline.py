"""The suppression baseline: every accepted lint exception, as data.

An inline ``# repro: noqa[RID]`` silences a finding at its line; the
baseline makes those acceptances *auditable* by requiring each one to
be registered here with a justification. :func:`baseline_drift`
closes the loop in both directions:

* a suppressed finding whose ``(rule, path)`` is not registered is
  **unregistered** drift — someone silenced the linter without
  recording why;
* a registered entry that no longer matches any suppressed finding is
  **stale** drift — the exception was fixed and the entry should go.

Drift is reported under the pseudo-rule id ``R0`` and fails the lint
gate exactly like a rule violation.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
import dataclasses

from .engine import Finding

__all__ = ["BASELINE", "BaselineEntry", "baseline_drift"]


@dataclasses.dataclass(frozen=True)
class BaselineEntry:
    """One accepted suppression: rule, file and why it is acceptable."""

    rule_id: str
    path: str
    justification: str

    def matches(self, finding: Finding) -> bool:
        """Whether *finding* is an instance of this accepted exception."""
        return (
            finding.suppressed
            and finding.rule_id == self.rule_id
            and finding.path == self.path
        )


#: Every accepted ``# repro: noqa`` in ``src/repro``, with rationale.
BASELINE: tuple[BaselineEntry, ...] = (
    BaselineEntry(
        rule_id="R8",
        path="src/repro/policy/model.py",
        justification=(
            "load_pack reads pack bytes that are digested into the "
            "pack-scoped cache key; a changed file changes the key, "
            "so the read can never serve a stale cached result"
        ),
    ),
    BaselineEntry(
        rule_id="R8",
        path="src/repro/policy/runtime.py",
        justification=(
            "the bundled-pack and compiled-table memos are keyed by "
            "content digest over module constants: re-running the "
            "write can only store an identical value, so cached "
            "pure results cannot go stale"
        ),
    ),
)


def baseline_drift(
    findings: Iterable[Finding],
    baseline: Sequence[BaselineEntry] = BASELINE,
    *,
    stale: bool = True,
) -> list[Finding]:
    """R0 findings for unregistered suppressions and stale entries.

    *stale* disables the stale-entry direction; a partial lint (the
    ``--changed`` fast path sees only re-linted files) cannot judge
    whether a registered exception still exists elsewhere.
    """
    findings = list(findings)
    drift: list[Finding] = []
    for finding in findings:
        if not finding.suppressed:
            continue
        if not any(entry.matches(finding) for entry in baseline):
            drift.append(
                Finding(
                    rule_id="R0",
                    path=finding.path,
                    line=finding.line,
                    message=(
                        f"suppression of {finding.rule_id} is not "
                        "registered in the staticcheck baseline"
                    ),
                )
            )
    if not stale:
        return drift
    for entry in baseline:
        if not any(entry.matches(finding) for finding in findings):
            drift.append(
                Finding(
                    rule_id="R0",
                    path=entry.path,
                    line=1,
                    message=(
                        f"stale baseline entry: no suppressed "
                        f"{entry.rule_id} finding remains in "
                        f"{entry.path}"
                    ),
                )
            )
    return drift
