"""Finding reporters: human text and machine-readable JSON lines.

The JSON reporter emits exactly one JSON object per finding — rule
id, path, line, message, plus the suppression state — so CI and the
baseline tooling can diff lint output across revisions.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Sequence

from .engine import Finding

__all__ = ["render_json", "render_text", "summarize"]


def render_text(findings: Sequence[Finding]) -> str:
    """Conventional ``path:line: [RID] message`` lines plus a summary."""
    lines = [finding.describe() for finding in findings]
    lines.append(summarize(findings))
    return "\n".join(lines)


def render_json(findings: Iterable[Finding]) -> str:
    """One JSON object per finding, one finding per line (JSONL)."""
    return "\n".join(
        json.dumps(finding.to_dict(), sort_keys=True)
        for finding in findings
    )


def summarize(findings: Sequence[Finding]) -> str:
    """One-line tally: total, suppressed and failing findings."""
    suppressed = sum(1 for f in findings if f.suppressed)
    failing = len(findings) - suppressed
    return (
        f"{len(findings)} finding(s): {failing} failing, "
        f"{suppressed} suppressed"
    )
