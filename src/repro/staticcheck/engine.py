"""Core of the policy linter: findings, modules, rules and the engine.

The paper's position (§4–§5) is that safeguards must be *operational*:
it is not enough to promise anonymization, controlled sharing and
reproducibility — the machinery has to enforce them. ``staticcheck``
turns that position on this codebase itself: a small AST linter whose
rules encode the safeguards the repro package claims to implement.

Design
------

* **One parse per file.** :class:`ModuleInfo` parses the source once;
  the engine walks the resulting tree once, dispatching each node to
  every rule registered for that node type. Rules never re-parse.
* **Three rule granularities.** A rule may register for AST node
  types (:attr:`Rule.node_types`), inspect the raw source of a module
  (:meth:`Rule.check_module`), or run once over the whole package
  (:meth:`Rule.check_project`), receiving the
  :class:`~repro.staticcheck.project.Project` graph — symbol table,
  import graph and call graph — built exactly once per run. The
  semi-static consistency rule and both interprocedural rules
  (purity, worker-safety) live at this granularity.
* **Suppressions are data.** ``# repro: noqa[R2] reason`` on the
  offending line marks a finding as suppressed; the engine keeps the
  finding (with its justification) so reporters and the baseline can
  account for every accepted exception.
* **Findings are content-addressed.** :meth:`LintEngine.lint_package`
  can reuse per-file findings from an incremental cache keyed on the
  file digest and the rule-set signature (ids + versions), and fan
  cold files out to a process pool — see
  :mod:`repro.staticcheck.cache` and ``docs/static-analysis.md``.
"""

from __future__ import annotations

import ast
import dataclasses
import hashlib
import json
import re
from collections.abc import Iterable, Iterator
from pathlib import Path
from typing import TYPE_CHECKING

from ..errors import StaticCheckError

if TYPE_CHECKING:  # circular at runtime: project.py imports engine
    from .project import Project

__all__ = [
    "Finding",
    "LintEngine",
    "ModuleInfo",
    "Rule",
    "RuleRegistry",
    "Suppression",
    "default_registry",
    "package_root",
    "unsuppressed",
]

#: ``# repro: noqa[R1]`` or ``# repro: noqa[R1,R3] justification text``.
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\[([A-Za-z0-9_,\s]+)\]\s*(.*)$"
)


@dataclasses.dataclass(frozen=True)
class Suppression:
    """One inline ``# repro: noqa[...]`` comment."""

    line: int
    rule_ids: frozenset[str]
    justification: str


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule_id: str
    path: str
    line: int
    message: str
    suppressed: bool = False
    justification: str = ""

    def to_dict(self) -> dict:
        """JSON-serialisable representation (one object per finding)."""
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "suppressed": self.suppressed,
            "justification": self.justification,
        }

    def describe(self) -> str:
        """The conventional ``path:line: [RID] message`` line."""
        mark = " (suppressed)" if self.suppressed else ""
        return (
            f"{self.path}:{self.line}: [{self.rule_id}] "
            f"{self.message}{mark}"
        )


class ModuleInfo:
    """A parsed source module: path, source, AST and suppressions.

    ``relpath`` is the path relative to the linted package root (posix
    separators, e.g. ``"reporting/dmp.py"``) — rules match on it.
    ``path`` is the display path used in findings.
    """

    def __init__(
        self, source: str, relpath: str, path: str | None = None
    ) -> None:
        self.source = source
        self.relpath = relpath.replace("\\", "/")
        self.path = path or self.relpath
        self.lines: tuple[str, ...] = tuple(source.splitlines())
        try:
            self.tree: ast.Module = ast.parse(source)
        except SyntaxError as exc:
            raise StaticCheckError(
                f"cannot parse {self.path}: {exc}"
            ) from exc
        self.suppressions: dict[int, Suppression] = {}
        for number, text in enumerate(self.lines, start=1):
            match = _NOQA_RE.search(text)
            if match:
                ids = frozenset(
                    part.strip()
                    for part in match.group(1).split(",")
                    if part.strip()
                )
                self.suppressions[number] = Suppression(
                    line=number,
                    rule_ids=ids,
                    justification=match.group(2).strip(),
                )
        self._imports: dict[str, str] | None = None

    def import_aliases(self) -> dict[str, str]:
        """Map every imported local name to its dotted origin.

        ``import random`` → ``{"random": "random"}``; ``from random
        import choice as c`` → ``{"c": "random.choice"}``. Relative
        imports are resolved against the module's package path, so in
        ``reporting/dmp.py`` a ``from ..datasets import X`` yields
        ``{"X": "repro.datasets.X"}``.
        """
        if self._imports is not None:
            return self._imports
        aliases: dict[str, str] = {}
        package_parts = ["repro", *self.relpath.split("/")[:-1]]
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for name in node.names:
                    local = name.asname or name.name.split(".")[0]
                    origin = (
                        name.name if name.asname else name.name.split(".")[0]
                    )
                    aliases[local] = origin
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    base_parts = package_parts[
                        : len(package_parts) - (node.level - 1)
                    ]
                    base = ".".join(
                        base_parts + ([node.module] if node.module else [])
                    )
                else:
                    base = node.module or ""
                for name in node.names:
                    if name.name == "*":
                        continue
                    local = name.asname or name.name
                    aliases[local] = f"{base}.{name.name}" if base else (
                        name.name
                    )
        self._imports = aliases
        return aliases

    def resolve_dotted(self, node: ast.AST) -> str | None:
        """Resolve a ``Name``/``Attribute`` chain to a dotted origin.

        ``datetime.datetime.now`` with ``import datetime`` resolves to
        ``"datetime.datetime.now"``; unknown roots return ``None``.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        origin = self.import_aliases().get(node.id)
        if origin is None:
            return None
        return ".".join([origin, *reversed(parts)])

    def suppression_for(self, rule_id: str, line: int) -> Suppression | None:
        """The suppression covering *rule_id* at *line*, if any."""
        suppression = self.suppressions.get(line)
        if suppression and rule_id in suppression.rule_ids:
            return suppression
        return None


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`id`, :attr:`name` and :attr:`description`,
    then implement any of the three hooks. The engine guarantees each
    file is parsed exactly once; :meth:`visit` receives nodes from the
    engine's single walk of that tree.
    """

    id: str = ""
    name: str = ""
    description: str = ""
    #: Bumped whenever the rule's logic changes, so the incremental
    #: cache never serves findings computed by an older rule.
    version: int = 1
    #: AST node types this rule wants dispatched to :meth:`visit`.
    node_types: tuple[type[ast.AST], ...] = ()

    def applies_to(self, module: ModuleInfo) -> bool:
        """Whether the rule runs on *module* (default: every module)."""
        return True

    def visit(
        self, node: ast.AST, module: ModuleInfo
    ) -> Iterable[Finding]:
        """Handle one dispatched node; yield findings."""
        return ()

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        """Whole-module hook (raw source / own traversal); findings."""
        return ()

    def check_project(
        self, project: "Project"
    ) -> Iterable[Finding]:
        """Once-per-run whole-program hook; yields findings.

        *project* is the :class:`~repro.staticcheck.project.Project`
        graph over every linted module — iterate it for the plain
        module list, or use its symbol table / call graph for
        interprocedural rules.
        """
        return ()


class RuleRegistry:
    """Ordered registry of rule instances, addressable by id."""

    def __init__(self, rules: Iterable[Rule] = ()) -> None:
        self._rules: dict[str, Rule] = {}
        for rule in rules:
            self.register(rule)

    def register(self, rule: Rule) -> Rule:
        """Add *rule*; ids must be unique and non-empty."""
        if not rule.id:
            raise StaticCheckError("rule id must be non-empty")
        if rule.id in self._rules:
            raise StaticCheckError(f"duplicate rule id {rule.id!r}")
        self._rules[rule.id] = rule
        return rule

    def __iter__(self) -> Iterator[Rule]:
        return iter(self._rules.values())

    def __len__(self) -> int:
        return len(self._rules)

    @property
    def rule_ids(self) -> tuple[str, ...]:
        return tuple(self._rules)

    def select(self, rule_ids: Iterable[str]) -> "RuleRegistry":
        """A sub-registry containing only *rule_ids* (order kept)."""
        wanted = list(rule_ids)
        unknown = [rid for rid in wanted if rid not in self._rules]
        if unknown:
            raise StaticCheckError(
                f"unknown rule ids {unknown}; known: "
                f"{sorted(self._rules)}"
            )
        return RuleRegistry(
            rule
            for rule in self._rules.values()
            if rule.id in wanted
        )


def default_registry() -> RuleRegistry:
    """The registry with all ten shipped rules (R1–R10)."""
    from .rules_audit import AuditBoundaryRule
    from .rules_consistency import ConsistencyRule
    from .rules_dataflow import SafeguardBoundaryRule
    from .rules_determinism import DeterminismRule
    from .rules_layering import LayeringRule
    from .rules_naming import TelemetryNamingRule
    from .rules_pii import PIILiteralRule
    from .rules_policy import PolicyLiteralRule
    from .rules_purity import PurityRule
    from .rules_workers import WorkerSafetyRule

    return RuleRegistry(
        (
            SafeguardBoundaryRule(),
            DeterminismRule(),
            PIILiteralRule(),
            ConsistencyRule(),
            AuditBoundaryRule(),
            TelemetryNamingRule(),
            LayeringRule(),
            PurityRule(),
            WorkerSafetyRule(),
            PolicyLiteralRule(),
        )
    )


def package_root() -> Path:
    """The directory of the installed ``repro`` package (lint target)."""
    import repro

    return Path(repro.__file__).resolve().parent


class LintEngine:
    """Runs a rule registry over sources, files or the whole package."""

    def __init__(self, registry: RuleRegistry | None = None) -> None:
        self.registry = registry or default_registry()

    # -- single-module lint --------------------------------------------
    def lint_source(
        self, source: str, relpath: str, path: str | None = None
    ) -> list[Finding]:
        """Lint one source string (fixtures, tests)."""
        module = ModuleInfo(source, relpath, path)
        return self._lint_module(module)

    def _lint_module(self, module: ModuleInfo) -> list[Finding]:
        rules = [r for r in self.registry if r.applies_to(module)]
        dispatch: dict[type[ast.AST], list[Rule]] = {}
        for rule in rules:
            for node_type in rule.node_types:
                dispatch.setdefault(node_type, []).append(rule)
        findings: list[Finding] = []
        if dispatch:
            for node in ast.walk(module.tree):
                for rule in dispatch.get(type(node), ()):
                    findings.extend(rule.visit(node, module))
        for rule in rules:
            findings.extend(rule.check_module(module))
        return [self._apply_suppression(f, module) for f in findings]

    @staticmethod
    def _apply_suppression(
        finding: Finding, module: ModuleInfo
    ) -> Finding:
        suppression = module.suppression_for(
            finding.rule_id, finding.line
        )
        if suppression is None:
            return finding
        return dataclasses.replace(
            finding,
            suppressed=True,
            justification=suppression.justification,
        )

    # -- package lint ---------------------------------------------------
    def ruleset_signature(self) -> str:
        """Digest of the registry's (id, version, class) tuples.

        Part of every incremental-cache key: a rule upgrade, removal
        or substitution changes the signature, so cached findings
        computed under a different rule set are never served.
        """
        payload = json.dumps(
            sorted(
                (rule.id, rule.version, type(rule).__name__)
                for rule in self.registry
            )
        )
        return hashlib.blake2b(
            payload.encode("utf-8"), digest_size=16
        ).hexdigest()

    def lint_package(
        self,
        root: Path | None = None,
        *,
        cache_path: Path | None = None,
        workers: int = 1,
        changed_only: bool = False,
    ) -> list[Finding]:
        """Lint every ``.py`` file under *root* (default: ``repro``).

        Per-module rules run file by file; project rules run once at
        the end over the :class:`~repro.staticcheck.project.Project`
        graph. Rules match on paths relative to *root*, so a fixture
        tree mirroring the package layout (``datasets/x.py``,
        ``reporting/x.py``) exercises the same scoping as the real
        source. Findings come back sorted by path then line.

        *cache_path* enables the content-addressed incremental cache:
        files whose digest matches the cache are served without being
        parsed, and whole-program findings are reused while no byte
        of the tree changed. *workers* > 1 fans files that do need
        linting out to a process pool (falling back to serial when
        the registry holds rules a worker cannot reconstruct from the
        default set). *changed_only* reports per-file findings only
        for files that missed the cache — plus whole-program findings
        whenever the project graph changed.
        """
        explicit_root = root is not None
        root = Path(root) if explicit_root else package_root()
        if not root.is_dir():
            raise StaticCheckError(
                f"lint root {root} is not a directory"
            )
        if explicit_root:
            try:
                prefix = root.resolve().relative_to(
                    Path.cwd()
                ).as_posix()
            except ValueError:
                prefix = root.as_posix()
        else:
            prefix = "src/repro"

        # relpath → (display, source, digest); one read per file, no
        # parse yet — cache hits never pay for one.
        entries: dict[str, tuple[str, str, str]] = {}
        for file in sorted(root.rglob("*.py")):
            relpath = file.relative_to(root).as_posix()
            display = (
                f"{prefix}/{relpath}" if prefix != "." else relpath
            )
            raw = file.read_bytes()
            digest = hashlib.blake2b(
                raw, digest_size=16
            ).hexdigest()
            entries[relpath] = (
                display,
                raw.decode("utf-8"),
                digest,
            )

        cache = None
        if cache_path is not None:
            from .cache import LintCache

            cache = LintCache.load(
                cache_path, self.ruleset_signature()
            )

        module_findings: dict[str, list[Finding]] = {}
        modules: dict[str, ModuleInfo] = {}
        stale: list[str] = []
        for relpath, (display, source, digest) in entries.items():
            cached = (
                cache.module_findings(relpath, digest)
                if cache is not None
                else None
            )
            if cached is not None:
                module_findings[relpath] = cached
            else:
                stale.append(relpath)

        if stale:
            parallel = (
                workers > 1
                and len(stale) > 1
                and self._parallel_safe()
            )
            if parallel:
                for relpath, found in self._lint_parallel(
                    entries, stale, workers
                ):
                    module_findings[relpath] = found
            else:
                for relpath in stale:
                    display, source, _ = entries[relpath]
                    module = ModuleInfo(source, relpath, display)
                    modules[relpath] = module
                    module_findings[relpath] = self._lint_module(
                        module
                    )

        # Whole-program findings, keyed on every file's digest plus
        # the rule-set signature (via the cache file's guard).
        hasher = hashlib.blake2b(digest_size=16)
        for relpath in sorted(entries):
            hasher.update(relpath.encode("utf-8"))
            hasher.update(b"\x00")
            hasher.update(entries[relpath][2].encode("utf-8"))
            hasher.update(b"\x00")
        project_key = hasher.hexdigest()

        project_findings = (
            cache.project_findings(project_key)
            if cache is not None
            else None
        )
        project_recomputed = project_findings is None
        if project_recomputed:
            from .project import Project

            for relpath, (display, source, _) in entries.items():
                if relpath not in modules:
                    modules[relpath] = ModuleInfo(
                        source, relpath, display
                    )
            project = Project(
                [modules[r] for r in sorted(entries)],
                {r: entries[r][2] for r in entries},
            )
            stripper = f"{prefix}/" if prefix != "." else ""
            project_findings = []
            for rule in self.registry:
                for finding in rule.check_project(project):
                    module = modules.get(
                        finding.path.removeprefix(stripper)
                        if stripper
                        else finding.path
                    )
                    if module is not None:
                        finding = self._apply_suppression(
                            finding, module
                        )
                    project_findings.append(finding)

        if cache is not None:
            for relpath in stale:
                cache.store_module(
                    relpath,
                    entries[relpath][2],
                    module_findings[relpath],
                )
            if project_recomputed:
                cache.store_project(project_key, project_findings)
            cache.prune(list(entries))
            cache.save()

        reported = stale if changed_only else list(entries)
        findings: list[Finding] = []
        for relpath in reported:
            findings.extend(module_findings[relpath])
        if not changed_only or project_recomputed:
            findings.extend(project_findings)
        findings.sort(key=lambda f: (f.path, f.line, f.rule_id))
        return findings

    def _parallel_safe(self) -> bool:
        """Whether workers can rebuild this registry from rule ids."""
        defaults = {
            rule.id: type(rule) for rule in default_registry()
        }
        return all(
            defaults.get(rule.id) is type(rule)
            for rule in self.registry
        )

    def _lint_parallel(
        self,
        entries: dict[str, tuple[str, str, str]],
        stale: list[str],
        workers: int,
    ) -> list[tuple[str, list[Finding]]]:
        """Fan per-module linting of *stale* out to a process pool."""
        import concurrent.futures

        rule_ids = self.registry.rule_ids
        chunks: list[list[tuple[str, str, str]]] = [
            [] for _ in range(min(workers, len(stale)))
        ]
        for index, relpath in enumerate(stale):
            display, source, _ = entries[relpath]
            chunks[index % len(chunks)].append(
                (relpath, display, source)
            )
        results: list[tuple[str, list[Finding]]] = []
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=len(chunks)
        ) as pool:
            futures = [
                pool.submit(_lint_chunk, rule_ids, chunk)
                for chunk in chunks
            ]
            for future in futures:
                results.extend(future.result())
        return results


def _lint_chunk(
    rule_ids: tuple[str, ...],
    chunk: list[tuple[str, str, str]],
) -> list[tuple[str, list[Finding]]]:
    """Process-pool worker: lint a batch of (relpath, display, source).

    Module-level and picklable by construction (R9's own contract):
    the registry is rebuilt in-process from rule ids, sources travel
    by value, and frozen :class:`Finding` instances travel back.
    """
    engine = LintEngine(default_registry().select(rule_ids))
    results: list[tuple[str, list[Finding]]] = []
    for relpath, display, source in chunk:
        module = ModuleInfo(source, relpath, display)
        results.append((relpath, engine._lint_module(module)))
    return results


def unsuppressed(findings: Iterable[Finding]) -> list[Finding]:
    """The findings that actually fail a lint run."""
    return [f for f in findings if not f.suppressed]
