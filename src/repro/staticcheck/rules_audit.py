"""R5 — audit boundary: safeguard mutations must leave a record.

The observability layer only makes the safeguards inspectable if the
safeguard boundary actually emits into it. R5 enforces that contract
statically: inside ``safeguards/``, every **public method that
mutates instance state** (assignments, deletions or mutating calls
rooted at ``self``) must also emit an audit event in the same method
body — either directly, through
:func:`repro.observability.audit_event`, or via an audit-carrying
attribute such as ``self.audit.append(...)`` (how
:class:`~repro.safeguards.access.AccessController` routes every
attempt through its hash-chained :class:`AuditLog`, which itself
forwards to the global trail).

Private helpers (``_name`` and dunders, including ``__init__``) are
out of scope: they run inside some public method's transaction, and
the event belongs at the boundary, not on every internal step. The
rule is heuristic by design — it looks for the *absence of any*
emission in a mutating method, not for semantic adequacy of the
event — so a genuine non-event mutation (none exist today) would
carry a ``noqa: R5`` with its justification rather than weakening
the rule.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from .engine import Finding, ModuleInfo, Rule

__all__ = ["AuditBoundaryRule"]

#: The emission point mutating safeguard methods must call.
_AUDIT_CALL = "repro.observability.audit_event"

#: Method names that mutate their receiver in place.
_MUTATORS = frozenset(
    {
        "add",
        "append",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "remove",
        "setdefault",
        "update",
    }
)

#: Attribute-name fragments that mark an audit-carrying receiver
#: (``self.audit.append``, ``self.trail.event`` …).
_AUDIT_ATTRS = ("audit", "trail")


def _root(node: ast.AST) -> ast.AST:
    """Strip attribute/subscript layers down to the base expression."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node


def _is_self_rooted(node: ast.AST) -> bool:
    """Whether an attribute/subscript chain starts at ``self``."""
    base = _root(node)
    return isinstance(base, ast.Name) and base.id == "self"


def _mutation_line(body: list[ast.stmt]) -> int | None:
    """The line of the first ``self``-rooted mutation, if any."""
    for node in ast.walk(ast.Module(body=body, type_ignores=[])):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if isinstance(
                    target, (ast.Attribute, ast.Subscript)
                ) and _is_self_rooted(target):
                    return node.lineno
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(
                    target, (ast.Attribute, ast.Subscript)
                ) and _is_self_rooted(target):
                    return node.lineno
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATORS
                and isinstance(
                    func.value, (ast.Attribute, ast.Subscript)
                )
                and _is_self_rooted(func.value)
            ):
                return node.lineno
    return None


def _emits_audit(body: list[ast.stmt], module: ModuleInfo) -> bool:
    """Whether any call in *body* emits into the audit layer."""
    for node in ast.walk(ast.Module(body=body, type_ignores=[])):
        if not isinstance(node, ast.Call):
            continue
        if module.resolve_dotted(node.func) == _AUDIT_CALL:
            return True
        func = node.func
        if isinstance(func, ast.Attribute) and _is_self_rooted(func):
            parts: list[str] = []
            probe: ast.AST = func
            while isinstance(probe, ast.Attribute):
                parts.append(probe.attr)
                probe = probe.value
            if any(
                fragment in part.lower()
                for part in parts
                for fragment in _AUDIT_ATTRS
            ):
                return True
    return False


class AuditBoundaryRule(Rule):
    """Flag mutating public safeguard methods with no audit event."""

    id = "R5"
    name = "audit-boundary"
    description = (
        "public methods in safeguards/ that mutate instance state "
        "must emit an audit event (repro.observability.audit_event "
        "or an audit/trail attribute call)"
    )

    def applies_to(self, module: ModuleInfo) -> bool:
        return module.relpath.startswith("safeguards/")

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        """Walk every class; flag unaudited mutating public methods."""
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for item in node.body:
                if not isinstance(
                    item, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if item.name.startswith("_"):
                    continue
                line = _mutation_line(item.body)
                if line is None:
                    continue
                if _emits_audit(item.body, module):
                    continue
                yield Finding(
                    rule_id=self.id,
                    path=module.path,
                    line=item.lineno,
                    message=(
                        f"{node.name}.{item.name} mutates safeguard "
                        f"state (line {line}) without emitting an "
                        "audit event — call "
                        "repro.observability.audit_event so the "
                        "change is inspectable"
                    ),
                )
