"""R4 — data consistency: codebook, corpus and §5 stats stay in sync.

The determinism-of-publication safeguard: everything the reproduction
publishes (Table 1, the §5 statistics) is *derived* from the coded
corpus against the codebook schema, so the three structures must be
mutually complete — every codebook dimension coded for every corpus
entry, every §5 statistic keyed by codebook ids/abbreviations, and no
orphans in either direction. R4 is *semi-static*: rather than parsing
the data modules' ASTs it imports the structured data they define and
audits the instances, anchoring findings to the defining modules.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import TYPE_CHECKING

from .engine import Finding, Rule

if TYPE_CHECKING:
    from .project import Project

__all__ = ["ConsistencyRule", "check_consistency"]

#: Where each class of drift is anchored.
_CODEBOOK_PATH = "src/repro/codebook/paper.py"
_CORPUS_PATH = "src/repro/corpus/table1.py"
_SECTION5_PATH = "src/repro/analysis/section5.py"

#: §5 count attributes keyed by open-dimension member abbreviations.
_OPEN_COUNTS = {
    "safeguards": "safeguard_counts",
    "harms": "harm_counts",
    "benefits": "benefit_counts",
}

#: §5 count attributes keyed by closed-dimension ids, per group.
_GROUP_COUNTS = {
    "justification": "justification_counts",
    "ethical": "ethical_issue_counts",
    "legal": "legal_issue_counts",
}


def check_consistency(codebook, corpus, stats) -> list[Finding]:
    """Audit codebook ↔ corpus ↔ §5-stats completeness.

    Pure function over the data structures so tests can feed it
    broken fixtures; :class:`ConsistencyRule` calls it with the real
    ``paper_codebook()`` / ``table1_corpus()`` /
    ``section5_statistics()`` instances.
    """
    findings: list[Finding] = []

    def corpus_drift(line: int, message: str) -> None:
        findings.append(
            Finding("R4", _CORPUS_PATH, line, message)
        )

    closed_ids = {d.id for d in codebook.closed_dimensions()}
    open_ids = {d.id for d in codebook.open_dimensions()}
    for entry in corpus:
        missing = closed_ids - set(entry.values)
        if missing:
            corpus_drift(
                1,
                f"entry {entry.id!r} is missing closed dimensions "
                f"{sorted(missing)}",
            )
        missing_open = open_ids - set(entry.code_sets)
        if missing_open:
            corpus_drift(
                1,
                f"entry {entry.id!r} does not code open dimensions "
                f"{sorted(missing_open)} (code even the empty set "
                "explicitly)",
            )
        orphans = (
            set(entry.values) | set(entry.code_sets)
        ) - closed_ids - open_ids
        if orphans:
            corpus_drift(
                1,
                f"entry {entry.id!r} codes dimensions "
                f"{sorted(orphans)} absent from the codebook",
            )

    for dim_id, attribute in _OPEN_COUNTS.items():
        if dim_id not in codebook.dimension_ids:
            findings.append(
                Finding(
                    "R4",
                    _CODEBOOK_PATH,
                    1,
                    f"codebook lacks the open dimension {dim_id!r} "
                    f"that §5 reports as {attribute!r}",
                )
            )
            continue
        expected = {c.abbrev for c in codebook[dim_id].members}
        reported = set(getattr(stats, attribute, {}) or {})
        for abbrev in sorted(expected - reported):
            findings.append(
                Finding(
                    "R4",
                    _SECTION5_PATH,
                    1,
                    f"{attribute} omits codebook member {abbrev!r} "
                    f"of dimension {dim_id!r}",
                )
            )
        for abbrev in sorted(reported - expected):
            findings.append(
                Finding(
                    "R4",
                    _SECTION5_PATH,
                    1,
                    f"{attribute} reports orphan key {abbrev!r} with "
                    f"no member in codebook dimension {dim_id!r}",
                )
            )

    for group, attribute in _GROUP_COUNTS.items():
        expected = {d.id for d in codebook.group(group)}
        reported = set(getattr(stats, attribute, {}) or {})
        for dim_id in sorted(expected - reported):
            findings.append(
                Finding(
                    "R4",
                    _SECTION5_PATH,
                    1,
                    f"{attribute} omits codebook dimension {dim_id!r} "
                    f"of group {group!r}",
                )
            )
        for dim_id in sorted(reported - expected):
            findings.append(
                Finding(
                    "R4",
                    _SECTION5_PATH,
                    1,
                    f"{attribute} reports orphan key {dim_id!r} not a "
                    f"{group!r}-group dimension of the codebook",
                )
            )
    return findings


class ConsistencyRule(Rule):
    """Run :func:`check_consistency` on the real paper data."""

    id = "R4"
    name = "data-consistency"
    description = (
        "codebook dimensions, corpus codings and §5 statistic keys "
        "must be mutually complete, with no orphans"
    )

    def check_project(
        self, project: "Project"
    ) -> Iterable[Finding]:
        """Audit the imported paper data once per full-package run."""
        relpaths = {m.relpath for m in project}
        # Only meaningful when linting the real package tree.
        if not {
            "codebook/paper.py",
            "corpus/table1.py",
            "analysis/section5.py",
        } <= relpaths:
            return ()
        from ..analysis import section5_statistics
        from ..codebook import paper_codebook
        from ..corpus import table1_corpus

        codebook = paper_codebook()
        corpus = table1_corpus()
        stats = section5_statistics(corpus)
        return check_consistency(codebook, corpus, stats)
