"""R9 — worker-safety: process-pool submissions picklable by design.

The batch executor (``ops/batch.py``), the pipeline fan-out
(``pipeline/core.py``) and the parallel lint itself ship work to
``ProcessPoolExecutor`` workers. Everything that crosses that
boundary is pickled, and the failure modes are nasty precisely
because they are *not* local: a lambda or bound method raises
``PicklingError`` only when the pool is first exercised, and a
worker function that closes over shared mutable state silently
computes against a stale copy in the child process. R9 turns the
implicit contract into a checked one — every callable handed to a
process pool must be:

* a **module-level function** (or class) resolvable through the
  project symbol table or an import — the shapes pickle serialises
  by reference and re-imports in the worker;
* **not** a lambda, a nested function, a bound method or the return
  value of an arbitrary call (``functools.partial`` of a
  module-level function is allowed — pickle supports it);
* free of **mutable default arguments** (a list/dict/set default is
  per-process shared state masquerading as a parameter);
* called with **no lambda arguments** (arguments are pickled too).

Deliberately *not* flagged: reads and writes of module-level
containers inside worker functions. Those are per-process by
construction — ``_WORKER_CONTEXTS`` in the batch executor and
``_RUNNER_CACHE`` in the pipeline exist precisely to keep expensive
state resident per worker process, and the ordered merge in both
executors makes worker-local state invisible in output bytes.

Pool detection is name-based within a module: names bound to a
``ProcessPoolExecutor`` (or ``multiprocessing.Pool``) via assignment
or ``with ... as pool`` are tracked, and ``submit``/``map``-family
calls on them are audited. Thread pools are exempt — nothing is
pickled across a thread boundary.
"""

from __future__ import annotations

import ast
import builtins
from collections.abc import Iterable, Iterator
from typing import TYPE_CHECKING

from .engine import Finding, ModuleInfo, Rule

if TYPE_CHECKING:
    from .project import Project

__all__ = ["WorkerSafetyRule"]

#: Constructors whose instances ship work to *processes*.
_EXECUTOR_TYPES = frozenset(
    {
        "concurrent.futures.ProcessPoolExecutor",
        "concurrent.futures.process.ProcessPoolExecutor",
        "multiprocessing.Pool",
        "multiprocessing.pool.Pool",
    }
)

#: Methods that carry a callable (always the first argument).
_SUBMIT_METHODS = frozenset(
    {
        "submit",
        "map",
        "apply",
        "apply_async",
        "map_async",
        "imap",
        "imap_unordered",
        "starmap",
        "starmap_async",
    }
)


class WorkerSafetyRule(Rule):
    """Flag unpicklable / state-sharing process-pool submissions."""

    id = "R9"
    name = "worker-safety"
    description = (
        "callables submitted to a process pool must be module-level "
        "and picklable by construction: no lambdas, bound methods, "
        "nested functions or mutable default arguments"
    )

    def check_project(self, project: "Project") -> Iterable[Finding]:
        """Audit every submit-like call on a process-pool binding."""
        findings: list[Finding] = []
        for module in project:
            pools = self._pool_names(module)
            for call in ast.walk(module.tree):
                if not isinstance(call, ast.Call):
                    continue
                if not self._is_submission(call, module, pools):
                    continue
                findings.extend(
                    self._audit_submission(project, module, call)
                )
        return findings

    # -- pool detection -------------------------------------------------
    def _pool_names(self, module: ModuleInfo) -> set[str]:
        """Names bound to a process-pool instance in *module*."""
        names: set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign):
                if self._is_executor(node.value, module):
                    names.update(
                        target.id
                        for target in node.targets
                        if isinstance(target, ast.Name)
                    )
            elif isinstance(node, ast.With):
                for item in node.items:
                    if self._is_executor(
                        item.context_expr, module
                    ) and isinstance(
                        item.optional_vars, ast.Name
                    ):
                        names.add(item.optional_vars.id)
        return names

    @staticmethod
    def _is_executor(expr: ast.expr, module: ModuleInfo) -> bool:
        if not isinstance(expr, ast.Call):
            return False
        dotted = module.resolve_dotted(expr.func)
        return dotted in _EXECUTOR_TYPES

    def _is_submission(
        self, call: ast.Call, module: ModuleInfo, pools: set[str]
    ) -> bool:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return False
        if func.attr not in _SUBMIT_METHODS:
            return False
        if isinstance(func.value, ast.Name):
            return func.value.id in pools
        # Direct ``ProcessPoolExecutor(...).submit(...)``.
        return self._is_executor(func.value, module)

    # -- submission audit ------------------------------------------------
    def _audit_submission(
        self,
        project: "Project",
        module: ModuleInfo,
        call: ast.Call,
    ) -> Iterator[Finding]:
        if not call.args:
            return
        yield from self._audit_target(
            project, module, call, call.args[0]
        )
        for arg in [*call.args[1:], *call.keywords]:
            value = arg.value if isinstance(arg, ast.keyword) else arg
            if isinstance(value, ast.Lambda):
                yield self._finding(
                    module,
                    call,
                    "a lambda passed as a pool-call argument "
                    "cannot be pickled to the worker process",
                )

    def _audit_target(
        self,
        project: "Project",
        module: ModuleInfo,
        call: ast.Call,
        target: ast.expr,
    ) -> Iterator[Finding]:
        from .project import (
            ClassSymbol,
            FunctionSymbol,
            module_dotted,
        )

        if isinstance(target, ast.Lambda):
            yield self._finding(
                module,
                call,
                "a lambda cannot be pickled; submit a module-level "
                "function instead",
            )
            return
        if isinstance(target, ast.Call):
            inner = module.resolve_dotted(target.func)
            if inner == "functools.partial" and target.args:
                # partial(fn, ...) pickles iff fn does — audit fn.
                yield from self._audit_target(
                    project, module, call, target.args[0]
                )
                return
            yield self._finding(
                module,
                call,
                "the submitted callable is the result of a call; "
                "only module-level functions (or functools.partial "
                "over one) are picklable by construction",
            )
            return
        if isinstance(target, ast.Attribute):
            if (
                isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                yield self._finding(
                    module,
                    call,
                    f"bound method self.{target.attr} cannot be "
                    "pickled; hoist the worker to a module-level "
                    "function",
                )
                return
            dotted = module.resolve_dotted(target)
        elif isinstance(target, ast.Name):
            dotted = module.import_aliases().get(target.id)
            if dotted is None:
                local = (
                    f"{module_dotted(module.relpath)}.{target.id}"
                )
                if (
                    local in project.functions
                    or local in project.classes
                ):
                    dotted = local
                elif hasattr(builtins, target.id):
                    return  # builtins pickle by reference
                else:
                    yield self._finding(
                        module,
                        call,
                        f"{target.id!r} does not resolve to a "
                        "module-level function — a nested function "
                        "or local closure cannot be pickled to the "
                        "worker process",
                    )
                    return
        else:
            yield self._finding(
                module,
                call,
                "cannot determine the submitted callable "
                "statically; submit a module-level function by "
                "name",
            )
            return
        if dotted is None:
            yield self._finding(
                module,
                call,
                "the submitted callable does not resolve to a "
                "module-level function; workers can only unpickle "
                "importable callables",
            )
            return
        symbol = project.resolve(dotted)
        if symbol is None:
            # External dotted callables (json.loads, math.sqrt)
            # pickle by reference; only package-internal names we
            # cannot find are suspicious, and those already failed
            # resolution above.
            return
        if isinstance(symbol, ClassSymbol):
            return  # classes pickle by reference
        if isinstance(symbol, FunctionSymbol):
            if symbol.is_method:
                yield self._finding(
                    module,
                    call,
                    f"{dotted} is a method; pickling an unbound "
                    "method drags the class and instance protocol "
                    "in — hoist the worker to a module-level "
                    "function",
                )
                return
            yield from self._mutable_defaults(module, call, symbol)

    def _mutable_defaults(
        self, module: ModuleInfo, call: ast.Call, symbol
    ) -> Iterator[Finding]:
        args = symbol.node.args
        defaults = [*args.defaults, *args.kw_defaults]
        for default in defaults:
            if isinstance(
                default, (ast.List, ast.Dict, ast.Set)
            ):
                yield self._finding(
                    module,
                    call,
                    f"worker function {symbol.qualname.rsplit('.', 1)[-1]} "
                    "has a mutable default argument — per-process "
                    "shared state masquerading as a parameter",
                )
                return

    def _finding(
        self, module: ModuleInfo, call: ast.Call, message: str
    ) -> Finding:
        return Finding(
            rule_id=self.id,
            path=module.path,
            line=call.lineno,
            message=message,
        )
