"""R6 — telemetry naming: instrument and event names stay exportable.

The exporters in :mod:`repro.observability.export` map registry names
onto Prometheus/OTLP identifiers mechanically (dots become
underscores, everything else passes through). That mapping is only
collision-free and grep-friendly if the names going *in* are
consistent, which is a convention a reviewer cannot reliably police
by eye across the codebase. R6 enforces it at every instrument- and
event-creation call site:

* ``.counter(name)`` / ``.gauge(name)`` / ``.histogram(name)`` /
  ``.span(name)`` — the name must be **dotted snake_case**:
  lowercase segments of ``[a-z0-9_]`` joined by single dots
  (``pipeline.run.seconds``, ``audit.chain.length``). F-string
  names are checked fragment-by-fragment (``f"span.{name}.seconds"``
  passes; the interpolated parts are the caller's responsibility);
* ``audit_event(category, action, …)`` — category and action must be
  **lowercase kebab/snake**: ``[a-z0-9_-]`` segments, dots allowed
  as separators (``pipeline``, ``run-started``, ``open-failed``).

Only literal (or f-string) arguments are judged; names built in
variables are out of reach of a static rule and intentionally
skipped, as are string-free calls such as ``re.Match.span()``. The
rule runs over the whole package — telemetry can be emitted from
anywhere — and ships with an empty baseline: every current call
site complies.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable

from .engine import Finding, ModuleInfo, Rule

__all__ = ["TelemetryNamingRule"]

#: Attribute names whose first argument is an instrument name.
_INSTRUMENT_METHODS = frozenset(
    {"counter", "gauge", "histogram", "span"}
)

#: Resolved dotted targets of the audit-event helper.
_AUDIT_EVENT_TARGETS = frozenset(
    {
        "repro.observability.audit_event",
        "repro.observability.runtime.audit_event",
    }
)

#: Full instrument-name literals: dotted snake_case.
_INSTRUMENT_RE = re.compile(
    r"^[a-z][a-z0-9_]*(?:\.[a-z0-9_]+)*$"
)
#: F-string fragments of an instrument name (may start/end at a dot).
_INSTRUMENT_FRAGMENT_RE = re.compile(r"^[a-z0-9_.]*$")

#: Full event category/action literals: lowercase kebab/snake.
_EVENT_RE = re.compile(
    r"^[a-z][a-z0-9_-]*(?:\.[a-z0-9_-]+)*$"
)
_EVENT_FRAGMENT_RE = re.compile(r"^[a-z0-9_.-]*$")


def _literal_ok(
    node: ast.AST, full: re.Pattern[str], fragment: re.Pattern[str]
) -> tuple[bool, str] | None:
    """Judge one name argument; None when it is not judgeable.

    Returns ``(ok, display)`` for a string constant or f-string —
    f-strings are checked fragment-by-fragment against the looser
    *fragment* pattern since interpolations may supply segment
    boundaries. Anything else (variables, concatenation, non-string
    constants) returns None and is skipped.
    """
    if isinstance(node, ast.Constant):
        if not isinstance(node.value, str):
            return None
        return bool(full.match(node.value)), repr(node.value)
    if isinstance(node, ast.JoinedStr):
        pieces: list[str] = []
        for value in node.values:
            if isinstance(value, ast.Constant) and isinstance(
                value.value, str
            ):
                if not fragment.match(value.value):
                    return False, ast.unparse(node)
                pieces.append(value.value)
            else:
                pieces.append("{…}")
        return True, "".join(pieces)
    return None


class TelemetryNamingRule(Rule):
    """Flag non-conforming metric/span/event names at creation sites."""

    id = "R6"
    name = "telemetry-naming"
    description = (
        "metric/span names must be dotted snake_case and audit-event "
        "category/action lowercase kebab, so exporter output stays "
        "collision-free and grep-friendly"
    )
    node_types = (ast.Call,)

    def visit(
        self, node: ast.AST, module: ModuleInfo
    ) -> Iterable[Finding]:
        """Judge literal name arguments of telemetry-creation calls."""
        assert isinstance(node, ast.Call)
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _INSTRUMENT_METHODS
            and node.args
        ):
            verdict = _literal_ok(
                node.args[0], _INSTRUMENT_RE, _INSTRUMENT_FRAGMENT_RE
            )
            if verdict is not None and not verdict[0]:
                yield Finding(
                    rule_id=self.id,
                    path=module.path,
                    line=node.lineno,
                    message=(
                        f"instrument name {verdict[1]} is not dotted "
                        f"snake_case (e.g. 'pipeline.run.seconds') — "
                        f"exporters flatten dots; mixed case or "
                        f"hyphens collide and break grep"
                    ),
                )
            return
        dotted = module.resolve_dotted(func)
        if dotted not in _AUDIT_EVENT_TARGETS:
            return
        for position, label in ((0, "category"), (1, "action")):
            if len(node.args) <= position:
                break
            verdict = _literal_ok(
                node.args[position], _EVENT_RE, _EVENT_FRAGMENT_RE
            )
            if verdict is not None and not verdict[0]:
                yield Finding(
                    rule_id=self.id,
                    path=module.path,
                    line=node.lineno,
                    message=(
                        f"audit-event {label} {verdict[1]} must be "
                        f"lowercase kebab/snake (e.g. 'run-started') "
                        f"for stable audit reports and exports"
                    ),
                )
