"""R7 — layering: CLI modules reach subsystems only via ``repro.ops``.

The service-kernel extraction (:mod:`repro.ops`) holds only if no
adapter quietly grows its own subsystem wiring back. The CLI is the
adapter most at risk — every new subcommand is a temptation to import
``repro.datasets`` or ``repro.pipeline`` directly instead of
registering an operation — so R7 pins the dependency direction
statically: modules under ``cli/`` may import from the standard
library, from ``repro.ops`` and from within ``repro.cli`` itself,
and from nothing else in the ``repro`` package.

Both absolute (``import repro.datasets``, ``from repro.analysis
import stats``) and relative (``from ..analysis import stats``)
forms are resolved against the module's package path and judged the
same way; a bare ``import repro`` is also flagged, since it exists
only to reach attributes the layering forbids. The rule ships with
an empty baseline: the CLI is a thin adapter and must stay one.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from .engine import Finding, ModuleInfo, Rule

__all__ = ["LayeringRule"]

#: Dotted prefixes a CLI module may import from the repro package.
_ALLOWED_PREFIXES = ("repro.ops", "repro.cli")


def _allowed(dotted: str) -> bool:
    """Whether a resolved repro-package import respects the layering."""
    return any(
        dotted == prefix or dotted.startswith(prefix + ".")
        for prefix in _ALLOWED_PREFIXES
    )


class LayeringRule(Rule):
    """Flag CLI imports that bypass the ``repro.ops`` service kernel."""

    id = "R7"
    name = "layering"
    description = (
        "modules under cli/ must import repro subsystems only via "
        "repro.ops, keeping the CLI a thin adapter over the service "
        "kernel"
    )
    node_types = (ast.Import, ast.ImportFrom)

    def applies_to(self, module: ModuleInfo) -> bool:
        """Only adapter modules under ``cli/`` are in scope."""
        return module.relpath.startswith("cli/")

    def visit(
        self, node: ast.AST, module: ModuleInfo
    ) -> Iterable[Finding]:
        """Judge each import statement's resolved dotted targets."""
        for dotted in self._targets(node, module):
            if dotted.split(".")[0] != "repro":
                continue
            if _allowed(dotted):
                continue
            yield Finding(
                rule_id=self.id,
                path=module.path,
                line=node.lineno,
                message=(
                    f"cli module imports {dotted!r} directly; route "
                    f"through the repro.ops service kernel (register "
                    f"an operation) so the CLI stays a thin adapter"
                ),
            )

    @staticmethod
    def _targets(
        node: ast.AST, module: ModuleInfo
    ) -> Iterable[str]:
        """Resolve one import statement to dotted origin names.

        Relative imports resolve against the module's package path
        exactly as :meth:`ModuleInfo.import_aliases` does, so
        ``from ..ops import execute`` in ``cli/main.py`` yields
        ``repro.ops.execute``.
        """
        if isinstance(node, ast.Import):
            for name in node.names:
                yield name.name
            return
        assert isinstance(node, ast.ImportFrom)
        if node.level:
            package_parts = [
                "repro",
                *module.relpath.split("/")[:-1],
            ]
            base_parts = package_parts[
                : len(package_parts) - (node.level - 1)
            ]
            base = ".".join(
                base_parts
                + ([node.module] if node.module else [])
            )
        else:
            base = node.module or ""
        for name in node.names:
            if name.name == "*":
                yield base
            elif base:
                yield f"{base}.{name.name}"
            else:
                yield name.name
