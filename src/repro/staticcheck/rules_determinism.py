"""R2 — determinism: the simulation substrate must be seed-driven.

The paper's reproducibility safeguard (and the DESIGN.md contract of
``datasets``) is that the same seed yields a byte-identical dataset:
what gets published or shared is then a deterministic function of the
seed, never of wall-clock time or hidden global RNG state. R2 flags,
inside ``datasets/``, ``analysis/`` and ``pipeline/``:

* calls through the **global** ``random`` module RNG
  (``random.random()``, ``from random import choice; choice(...)``) —
  only explicit ``random.Random(seed)`` instances are allowed;
* ``random.SystemRandom`` — unseedable by construction;
* clock reads — ``datetime.datetime.now()`` / ``utcnow()`` /
  ``today()``, ``datetime.date.today()``, ``time.time()`` /
  ``time.time_ns()`` / ``time.monotonic()``;
* random UUIDs — ``uuid.uuid4()`` and the MAC/time-based
  ``uuid.uuid1()``.

The worker-pool pipeline is in scope **without needing noqa**
because the rule denies specific nondeterministic *calls*, not
modules: ``concurrent.futures`` scheduling and
``time.perf_counter()`` metrics are deliberately allowed — they may
reorder or time the work, but the pipeline's ordered merge and
pure-PRF stages guarantee they can never change the output bytes.
``secrets``-based salt/nonce draws stay out of scope by design (the
pipeline's seal stage passes explicit content-derived values).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from .engine import Finding, ModuleInfo, Rule

__all__ = ["DeterminismRule"]

#: Package-relative prefixes the rule polices. ``pipeline/`` is
#: included because its parallel fan-out must also be a pure
#: function of (seed, key, input) — see the module docstring for why
#: concurrent.futures needs no allowlisting.
_SCOPES = ("datasets/", "analysis/", "pipeline/")

#: Dotted call targets that are always nondeterministic.
_DENIED_CALLS = frozenset(
    {
        "random.SystemRandom",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)

#: ``random.*`` attributes that do NOT touch the global RNG.
_RANDOM_ALLOWED = frozenset({"random.Random"})


class DeterminismRule(Rule):
    """Flag clock/global-RNG/UUID calls in the simulation substrate."""

    id = "R2"
    name = "determinism"
    description = (
        "datasets/, analysis/ and pipeline/ must be reproducible by "
        "seed: no global random.* calls, clock reads, or random UUIDs"
    )
    node_types = (ast.Call,)

    def applies_to(self, module: ModuleInfo) -> bool:
        return module.relpath.startswith(_SCOPES)

    def visit(
        self, node: ast.AST, module: ModuleInfo
    ) -> Iterable[Finding]:
        """Flag a dispatched call when it resolves to a denied target."""
        assert isinstance(node, ast.Call)
        dotted = module.resolve_dotted(node.func)
        if dotted is None:
            return
        if dotted in _DENIED_CALLS:
            yield Finding(
                rule_id=self.id,
                path=module.path,
                line=node.lineno,
                message=(
                    f"nondeterministic call {dotted}() — the synthetic "
                    "substrate must be a function of its seed"
                ),
            )
        elif (
            dotted.startswith("random.")
            and dotted not in _RANDOM_ALLOWED
        ):
            yield Finding(
                rule_id=self.id,
                path=module.path,
                line=node.lineno,
                message=(
                    f"global-RNG call {dotted}() — use an explicit "
                    "random.Random(seed) instance"
                ),
            )
