"""R1 — safeguard boundary: raw records must pass through anonymization.

The paper's central safeguard pipeline (§5.2, and the operational
spine of ``docs/architecture.md``) is ``datasets → anonymization →
sharing/reporting``: whatever leaves the research environment — a
report, a controlled-sharing release — must have crossed the
anonymization layer first. R1 enforces that boundary statically on
the outbound modules (everything under ``reporting/`` and the
controlled-sharing module ``safeguards/sharing``):

* importing a raw record constructor from ``datasets`` in one of
  these modules is flagged **at the import** when the module imports
  nothing from ``anonymization`` at all (there is no way the data
  could be sanitised locally);
* otherwise a lightweight, scope-local taint walk follows values
  derived from the raw constructors and flags every point where a
  tainted value *escapes* — returned, yielded, or passed to a call
  that is not an anonymization function (or an instance of one).

The taint analysis is deliberately simple — linear, per-scope, name
based — because the boundary it guards is architectural: outbound
modules should barely touch raw records at all, so any flow the walk
cannot prove sanitised deserves a human look (or an explicit
``# repro: noqa[R1]`` with a justification in the baseline).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from .engine import Finding, ModuleInfo, Rule

__all__ = ["SafeguardBoundaryRule"]

#: Outbound modules the boundary applies to.
_BOUNDARY_PREFIXES = ("reporting/",)
_BOUNDARY_MODULES = ("safeguards/sharing.py",)

_RAW_ORIGIN = "repro.datasets"
_SANITIZER_ORIGIN = "repro.anonymization"


def _origin_matches(origin: str, package: str) -> bool:
    return origin == package or origin.startswith(package + ".")


def _call_repr(call: ast.Call) -> str:
    """Best-effort source-ish name of the called function."""
    parts: list[str] = []
    node: ast.AST = call.func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return "<call>"


class SafeguardBoundaryRule(Rule):
    """Keep raw dataset records out of outbound modules."""

    id = "R1"
    name = "safeguard-boundary"
    description = (
        "reporting/ and safeguards/sharing may not consume raw "
        "datasets/ records except through an anonymization function"
    )
    node_types = (ast.Module,)

    def applies_to(self, module: ModuleInfo) -> bool:
        """Only outbound modules sit on the safeguard boundary."""
        return module.relpath.startswith(
            _BOUNDARY_PREFIXES
        ) or module.relpath in _BOUNDARY_MODULES

    def visit(
        self, node: ast.AST, module: ModuleInfo
    ) -> Iterable[Finding]:
        """Check the module node: imports first, then the taint walk."""
        assert isinstance(node, ast.Module)
        imports = module.import_aliases()
        raw = {
            name
            for name, origin in imports.items()
            if _origin_matches(origin, _RAW_ORIGIN)
        }
        if not raw:
            return
        sanitizers = {
            name
            for name, origin in imports.items()
            if _origin_matches(origin, _SANITIZER_ORIGIN)
        }
        if not sanitizers:
            for stmt in ast.walk(node):
                if isinstance(
                    stmt, (ast.Import, ast.ImportFrom)
                ) and any(
                    (alias.asname or alias.name.split(".")[0]) in raw
                    for alias in stmt.names
                ):
                    yield Finding(
                        rule_id=self.id,
                        path=module.path,
                        line=stmt.lineno,
                        message=(
                            "outbound module imports raw dataset "
                            "constructors but nothing from "
                            "anonymization — records cannot be "
                            "sanitised here"
                        ),
                    )
            return
        # Taint-walk the module body and every function body.
        yield from self._walk_scope(
            node.body, module, raw, set(sanitizers)
        )
        for inner in ast.walk(node):
            if isinstance(
                inner, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                yield from self._walk_scope(
                    inner.body, module, raw, set(sanitizers)
                )

    # -- taint machinery ------------------------------------------------
    def _walk_scope(
        self,
        body: list[ast.stmt],
        module: ModuleInfo,
        raw: set[str],
        sanitizer_vars: set[str],
    ) -> Iterator[Finding]:
        tainted: set[str] = set()
        yield from self._walk_block(
            body, module, raw, sanitizer_vars, tainted
        )

    def _walk_block(
        self,
        body: list[ast.stmt],
        module: ModuleInfo,
        raw: set[str],
        sanitizer_vars: set[str],
        tainted: set[str],
    ) -> Iterator[Finding]:
        for stmt in body:
            yield from self._walk_stmt(
                stmt, module, raw, sanitizer_vars, tainted
            )

    def _walk_stmt(
        self,
        stmt: ast.stmt,
        module: ModuleInfo,
        raw: set[str],
        sanitizer_vars: set[str],
        tainted: set[str],
    ) -> Iterator[Finding]:
        def is_tainted(expr: ast.AST | None) -> bool:
            return self._tainted(expr, raw, sanitizer_vars, tainted)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # own scope, walked separately
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = stmt.value
            if value is not None:
                yield from self._scan_escapes(
                    value, module, raw, sanitizer_vars, tainted
                )
                targets = (
                    stmt.targets
                    if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                names = [
                    n.id
                    for t in targets
                    for n in ast.walk(t)
                    if isinstance(n, ast.Name)
                ]
                if isinstance(
                    value, ast.Call
                ) and self._is_sanitizer_call(value, sanitizer_vars):
                    # Sanitised result: clean, and itself usable as a
                    # sanitizer (covers `scrubber = TextScrubber()`).
                    tainted.difference_update(names)
                    sanitizer_vars.update(names)
                elif is_tainted(value):
                    tainted.update(names)
                else:
                    tainted.difference_update(names)
            return
        if isinstance(stmt, (ast.Return, ast.Expr)):
            value = stmt.value
            if value is None:
                return
            yield from self._scan_escapes(
                value, module, raw, sanitizer_vars, tainted
            )
            escape = value
            verb = "returns"
            if isinstance(value, (ast.Yield, ast.YieldFrom)):
                escape = value.value
                verb = "yields"
            if isinstance(stmt, ast.Return) or verb == "yields":
                if escape is not None and is_tainted(escape):
                    yield Finding(
                        rule_id=self.id,
                        path=module.path,
                        line=stmt.lineno,
                        message=(
                            f"{verb} a raw dataset-derived value "
                            "without routing it through an "
                            "anonymization function"
                        ),
                    )
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            yield from self._scan_escapes(
                stmt.iter, module, raw, sanitizer_vars, tainted
            )
            if is_tainted(stmt.iter):
                tainted.update(
                    n.id
                    for n in ast.walk(stmt.target)
                    if isinstance(n, ast.Name)
                )
            yield from self._walk_block(
                [*stmt.body, *stmt.orelse],
                module, raw, sanitizer_vars, tainted,
            )
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                yield from self._scan_escapes(
                    item.context_expr, module, raw, sanitizer_vars,
                    tainted,
                )
                if item.optional_vars is not None and is_tainted(
                    item.context_expr
                ):
                    tainted.update(
                        n.id
                        for n in ast.walk(item.optional_vars)
                        if isinstance(n, ast.Name)
                    )
            yield from self._walk_block(
                stmt.body, module, raw, sanitizer_vars, tainted
            )
            return
        if isinstance(stmt, ast.If):
            yield from self._scan_escapes(
                stmt.test, module, raw, sanitizer_vars, tainted
            )
            yield from self._walk_block(
                [*stmt.body, *stmt.orelse],
                module, raw, sanitizer_vars, tainted,
            )
            return
        if isinstance(stmt, ast.While):
            yield from self._scan_escapes(
                stmt.test, module, raw, sanitizer_vars, tainted
            )
            yield from self._walk_block(
                [*stmt.body, *stmt.orelse],
                module, raw, sanitizer_vars, tainted,
            )
            return
        if isinstance(stmt, ast.Try):
            blocks = [*stmt.body, *stmt.orelse, *stmt.finalbody]
            for handler in stmt.handlers:
                blocks.extend(handler.body)
            yield from self._walk_block(
                blocks, module, raw, sanitizer_vars, tainted
            )
            return
        # Fallback: scan any other statement's expressions for escapes.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                yield from self._scan_escapes(
                    child, module, raw, sanitizer_vars, tainted
                )

    def _is_sanitizer_call(
        self, call: ast.Call, sanitizer_vars: set[str]
    ) -> bool:
        node: ast.AST = call.func
        while isinstance(node, ast.Attribute):
            node = node.value
        return isinstance(node, ast.Name) and node.id in sanitizer_vars

    def _tainted(
        self,
        expr: ast.AST | None,
        raw: set[str],
        sanitizer_vars: set[str],
        tainted: set[str],
    ) -> bool:
        """Does *expr* carry raw dataset data?

        Recursion stops at sanitizer calls: ``publish(scrub(dump))``
        is clean because ``scrub`` consumes the taint.
        """
        if expr is None:
            return False
        if isinstance(expr, ast.Call) and self._is_sanitizer_call(
            expr, sanitizer_vars
        ):
            return False
        if isinstance(expr, ast.Name):
            return expr.id in tainted or expr.id in raw
        return any(
            self._tainted(child, raw, sanitizer_vars, tainted)
            for child in ast.iter_child_nodes(expr)
        )

    def _scan_escapes(
        self,
        expr: ast.AST,
        module: ModuleInfo,
        raw: set[str],
        sanitizer_vars: set[str],
        tainted: set[str],
    ) -> Iterator[Finding]:
        """Flag non-sanitizer calls that receive a tainted argument."""
        if isinstance(expr, ast.Call):
            if self._is_sanitizer_call(expr, sanitizer_vars):
                return  # the sanitizer consumes its arguments
            arguments = [
                *expr.args,
                *(kw.value for kw in expr.keywords),
            ]
            for argument in arguments:
                if self._tainted(argument, raw, sanitizer_vars, tainted):
                    yield Finding(
                        rule_id=self.id,
                        path=module.path,
                        line=expr.lineno,
                        message=(
                            "raw dataset-derived value reaches "
                            f"{_call_repr(expr)}() without passing "
                            "through an anonymization function"
                        ),
                    )
                    break
        for child in ast.iter_child_nodes(expr):
            yield from self._scan_escapes(
                child, module, raw, sanitizer_vars, tainted
            )
