"""Content-addressed incremental cache for lint findings.

Lint output is a pure function of three inputs: the bytes of each
source file, the rule set (ids and versions), and — for whole-program
rules — the content of every file in the tree. The cache keys on
exactly those inputs and nothing else, the same discipline
:class:`repro.ops.cache.ResultCache` applies to operation results:

* **per-file findings** are stored against the BLAKE2b digest of the
  file's source; an untouched file is served from cache without even
  being parsed;
* **project findings** (from ``check_project`` rules) are stored
  against a digest over every ``(relpath, file digest)`` pair plus
  the rule-set signature — any byte anywhere invalidates them;
* the **rule-set signature** (rule ids, versions and classes) guards
  the whole file: a rule upgrade or a different ``--select`` set
  never serves findings computed under other rules.

No timestamps, no mtimes: the repository's clock-free convention
holds here too, so a cache file is valid forever until the content it
describes changes. A missing, corrupt or mismatched cache file is
simply a cold start — the cache can be deleted at any time.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from .engine import Finding, package_root

__all__ = ["LintCache", "default_cache_path"]

#: Bump when the on-disk layout changes; mismatches read as empty.
SCHEMA = 1


def default_cache_path() -> Path | None:
    """Where the repo-level incremental cache lives, if anywhere.

    ``.staticcheck-cache.json`` next to ``pyproject.toml`` when the
    package is an src-layout checkout (the development case). When
    ``repro`` is an installed site-package there is no repo to write
    into, so the cache is disabled and every lint runs cold.
    """
    repo = package_root().parent.parent
    if (repo / "pyproject.toml").is_file():
        return repo / ".staticcheck-cache.json"
    return None


def _finding_from_dict(payload: dict) -> Finding:
    return Finding(
        rule_id=payload["rule"],
        path=payload["path"],
        line=payload["line"],
        message=payload["message"],
        suppressed=payload.get("suppressed", False),
        justification=payload.get("justification", ""),
    )


class LintCache:
    """One cache file: per-file findings plus project findings."""

    def __init__(self, path: Path | str, ruleset: str) -> None:
        self.path = Path(path)
        self.ruleset = ruleset
        self._modules: dict[str, dict] = {}
        self._project: dict | None = None
        self._dirty = False

    @classmethod
    def load(cls, path: Path | str, ruleset: str) -> "LintCache":
        """Read the cache at *path*; anything invalid reads as empty."""
        cache = cls(path, ruleset)
        try:
            payload = json.loads(
                Path(path).read_text(encoding="utf-8")
            )
        except (OSError, ValueError):
            return cache
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != SCHEMA
            or payload.get("ruleset") != ruleset
        ):
            return cache
        modules = payload.get("modules")
        if isinstance(modules, dict):
            cache._modules = {
                relpath: entry
                for relpath, entry in modules.items()
                if isinstance(entry, dict)
            }
        project = payload.get("project")
        if isinstance(project, dict):
            cache._project = project
        return cache

    # -- per-file findings ----------------------------------------------
    def module_findings(
        self, relpath: str, digest: str
    ) -> list[Finding] | None:
        """Cached findings for *relpath* at *digest*; ``None`` on miss."""
        entry = self._modules.get(relpath)
        if entry is None or entry.get("digest") != digest:
            return None
        try:
            return [
                _finding_from_dict(item)
                for item in entry["findings"]
            ]
        except (KeyError, TypeError):
            return None

    def store_module(
        self, relpath: str, digest: str, findings: list[Finding]
    ) -> None:
        """Record *findings* for *relpath* at content *digest*."""
        self._modules[relpath] = {
            "digest": digest,
            "findings": [f.to_dict() for f in findings],
        }
        self._dirty = True

    # -- project findings -----------------------------------------------
    def project_findings(self, digest: str) -> list[Finding] | None:
        """Cached whole-program findings; ``None`` on digest miss."""
        if (
            self._project is None
            or self._project.get("digest") != digest
        ):
            return None
        try:
            return [
                _finding_from_dict(item)
                for item in self._project["findings"]
            ]
        except (KeyError, TypeError):
            return None

    def store_project(
        self, digest: str, findings: list[Finding]
    ) -> None:
        """Record whole-program *findings* for project *digest*."""
        self._project = {
            "digest": digest,
            "findings": [f.to_dict() for f in findings],
        }
        self._dirty = True

    # -- lifecycle ------------------------------------------------------
    def prune(self, relpaths: list[str]) -> None:
        """Drop cached entries for files no longer in the tree."""
        keep = set(relpaths)
        stale = [r for r in self._modules if r not in keep]
        for relpath in stale:
            del self._modules[relpath]
            self._dirty = True

    def save(self) -> None:
        """Write the cache back if anything changed (atomic replace)."""
        if not self._dirty:
            return
        payload = {
            "schema": SCHEMA,
            "ruleset": self.ruleset,
            "modules": dict(sorted(self._modules.items())),
            "project": self._project,
        }
        text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        tmp = self.path.with_name(self.path.name + ".tmp")
        try:
            tmp.write_text(text, encoding="utf-8")
            os.replace(tmp, self.path)
        except OSError:
            # A read-only checkout degrades to cold lints, not errors.
            tmp.unlink(missing_ok=True)
            return
        self._dirty = False
