"""R3 — PII literal scan: no real-looking identifiers in the source.

The paper's anonymization safeguard (§5.2) extends to the research
artefacts themselves: a reproduction of work on leaked data must not
embed anything that even *looks* like a real identifier, because
readers cannot distinguish a realistic example from an accidental
disclosure. R3 scans every source line (code, strings and comments
alike) of ``src/`` for:

* **email-shaped strings** whose domain is not reserved for
  documentation (RFC 2606: ``example.com/net/org`` and the
  ``.example`` / ``.invalid`` / ``.test`` / ``.localhost`` TLDs);
* **IPv4 literals** outside the documentation (RFC 5737), private
  (RFC 1918), loopback, link-local and otherwise non-global ranges;
* **IPv6 literals** that are globally routable — the documentation
  range ``2001:db8::/32`` (RFC 3849), loopback ``::1``, link-local
  ``fe80::/10`` and ULA ``fc00::/7`` space stay allowed;
* **realistic phone numbers** — NANP-shaped numbers whose exchange is
  not the fictional ``555``.

The IPv6 scan deliberately skips bare slice-shaped candidates
(``1::2`` — Python's ``x[1::2]`` is a valid global IPv6 address once
the brackets are stripped): a candidate with short all-decimal groups
around a single ``::`` is treated as code, not an address. Real
addresses written that way are vanishingly rare; everything with a
hex letter or longer groups is judged properly.
"""

from __future__ import annotations

import ipaddress
import re
from collections.abc import Iterable

from .engine import Finding, ModuleInfo, Rule

__all__ = ["PIILiteralRule"]

_EMAIL_RE = re.compile(
    r"[A-Za-z0-9._%+-]+@[A-Za-z0-9.-]+\.[A-Za-z]{2,}"
)

#: RFC 2606 reserved names — safe to embed anywhere.
_SAFE_MAIL_SUFFIXES = (
    "example.com",
    "example.net",
    "example.org",
    ".example",
    ".invalid",
    ".test",
    ".localhost",
)

_IPV4_RE = re.compile(
    r"(?<![\w.])(\d{1,3}(?:\.\d{1,3}){3})(?![\w.])"
)

#: Hex-and-colon runs that could be IPv6 literals.
_IPV6_RE = re.compile(
    r"(?<![\w:.])([0-9A-Fa-f]{0,4}(?::[0-9A-Fa-f]{0,4}){2,7})(?![\w:])"
)

#: Python slice shapes (``1::2``, ``::2``) that also parse as IPv6.
_SLICE_SHAPE_RE = re.compile(r"\d{0,3}::\d{0,3}")

#: NANP-shaped: optional +1, 3-digit area code, exchange, 4-digit line,
#: with separators (bare digit runs are left to the IPv4/other checks).
_PHONE_RE = re.compile(
    r"(?<!\d)(?:\+?1[-. ])?\(?([2-9]\d{2})\)?[-. ]([2-9]\d{2})[-. ]"
    r"(\d{4})(?!\d)"
)


def _ip_is_safe(text: str) -> bool:
    """True when the dotted quad is invalid or a non-global address."""
    try:
        address = ipaddress.IPv4Address(text)
    except ipaddress.AddressValueError:
        return True
    return not address.is_global


def _ipv6_is_safe(text: str) -> bool:
    """True when the candidate is code-shaped, invalid or non-global.

    ``2001:db8::/32``, ``::1``, ``fe80::/10`` and ``fc00::/7`` are
    all non-global per :mod:`ipaddress` and therefore allowed.
    """
    if _SLICE_SHAPE_RE.fullmatch(text):
        return True
    try:
        address = ipaddress.IPv6Address(text)
    except ipaddress.AddressValueError:
        return True
    return not address.is_global


class PIILiteralRule(Rule):
    """Flag embedded identifiers that could pass for real PII."""

    id = "R3"
    name = "pii-literals"
    description = (
        "no email-shaped strings, globally-routable IPv4/IPv6 "
        "literals, or realistic phone numbers anywhere in src/"
    )
    #: v2: IPv6 literal scanning added.
    version = 2

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        """Scan every raw source line (code, strings and comments)."""
        for number, text in enumerate(module.lines, start=1):
            for match in _EMAIL_RE.finditer(text):
                email = match.group(0)
                domain = email.rsplit("@", 1)[1].lower().rstrip(".")
                if not domain.endswith(_SAFE_MAIL_SUFFIXES):
                    yield self._finding(
                        module,
                        number,
                        f"email-shaped literal {email!r} outside the "
                        "RFC 2606 documentation domains",
                    )
            for match in _IPV4_RE.finditer(text):
                if not _ip_is_safe(match.group(1)):
                    yield self._finding(
                        module,
                        number,
                        f"globally-routable IPv4 literal "
                        f"{match.group(1)!r}; use RFC 5737 "
                        "documentation or RFC 1918 private ranges",
                    )
            for match in _IPV6_RE.finditer(text):
                if not _ipv6_is_safe(match.group(1)):
                    yield self._finding(
                        module,
                        number,
                        f"globally-routable IPv6 literal "
                        f"{match.group(1)!r}; use the RFC 3849 "
                        "documentation range 2001:db8::/32",
                    )
            for match in _PHONE_RE.finditer(text):
                if match.group(2) != "555":
                    yield self._finding(
                        module,
                        number,
                        f"realistic phone number {match.group(0)!r}; "
                        "use a fictional 555 exchange",
                    )

    def _finding(
        self, module: ModuleInfo, line: int, message: str
    ) -> Finding:
        return Finding(
            rule_id=self.id,
            path=module.path,
            line=line,
            message=message,
        )
