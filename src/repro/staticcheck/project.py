"""The project graph: whole-package symbols, imports and calls.

The first seven rules judge one file at a time (plus the semi-static
consistency rule, which imports data). The newest correctness
contracts are *whole-program* properties — an operation declared
``pure=True`` must reach no effect through any call chain, a function
submitted to a process pool must be picklable by construction — and
checking them needs a once-per-run view of the entire package.

:class:`Project` is that view. Built once per lint run from the
already-parsed :class:`~repro.staticcheck.engine.ModuleInfo` set, it
exposes:

* a **symbol table** — every module-level function and class (with
  its methods), addressable by dotted name
  (``repro.ops.catalog._run_stats``,
  ``repro.analysis.similarity.SimilarityAnalysis.clusters``);
* **re-export resolution** — ``repro.tables.render_table1`` chases
  the ``tables/__init__.py`` alias to the defining symbol in
  ``tables/renderers.py``, so rules reason about definitions, not
  spellings;
* an **import graph** — which package modules each module imports;
* a **call graph** — per function, the dotted targets of every call
  in its body, with best-effort local inference (``x = Cls(...);
  x.method()`` resolves to ``Cls.method``, ``self.helper()`` resolves
  through the class and its bases, ``Path(p).read_text()`` resolves
  to ``pathlib.Path.read_text``);
* a **content digest** over every module source — the invalidation
  key for cached whole-program findings, exactly like
  ``RunContext``'s corpus digest invalidates cached pure results.

Resolution is deliberately an *under*-approximation: a call through a
value of unknown type (``ctx.corpus()``, a parameter, a dict of
callables) yields no edge. Rules built on the graph therefore prove
properties of everything they can see and stay silent about what they
cannot — the same bargain every practical static analysis for Python
strikes — and the docs for each rule state it.
"""

from __future__ import annotations

import ast
import dataclasses
import hashlib
from collections.abc import Iterator, Mapping, Sequence

from .engine import ModuleInfo

__all__ = [
    "ClassSymbol",
    "FunctionSymbol",
    "Project",
    "module_dotted",
]


def module_dotted(relpath: str) -> str:
    """The importable dotted name of a package-relative path.

    ``ops/catalog.py`` → ``repro.ops.catalog``; ``ops/__init__.py`` →
    ``repro.ops``; the root ``__init__.py`` → ``repro``.
    """
    parts = relpath[: -len(".py")].split("/")
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(["repro", *parts]) if parts else "repro"


@dataclasses.dataclass(frozen=True)
class FunctionSymbol:
    """One module-level function or class method."""

    qualname: str
    module: ModuleInfo
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_qualname: str | None = None

    @property
    def is_method(self) -> bool:
        return self.class_qualname is not None


@dataclasses.dataclass(frozen=True)
class ClassSymbol:
    """One module-level class with its directly defined methods."""

    qualname: str
    module: ModuleInfo
    node: ast.ClassDef
    bases: tuple[str, ...]
    methods: Mapping[str, FunctionSymbol]


class Project:
    """Whole-package symbol table, import graph and call graph.

    Handed to every rule's ``check_project`` hook. Iterating a
    project yields its modules, so rules that only need the parsed
    module set (the consistency rule) keep working on the obvious
    surface.
    """

    def __init__(
        self,
        modules: Sequence[ModuleInfo],
        file_digests: Mapping[str, str] | None = None,
    ) -> None:
        self.modules: tuple[ModuleInfo, ...] = tuple(modules)
        self._by_relpath = {m.relpath: m for m in self.modules}
        self._by_dotted = {
            module_dotted(m.relpath): m for m in self.modules
        }
        if file_digests is None:
            file_digests = {
                m.relpath: hashlib.blake2b(
                    m.source.encode("utf-8"), digest_size=16
                ).hexdigest()
                for m in self.modules
            }
        self._file_digests = dict(file_digests)
        self.functions: dict[str, FunctionSymbol] = {}
        self.classes: dict[str, ClassSymbol] = {}
        for module in self.modules:
            self._index_module(module)
        self._callees: dict[str, tuple[tuple[str, int], ...]] = {}
        self._digest: str | None = None

    # -- construction ---------------------------------------------------
    def _index_module(self, module: ModuleInfo) -> None:
        dotted = module_dotted(module.relpath)
        for node in module.tree.body:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                qualname = f"{dotted}.{node.name}"
                self.functions[qualname] = FunctionSymbol(
                    qualname, module, node
                )
            elif isinstance(node, ast.ClassDef):
                self._index_class(module, dotted, node)

    def _index_class(
        self, module: ModuleInfo, dotted: str, node: ast.ClassDef
    ) -> None:
        qualname = f"{dotted}.{node.name}"
        methods: dict[str, FunctionSymbol] = {}
        for item in node.body:
            if isinstance(
                item, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                symbol = FunctionSymbol(
                    f"{qualname}.{item.name}",
                    module,
                    item,
                    class_qualname=qualname,
                )
                methods[item.name] = symbol
                self.functions[symbol.qualname] = symbol
        bases = tuple(
            base
            for base in (
                self._expression_target(module, expr, {})
                for expr in node.bases
            )
            if base is not None
        )
        self.classes[qualname] = ClassSymbol(
            qualname, module, node, bases, methods
        )

    # -- module access --------------------------------------------------
    def __iter__(self) -> Iterator[ModuleInfo]:
        return iter(self.modules)

    def __len__(self) -> int:
        return len(self.modules)

    def module(self, relpath: str) -> ModuleInfo | None:
        """The module at package-relative *relpath*, if linted."""
        return self._by_relpath.get(relpath)

    def file_digest(self, relpath: str) -> str | None:
        """The content digest of one linted file."""
        return self._file_digests.get(relpath)

    @property
    def digest(self) -> str:
        """Content digest over every (relpath, file digest) pair.

        Any byte of any linted source changes this value — the
        invalidation key for cached whole-program findings.
        """
        if self._digest is None:
            hasher = hashlib.blake2b(digest_size=16)
            for relpath in sorted(self._file_digests):
                hasher.update(relpath.encode("utf-8"))
                hasher.update(b"\x00")
                hasher.update(
                    self._file_digests[relpath].encode("utf-8")
                )
                hasher.update(b"\x00")
            self._digest = hasher.hexdigest()
        return self._digest

    # -- import graph ---------------------------------------------------
    def imports(self, relpath: str) -> frozenset[str]:
        """Package-internal modules *relpath* imports (as relpaths)."""
        module = self._by_relpath.get(relpath)
        if module is None:
            return frozenset()
        internal: set[str] = set()
        for origin in module.import_aliases().values():
            parts = origin.split(".")
            if parts[0] != "repro":
                continue
            # Longest linted-module prefix of the dotted origin.
            for cut in range(len(parts), 0, -1):
                candidate = self._by_dotted.get(
                    ".".join(parts[:cut])
                )
                if candidate is not None:
                    internal.add(candidate.relpath)
                    break
        internal.discard(relpath)
        return frozenset(internal)

    def import_graph(self) -> dict[str, frozenset[str]]:
        """The full module → imported-modules adjacency map."""
        return {
            m.relpath: self.imports(m.relpath) for m in self.modules
        }

    # -- name resolution ------------------------------------------------
    def resolve(
        self, dotted: str
    ) -> FunctionSymbol | ClassSymbol | None:
        """The defined symbol *dotted* names, chasing re-exports.

        ``repro.tables.render_table1`` follows the package
        ``__init__`` alias to the defining function; a dotted method
        path walks the class (and its resolvable bases). Unknown
        names return ``None``.
        """
        return self._resolve(dotted, set())

    def _resolve(self, dotted, seen):
        if dotted in seen:
            return None
        seen.add(dotted)
        hit = self.functions.get(dotted) or self.classes.get(dotted)
        if hit is not None:
            return hit
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            rest = parts[cut:]
            klass = self.classes.get(prefix)
            if klass is not None and len(rest) == 1:
                return self._class_method(klass, rest[0], set())
            module = self._by_dotted.get(prefix)
            if module is not None:
                origin = module.import_aliases().get(rest[0])
                if origin is None:
                    return None
                return self._resolve(
                    ".".join([origin, *rest[1:]]), seen
                )
        return None

    def _class_method(self, klass, name, seen):
        """Look *name* up on *klass*, then on its resolvable bases."""
        if klass.qualname in seen:
            return None
        seen.add(klass.qualname)
        method = klass.methods.get(name)
        if method is not None:
            return method
        for base in klass.bases:
            symbol = self.resolve(base)
            if isinstance(symbol, ClassSymbol):
                found = self._class_method(symbol, name, seen)
                if found is not None:
                    return found
        return None

    def canonical(self, dotted: str) -> str:
        """*dotted* with every package re-export alias chased.

        The fixed point of alias resolution: ``repro.ops.Operation``
        becomes ``repro.ops.spec.Operation`` whether or not the
        final module is part of the linted tree (rules match on the
        canonical spelling, so fixture trees need not ship the
        defining module).
        """
        seen: set[str] = set()
        while dotted not in seen:
            seen.add(dotted)
            if dotted in self.functions or dotted in self.classes:
                return dotted
            parts = dotted.split(".")
            advanced = False
            for cut in range(len(parts) - 1, 0, -1):
                module = self._by_dotted.get(".".join(parts[:cut]))
                if module is None:
                    continue
                origin = module.import_aliases().get(parts[cut])
                if origin is not None:
                    dotted = ".".join(
                        [origin, *parts[cut + 1:]]
                    )
                    advanced = True
                break
            if not advanced:
                break
        return dotted

    # -- call graph -----------------------------------------------------
    def callees(
        self, symbol: FunctionSymbol
    ) -> tuple[tuple[str, int], ...]:
        """``(dotted target, line)`` for every call in *symbol*.

        Targets are raw dotted spellings — package-internal names
        resolve further through :meth:`resolve`; external ones
        (``time.time``, ``pathlib.Path.read_text``) and bare builtin
        names (``open``, ``print``) are matched as-is by rules.
        Bodies of nested functions and lambdas are included: they
        may run whenever the enclosing function does.
        """
        cached = self._callees.get(symbol.qualname)
        if cached is None:
            cached = tuple(self._extract_calls(symbol))
            self._callees[symbol.qualname] = cached
        return cached

    def _extract_calls(self, symbol):
        module = symbol.module
        locals_types = self._local_instance_types(module, symbol)
        for node in ast.walk(symbol.node):
            if not isinstance(node, ast.Call):
                continue
            dotted = self.call_target(
                module, node, symbol, locals_types
            )
            if dotted is not None:
                yield dotted, node.lineno

    def _local_instance_types(self, module, symbol) -> dict[str, str]:
        """``var -> dotted`` for ``var = Callee(...)`` assignments."""
        types: dict[str, str] = {}
        for node in ast.walk(symbol.node):
            if not isinstance(node, ast.Assign):
                continue
            if len(node.targets) != 1 or not isinstance(
                node.targets[0], ast.Name
            ):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            dotted = self._callable_name(
                module, node.value.func, symbol, {}
            )
            if dotted is not None:
                types[node.targets[0].id] = dotted
        return types

    def call_target(
        self,
        module: ModuleInfo,
        node: ast.Call,
        symbol: FunctionSymbol | None = None,
        locals_types: Mapping[str, str] | None = None,
    ) -> str | None:
        """The dotted target of one call expression, best effort."""
        if locals_types is None and symbol is not None:
            locals_types = self._local_instance_types(module, symbol)
        return self._callable_name(
            module, node.func, symbol, locals_types or {}
        )

    def _callable_name(self, module, func, symbol, locals_types):
        if isinstance(func, ast.Name):
            origin = module.import_aliases().get(func.id)
            if origin is not None:
                return origin
            local = f"{module_dotted(module.relpath)}.{func.id}"
            if local in self.functions or local in self.classes:
                return local
            return func.id  # builtin or unresolvable local
        if isinstance(func, ast.Attribute):
            value = func.value
            if isinstance(value, ast.Name):
                if (
                    value.id == "self"
                    and symbol is not None
                    and symbol.class_qualname is not None
                ):
                    return f"{symbol.class_qualname}.{func.attr}"
                inferred = locals_types.get(value.id)
                if inferred is not None:
                    return f"{inferred}.{func.attr}"
                return module.resolve_dotted(func)
            if isinstance(value, ast.Call):
                inner = self._callable_name(
                    module, value.func, symbol, locals_types
                )
                if inner is not None:
                    return f"{inner}.{func.attr}"
                return None
            return module.resolve_dotted(func)
        return None

    def _expression_target(self, module, expr, locals_types):
        """Resolve a non-call expression (class base) to dotted form."""
        if isinstance(expr, ast.Name):
            origin = module.import_aliases().get(expr.id)
            if origin is not None:
                return origin
            local = f"{module_dotted(module.relpath)}.{expr.id}"
            if local in self.classes or local in self.functions:
                return local
            return expr.id
        if isinstance(expr, ast.Attribute):
            return module.resolve_dotted(expr)
        return None
