"""R10 — policy-literals: rule vocabulary lives in the policy packs.

The declarative policy refactor moved every legal-issue id and Menlo
principle name into :mod:`repro.policy.defaults`, where packs can be
validated, digested and hot-swapped. That only stays true if code
elsewhere stops re-spelling the vocabulary: a stray
``"computer-misuse"`` literal in an analysis module is a rule id the
pack compiler cannot see, silently diverging the moment a pack
renames or extends the issue set. R10 flags every string constant
equal to a legal-issue id or Menlo principle value outside the
modules that legitimately own the vocabulary:

* ``policy/`` — the packs themselves and their compiler;
* ``legal/statutes.py`` — the statute catalogue keyed by issue id;
* ``ethics/menlo.py`` — the principle enum whose values *are* the
  vocabulary;
* ``codebook/`` and ``corpus/`` — the paper's coded Table 1 data,
  which records the ids as observations, not as rules;
* ``tables/layout.py`` — the Table 1 column layout over those codes.

Docstrings and comments are exempt (prose may name an issue);
everything else should import :func:`repro.policy.defaults.legal_issue_ids`
or the :class:`~repro.ethics.menlo.MenloPrinciple` enum instead of
re-spelling the strings. The rule ships with an empty baseline.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from .engine import Finding, ModuleInfo, Rule

__all__ = ["PolicyLiteralRule"]

#: Module path prefixes (relative to the package root) that own the
#: policy vocabulary and may spell it freely.
_ALLOWED_PREFIXES = (
    "policy/",
    "codebook/",
    "corpus/",
)

#: Individual modules that legitimately key data by the vocabulary.
_ALLOWED_FILES = frozenset(
    {
        "legal/statutes.py",
        "ethics/menlo.py",
        "tables/layout.py",
    }
)


def _watched_literals() -> dict[str, str]:
    """Literal → kind label for every policy-vocabulary string."""
    from ..policy.defaults import (
        legal_issue_ids,
        menlo_principle_ids,
    )

    watched = {issue: "legal-issue" for issue in legal_issue_ids()}
    for principle in menlo_principle_ids():
        watched[principle] = "Menlo-principle"
    return watched


def _docstring_nodes(tree: ast.Module) -> set[int]:
    """``id()`` of every docstring Constant in *tree*."""
    nodes: set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(
            node,
            (
                ast.Module,
                ast.ClassDef,
                ast.FunctionDef,
                ast.AsyncFunctionDef,
            ),
        ):
            continue
        body = node.body
        if (
            body
            and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)
        ):
            nodes.add(id(body[0].value))
    return nodes


class PolicyLiteralRule(Rule):
    """Flag policy-vocabulary string literals outside the pack data."""

    id = "R10"
    name = "policy-literals"
    description = (
        "legal-issue ids and Menlo principle names are pack "
        "vocabulary; outside repro.policy (and the coded corpus "
        "data) they must be referenced via the pack helpers, not "
        "re-spelled as string literals"
    )

    def applies_to(self, module: ModuleInfo) -> bool:
        """Skip the modules that own the vocabulary."""
        relpath = module.relpath
        if relpath in _ALLOWED_FILES:
            return False
        return not relpath.startswith(_ALLOWED_PREFIXES)

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        """Judge every non-docstring string constant in the module."""
        watched = _watched_literals()
        docstrings = _docstring_nodes(module.tree)
        for node in ast.walk(module.tree):
            if (
                not isinstance(node, ast.Constant)
                or not isinstance(node.value, str)
                or id(node) in docstrings
            ):
                continue
            kind = watched.get(node.value)
            if kind is None:
                continue
            yield Finding(
                rule_id=self.id,
                path=module.path,
                line=node.lineno,
                message=(
                    f"{kind} literal {node.value!r} outside the "
                    f"policy pack data; import the vocabulary from "
                    f"repro.policy.defaults (or the MenloPrinciple "
                    f"enum) so packs stay the single source of truth"
                ),
            )
