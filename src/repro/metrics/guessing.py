"""Password guess generators in the styles the surveyed papers used.

Three guessers over a training corpus, evaluated by a shared cracking
harness:

* :class:`DictionaryGuesser` — popularity-ordered training passwords
  (the baseline every paper compares against),
* :class:`MarkovGuesser` — an order-2 character model enumerated in
  descending probability, the OMEN idea of Dürmuth et al. [31],
* :class:`PCFGGuesser` — structure templates (letter/digit/symbol
  segment patterns) filled from learned segment frequencies, the
  probabilistic context-free grammar of Weir et al. [121].

:func:`cracking_curve` measures the fraction of a target dump cracked
as a function of guess count — the figure-of-merit Ur et al. [114]
used to compare real-world and academic crackers. The qualitative
shape to reproduce (experiment E12): trained guessers dominate brute
force, and the Markov/PCFG guessers keep cracking beyond the
dictionary's exhaustion.
"""

from __future__ import annotations

import heapq
import itertools
import math
import string
from collections import Counter, defaultdict
from collections.abc import Iterable, Iterator, Sequence

from ..errors import MetricError

__all__ = [
    "DictionaryGuesser",
    "MarkovGuesser",
    "PCFGGuesser",
    "BruteForceGuesser",
    "cracking_curve",
]

_START = "\x02"
_END = "\x03"


class DictionaryGuesser:
    """Guess training passwords in descending popularity order."""

    def __init__(self, training: Iterable[str]) -> None:
        counts = Counter(training)
        if not counts:
            raise MetricError("empty training corpus")
        self._ordered = [
            password
            for password, _ in sorted(
                counts.items(), key=lambda kv: (-kv[1], kv[0])
            )
        ]

    def guesses(self) -> Iterator[str]:
        return iter(self._ordered)


class BruteForceGuesser:
    """Enumerate lowercase strings in length-then-lex order.

    The untrained baseline: optimal against nothing, included so the
    trained guessers' advantage is measurable.
    """

    def __init__(self, alphabet: str = string.ascii_lowercase) -> None:
        if not alphabet:
            raise MetricError("alphabet must be non-empty")
        self._alphabet = alphabet

    def guesses(self) -> Iterator[str]:
        """Yield guesses in length-then-lexicographic order."""
        for length in itertools.count(1):
            for combo in itertools.product(
                self._alphabet, repeat=length
            ):
                yield "".join(combo)


class MarkovGuesser:
    """Order-2 character Markov model with best-first enumeration.

    Trains add-one-smoothed bigram transitions over the corpus and
    enumerates complete strings in descending model probability using
    a priority queue (the "ordered enumeration" that gives OMEN its
    name), restricted to lengths seen in training.
    """

    def __init__(
        self,
        training: Iterable[str],
        max_length: int = 12,
        beam_width: int = 50_000,
    ) -> None:
        passwords = [p for p in training if p]
        if not passwords:
            raise MetricError("empty training corpus")
        self._max_length = max_length
        self._beam_width = beam_width
        transitions: dict[str, Counter] = defaultdict(Counter)
        for password in passwords:
            chain = _START + password[: max_length] + _END
            for a, b in zip(chain, chain[1:]):
                transitions[a][b] += 1
        self._log_probs: dict[str, list[tuple[float, str]]] = {}
        for context, counts in transitions.items():
            total = sum(counts.values())
            options = [
                (-math.log(count / total), char)
                for char, count in counts.items()
            ]
            options.sort()
            self._log_probs[context] = options

    def guesses(self) -> Iterator[str]:
        # Best-first search over partial strings; cost = -log prob.
        """Yield guesses in descending model probability."""
        counter = itertools.count()  # tie-breaker for heap stability
        heap: list[tuple[float, int, str]] = [(0.0, next(counter), "")]
        emitted: set[str] = set()
        while heap:
            cost, _, prefix = heapq.heappop(heap)
            context = prefix[-1] if prefix else _START
            for step_cost, char in self._log_probs.get(context, ()):
                if char == _END:
                    if prefix and prefix not in emitted:
                        emitted.add(prefix)
                        yield prefix
                    continue
                if len(prefix) >= self._max_length:
                    continue
                if len(heap) < self._beam_width:
                    heapq.heappush(
                        heap,
                        (cost + step_cost, next(counter), prefix + char),
                    )


class PCFGGuesser:
    """Weir-style structure-based guesser.

    Learns structure templates (runs of letters L, digits D, symbols
    S, e.g. ``L8 D2``) with their probabilities, and per-segment
    terminal frequencies; guesses are generated best-first over
    (structure probability × terminal probabilities).
    """

    def __init__(
        self, training: Iterable[str], beam_width: int = 50_000
    ) -> None:
        passwords = [p for p in training if p]
        if not passwords:
            raise MetricError("empty training corpus")
        self._beam_width = beam_width
        structure_counts: Counter = Counter()
        segment_counts: dict[tuple[str, int], Counter] = defaultdict(
            Counter
        )
        for password in passwords:
            structure = tuple(
                (kind, len(run))
                for kind, run in _segment(password)
            )
            structure_counts[structure] += 1
            for (kind, length), (__, run) in zip(
                structure, _segment(password)
            ):
                segment_counts[(kind, length)][run] += 1
        total = sum(structure_counts.values())
        self._structures = [
            (-math.log(count / total), structure)
            for structure, count in structure_counts.items()
        ]
        self._structures.sort(key=lambda item: item[0])
        self._terminals: dict[
            tuple[str, int], list[tuple[float, str]]
        ] = {}
        for key, counts in segment_counts.items():
            segment_total = sum(counts.values())
            options = [
                (-math.log(count / segment_total), value)
                for value, count in counts.items()
            ]
            options.sort()
            self._terminals[key] = options

    def guesses(self) -> Iterator[str]:
        """Yield guesses in descending grammar probability."""
        counter = itertools.count()
        heap: list[tuple[float, int, tuple, tuple[str, ...]]] = []
        for cost, structure in self._structures:
            heapq.heappush(heap, (cost, next(counter), structure, ()))
        emitted: set[str] = set()
        while heap:
            cost, _, structure, filled = heapq.heappop(heap)
            position = len(filled)
            if position == len(structure):
                guess = "".join(filled)
                if guess not in emitted:
                    emitted.add(guess)
                    yield guess
                continue
            key = structure[position]
            for step_cost, value in self._terminals.get(key, ()):
                if len(heap) < self._beam_width:
                    heapq.heappush(
                        heap,
                        (
                            cost + step_cost,
                            next(counter),
                            structure,
                            filled + (value,),
                        ),
                    )


def _segment(password: str) -> list[tuple[str, str]]:
    """Split into maximal runs tagged L (letters), D (digits),
    S (symbols)."""
    segments: list[tuple[str, str]] = []
    for char in password:
        if char.isalpha():
            kind = "L"
        elif char.isdigit():
            kind = "D"
        else:
            kind = "S"
        if segments and segments[-1][0] == kind:
            segments[-1] = (kind, segments[-1][1] + char)
        else:
            segments.append((kind, char))
    return segments


def cracking_curve(
    guesser, targets: Sequence[str], guess_budget: int
) -> list[tuple[int, float]]:
    """Fraction of *targets* cracked after 1..budget guesses.

    Returns checkpoints ``[(guesses_made, fraction_cracked), ...]`` at
    powers of two plus the final budget. Duplicate targets count per
    account, as in the surveyed evaluations.
    """
    if guess_budget < 1:
        raise MetricError("guess_budget must be at least 1")
    if not targets:
        raise MetricError("no target passwords")
    remaining = Counter(targets)
    total = len(targets)
    cracked = 0
    checkpoints: list[tuple[int, float]] = []
    next_checkpoint = 1
    made = 0
    for guess in guesser.guesses():
        made += 1
        hit = remaining.pop(guess, 0)
        cracked += hit
        if made == next_checkpoint:
            checkpoints.append((made, cracked / total))
            next_checkpoint *= 2
        if made >= guess_budget or not remaining:
            break
    if not checkpoints or checkpoints[-1][0] != made:
        checkpoints.append((made, cracked / total))
    return checkpoints
