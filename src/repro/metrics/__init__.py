"""Algorithms the surveyed papers ran on illicit-origin data.

Password metrics and guessers (§4.2), forum social-network analysis
(§4.3.3), offshore-leak analyses (§4.4), and code stylometry /
software-metrics evolution (§4.1.3).
"""

from .entropy import (
    alpha_guesswork_bits,
    distribution,
    guesses_for_success,
    min_entropy,
    partial_guesswork,
    shannon_entropy,
    success_rate,
)
from .eventstudy import (
    EventStudyResult,
    LegislationImpact,
    leak_event_study,
    legislation_impact,
)
from .forum_sna import ForumNetwork, NetworkSummary
from .funnel import FunnelStage, OffenderFunnel, analyze_funnel
from .guessing import (
    BruteForceGuesser,
    DictionaryGuesser,
    MarkovGuesser,
    PCFGGuesser,
    cracking_curve,
)
from .reuse import ReuseProfile, analyze_reuse, classify_pair
from .strength import StrengthEstimate, StrengthMeter
from .stylometry import (
    AuthorshipAttributor,
    SoftwareMetrics,
    StyleFeatures,
    extract_features,
    software_metrics,
)

__all__ = [
    "AuthorshipAttributor",
    "BruteForceGuesser",
    "DictionaryGuesser",
    "EventStudyResult",
    "ForumNetwork",
    "FunnelStage",
    "LegislationImpact",
    "MarkovGuesser",
    "NetworkSummary",
    "OffenderFunnel",
    "PCFGGuesser",
    "ReuseProfile",
    "SoftwareMetrics",
    "StrengthEstimate",
    "StrengthMeter",
    "StyleFeatures",
    "alpha_guesswork_bits",
    "analyze_funnel",
    "analyze_reuse",
    "classify_pair",
    "cracking_curve",
    "distribution",
    "extract_features",
    "guesses_for_success",
    "leak_event_study",
    "legislation_impact",
    "min_entropy",
    "partial_guesswork",
    "shannon_entropy",
    "software_metrics",
    "success_rate",
]
