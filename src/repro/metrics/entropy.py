"""Password distribution metrics, including Bonneau's α-guesswork [13].

Implements, over an observed password frequency distribution:

* Shannon entropy ``H1`` and min-entropy ``H∞``,
* ``λ_β`` — the probability of success within β guesses,
* ``μ_α`` — the number of guesses needed to succeed with
  probability α,
* ``G_α`` — partial guesswork: the expected guesses per account when
  attacking until a fraction α of accounts fall,
* ``G̃_α`` — α-guesswork converted to bits (Bonneau's effective key
  length), the metric his paper uses to compare distributions.

Bonneau's key observation, testable here: for human-chosen password
distributions the effective key length at small α is far below the
Shannon entropy — Shannon overstates resistance to partial attacks.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable, Sequence

from ..errors import MetricError

__all__ = [
    "distribution",
    "shannon_entropy",
    "min_entropy",
    "success_rate",
    "guesses_for_success",
    "partial_guesswork",
    "alpha_guesswork_bits",
]


def distribution(passwords: Iterable[str]) -> list[float]:
    """Sorted (descending) probability distribution of passwords."""
    counts = Counter(passwords)
    total = sum(counts.values())
    if total == 0:
        raise MetricError("empty password corpus")
    return sorted(
        (count / total for count in counts.values()), reverse=True
    )


def _check_probs(probabilities: Sequence[float]) -> None:
    if not probabilities:
        raise MetricError("empty distribution")
    if any(p <= 0 for p in probabilities):
        raise MetricError("probabilities must be positive")
    if abs(sum(probabilities) - 1.0) > 1e-6:
        raise MetricError("probabilities must sum to 1")


def shannon_entropy(probabilities: Sequence[float]) -> float:
    """H1 in bits."""
    _check_probs(probabilities)
    return -sum(p * math.log2(p) for p in probabilities)


def min_entropy(probabilities: Sequence[float]) -> float:
    """H∞ = -log2(max p): resistance to a single optimal guess."""
    _check_probs(probabilities)
    return -math.log2(max(probabilities))


def success_rate(
    probabilities: Sequence[float], beta: int
) -> float:
    """λ_β: probability the password falls within the β most common."""
    _check_probs(probabilities)
    if beta < 1:
        raise MetricError("beta must be at least 1")
    ordered = sorted(probabilities, reverse=True)
    return min(1.0, sum(ordered[:beta]))


def guesses_for_success(
    probabilities: Sequence[float], alpha: float
) -> int:
    """μ_α: smallest number of guesses achieving success rate ≥ α."""
    _check_probs(probabilities)
    if not 0.0 < alpha <= 1.0:
        raise MetricError("alpha must be in (0, 1]")
    ordered = sorted(probabilities, reverse=True)
    cumulative = 0.0
    for index, p in enumerate(ordered, start=1):
        cumulative += p
        if cumulative >= alpha - 1e-12:
            return index
    return len(ordered)


def partial_guesswork(
    probabilities: Sequence[float], alpha: float
) -> float:
    """G_α: expected guesses per account for a partial attack.

    The attacker guesses in popularity order, stopping after μ_α
    guesses; accounts not cracked by then cost μ_α guesses each:

        G_α = (1 - λ_{μ_α}) · μ_α + Σ_{i=1}^{μ_α} p_i · i
    """
    _check_probs(probabilities)
    mu = guesses_for_success(probabilities, alpha)
    ordered = sorted(probabilities, reverse=True)
    lam = sum(ordered[:mu])
    expected = sum(p * i for i, p in enumerate(ordered[:mu], start=1))
    return (1.0 - lam) * mu + expected


def alpha_guesswork_bits(
    probabilities: Sequence[float], alpha: float
) -> float:
    """G̃_α: α-guesswork as an effective key length in bits.

    Bonneau's normalisation: G̃_α = log2(2·G_α/λ_{μ_α} − 1)
    − log2(2 − λ_{μ_α}), which equals the real key length for a
    uniform distribution at any α.
    """
    _check_probs(probabilities)
    mu = guesses_for_success(probabilities, alpha)
    ordered = sorted(probabilities, reverse=True)
    lam = sum(ordered[:mu])
    g_alpha = partial_guesswork(probabilities, alpha)
    if lam <= 0:
        raise MetricError("degenerate distribution")
    return math.log2(2.0 * g_alpha / lam - 1.0) - math.log2(
        2.0 - lam
    )
