"""Offshore-leak analyses in the style of [79] and [82] (§4.4).

Two analyses over a synthetic
:class:`~repro.datasets.financial.OffshoreLeak`:

* :func:`legislation_impact` — Omartian's design: treat each
  information-exchange law as a natural experiment and test whether
  offshore incorporation activity drops after it (Mann-Whitney on
  pre/post annual counts).
* :func:`leak_event_study` — O'Donovan et al.'s headline number: the
  aggregate market-capitalisation loss of implicated firms given a
  per-firm abnormal return.
"""

from __future__ import annotations

import dataclasses

from scipy import stats

from ..datasets.financial import OffshoreLeak
from ..errors import MetricError

__all__ = [
    "LegislationImpact",
    "EventStudyResult",
    "legislation_impact",
    "leak_event_study",
]


@dataclasses.dataclass(frozen=True)
class LegislationImpact:
    """Pre/post comparison around one legislation year."""

    year: int
    pre_mean: float
    post_mean: float
    p_value: float

    @property
    def reduction(self) -> float:
        """Relative drop in incorporation rate after the law."""
        if self.pre_mean == 0:
            return 0.0
        return 1.0 - self.post_mean / self.pre_mean

    @property
    def significant(self) -> bool:
        return self.p_value < 0.05 and self.post_mean < self.pre_mean


def legislation_impact(
    leak: OffshoreLeak, year: int, window: int = 4
) -> LegislationImpact:
    """Test the effect of a law effective in *year* on incorporations.

    Compares annual incorporation counts in the *window* years before
    against the *window* years from *year* onward with a one-sided
    Mann-Whitney U test.
    """
    if window < 2:
        raise MetricError("window must be at least 2 years")
    series = leak.incorporations_by_year()
    pre = [series.get(y, 0) for y in range(year - window, year)]
    post = [series.get(y, 0) for y in range(year, year + window)]
    if not any(pre) and not any(post):
        raise MetricError(
            f"no incorporation activity around {year}"
        )
    statistic, p_value = stats.mannwhitneyu(
        pre, post, alternative="greater"
    )
    return LegislationImpact(
        year=year,
        pre_mean=sum(pre) / len(pre),
        post_mean=sum(post) / len(post),
        p_value=float(p_value),
    )


@dataclasses.dataclass(frozen=True)
class EventStudyResult:
    """Aggregate impact of the leak's publication on firm values."""

    implicated_firms: int
    total_market_cap_musd: float
    implicated_market_cap_musd: float
    abnormal_return: float
    value_lost_musd: float

    @property
    def loss_share_of_implicated(self) -> float:
        """Value lost as a fraction of the implicated firms' value —
        the basis on which O'Donovan et al. report 0.7% (US$135bn
        across 397 firms)."""
        if self.implicated_market_cap_musd == 0:
            return 0.0
        return self.value_lost_musd / self.implicated_market_cap_musd

    @property
    def loss_share_of_market(self) -> float:
        """Value lost as a fraction of the whole market's value."""
        if self.total_market_cap_musd == 0:
            return 0.0
        return self.value_lost_musd / self.total_market_cap_musd


def leak_event_study(
    leak: OffshoreLeak, abnormal_return: float = -0.007
) -> EventStudyResult:
    """Apply a per-firm abnormal return to implicated firms.

    ``abnormal_return`` defaults to −0.7%, the market-wide magnitude
    reported for the Panama papers.
    """
    if abnormal_return >= 0:
        raise MetricError(
            "the leak event study models a value *loss*; pass a "
            "negative abnormal return"
        )
    implicated = [f for f in leak.firms if f.implicated]
    if not implicated:
        raise MetricError("no implicated firms in the leak")
    implicated_cap = sum(f.market_cap_musd for f in implicated)
    total_cap = sum(f.market_cap_musd for f in leak.firms)
    value_lost = -abnormal_return * implicated_cap
    return EventStudyResult(
        implicated_firms=len(implicated),
        total_market_cap_musd=total_cap,
        implicated_market_cap_musd=implicated_cap,
        abnormal_return=abnormal_return,
        value_lost_musd=value_lost,
    )
