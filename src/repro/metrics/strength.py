"""Password strength estimation via model guess numbers.

Ur et al. [114] evaluate strength by the *guess number* — how many
guesses a cracker makes before reaching a password. Enumerating
guessers to large guess numbers is slow, so meters estimate the guess
number from the model probability instead. :class:`StrengthMeter`
does this with the same order-2 Markov model as
:class:`~repro.metrics.guessing.MarkovGuesser`: strength is the
model's -log2 probability, and passwords are banded like the policy
advice the surveyed work feeds into.
"""

from __future__ import annotations

import dataclasses
import math
from collections import Counter, defaultdict
from collections.abc import Iterable

from ..errors import MetricError

__all__ = ["StrengthEstimate", "StrengthMeter"]

_START = "\x02"
_END = "\x03"

_BANDS = (
    (20.0, "very-weak"),
    (35.0, "weak"),
    (50.0, "fair"),
    (65.0, "strong"),
    (math.inf, "very-strong"),
)


@dataclasses.dataclass(frozen=True)
class StrengthEstimate:
    """Strength of one password under the trained model."""

    password: str
    log2_guess_number: float
    band: str

    @property
    def estimated_guesses(self) -> float:
        return 2.0 ** self.log2_guess_number


class StrengthMeter:
    """Markov-model password strength meter.

    Train on a (synthetic) dump representing the attacker's
    knowledge; :meth:`estimate` then scores candidate passwords. The
    defining property, tested in the suite: passwords common in the
    training corpus score strictly weaker than long random strings.
    """

    def __init__(
        self, training: Iterable[str], *, smoothing: float = 0.1
    ) -> None:
        passwords = [p for p in training if p]
        if not passwords:
            raise MetricError("empty training corpus")
        if smoothing <= 0:
            raise MetricError("smoothing must be positive")
        self._smoothing = smoothing
        transitions: dict[str, Counter] = defaultdict(Counter)
        alphabet: set[str] = {_END}
        for password in passwords:
            chain = _START + password + _END
            alphabet.update(password)
            for a, b in zip(chain, chain[1:]):
                transitions[a][b] += 1
        self._alphabet_size = len(alphabet)
        self._transitions = {
            context: dict(counts)
            for context, counts in transitions.items()
        }
        self._totals = {
            context: sum(counts.values())
            for context, counts in transitions.items()
        }

    def _log2_prob(self, password: str) -> float:
        chain = _START + password + _END
        log_prob = 0.0
        vocabulary = self._alphabet_size + 1
        for a, b in zip(chain, chain[1:]):
            count = self._transitions.get(a, {}).get(b, 0)
            total = self._totals.get(a, 0)
            probability = (count + self._smoothing) / (
                total + self._smoothing * vocabulary
            )
            log_prob += math.log2(probability)
        return log_prob

    def estimate(self, password: str) -> StrengthEstimate:
        """Estimate strength of one password.

        The guess-number estimate is ``-log2 P(password)`` — the
        index the password would have in a probability-ordered
        enumeration, up to the usual constant factors.
        """
        if not password:
            raise MetricError("password must be non-empty")
        bits = -self._log2_prob(password)
        for limit, band in _BANDS:
            if bits < limit:
                return StrengthEstimate(
                    password=password,
                    log2_guess_number=bits,
                    band=band,
                )
        raise AssertionError("unreachable")  # pragma: no cover

    def rank(self, passwords: Iterable[str]) -> list[StrengthEstimate]:
        """Estimates sorted weakest first."""
        estimates = [self.estimate(p) for p in passwords]
        estimates.sort(key=lambda e: e.log2_guess_number)
        return estimates

    def meets_policy(
        self, password: str, *, minimum_bits: float = 35.0
    ) -> bool:
        """A model-based composition policy: the defence mechanism
        the password case studies motivate (replace "8 chars + digit"
        rules with guess-number thresholds)."""
        if minimum_bits <= 0:
            raise MetricError("minimum_bits must be positive")
        return self.estimate(password).log2_guess_number >= minimum_bits
