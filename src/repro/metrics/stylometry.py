"""Code stylometry and software-metrics evolution ([16], [17]).

Two analyses the malware-source case studies ran:

* Caliskan-Islam-style **authorship attribution**: extract layout and
  lexical style features from source text and attribute anonymous
  samples to the nearest known author — the capability that makes
  *releasing* source code a de-anonymisation harm (§4.1.3).
* Calleja-style **software metrics**: size/complexity measures whose
  growth over decades is the headline of "A look into 30 years of
  malware development".

Both operate on plain source strings so they work on any synthetic
corpus; no real malware is included or needed.
"""

from __future__ import annotations

import dataclasses
import math
import re
from collections import Counter
from collections.abc import Mapping, Sequence

from ..errors import MetricError

__all__ = [
    "StyleFeatures",
    "extract_features",
    "AuthorshipAttributor",
    "SoftwareMetrics",
    "software_metrics",
]

_WORD = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_BRANCH = re.compile(
    r"\b(if|for|while|elif|else if|case|catch|except|and|or|&&|\|\|)\b"
)
_FUNCTION = re.compile(r"\b(def|function|void|int|sub)\s+\w+\s*\(")


@dataclasses.dataclass(frozen=True)
class StyleFeatures:
    """Layout/lexical style vector for one source sample."""

    mean_line_length: float
    blank_line_ratio: float
    comment_ratio: float
    indent_tabs_ratio: float
    identifier_entropy: float
    underscore_identifier_ratio: float
    brace_same_line_ratio: float

    def vector(self) -> tuple[float, ...]:
        """The normalised feature vector for distance computations."""
        return (
            self.mean_line_length / 80.0,
            self.blank_line_ratio,
            self.comment_ratio,
            self.indent_tabs_ratio,
            self.identifier_entropy / 8.0,
            self.underscore_identifier_ratio,
            self.brace_same_line_ratio,
        )


def extract_features(source: str) -> StyleFeatures:
    """Extract the style vector from one source text."""
    lines = source.splitlines()
    if not lines:
        raise MetricError("empty source sample")
    non_blank = [line for line in lines if line.strip()]
    blank_ratio = 1.0 - len(non_blank) / len(lines)
    comment_lines = sum(
        1
        for line in non_blank
        if line.lstrip().startswith(("#", "//", "/*", "*", ";"))
    )
    indented = [line for line in non_blank if line[:1] in (" ", "\t")]
    tabs = sum(1 for line in indented if line.startswith("\t"))
    identifiers = _WORD.findall(source)
    entropy = _token_entropy(identifiers)
    underscored = sum(1 for ident in identifiers if "_" in ident)
    open_braces = source.count("{")
    same_line = len(
        re.findall(r"\S.*\{\s*$", source, flags=re.MULTILINE)
    )
    return StyleFeatures(
        mean_line_length=sum(len(line) for line in non_blank)
        / len(non_blank),
        blank_line_ratio=blank_ratio,
        comment_ratio=comment_lines / len(non_blank),
        indent_tabs_ratio=tabs / len(indented) if indented else 0.0,
        identifier_entropy=entropy,
        underscore_identifier_ratio=(
            underscored / len(identifiers) if identifiers else 0.0
        ),
        brace_same_line_ratio=(
            same_line / open_braces if open_braces else 0.0
        ),
    )


def _token_entropy(tokens: Sequence[str]) -> float:
    if not tokens:
        return 0.0
    counts = Counter(tokens)
    total = len(tokens)
    return -sum(
        (count / total) * math.log2(count / total)
        for count in counts.values()
    )


class AuthorshipAttributor:
    """Nearest-centroid attribution over style vectors.

    Train with labelled samples per author; attribute an anonymous
    sample to the author whose centroid is nearest (Euclidean). The
    existence of this capability is the §4.1.3 warning: "the release
    of source code ... can be used to identify the authors".
    """

    def __init__(self) -> None:
        self._samples: dict[str, list[tuple[float, ...]]] = {}

    def train(self, author: str, source: str) -> None:
        """Add one labelled source sample for *author*."""
        if not author:
            raise MetricError("author label must be non-empty")
        vector = extract_features(source).vector()
        self._samples.setdefault(author, []).append(vector)

    def _centroids(self) -> Mapping[str, tuple[float, ...]]:
        if not self._samples:
            raise MetricError("attributor has no training samples")
        centroids = {}
        for author, vectors in self._samples.items():
            dims = len(vectors[0])
            centroids[author] = tuple(
                sum(v[d] for v in vectors) / len(vectors)
                for d in range(dims)
            )
        return centroids

    def attribute(self, source: str) -> tuple[str, float]:
        """Return (most likely author, distance to their centroid)."""
        vector = extract_features(source).vector()
        best_author = ""
        best_distance = math.inf
        for author, centroid in sorted(self._centroids().items()):
            distance = math.dist(vector, centroid)
            if distance < best_distance:
                best_author = author
                best_distance = distance
        return best_author, best_distance

    @property
    def authors(self) -> tuple[str, ...]:
        return tuple(sorted(self._samples))


@dataclasses.dataclass(frozen=True)
class SoftwareMetrics:
    """Calleja-style size/complexity metrics for one sample."""

    source_lines: int
    comment_lines: int
    function_count: int
    cyclomatic_complexity: int
    distinct_identifiers: int

    @property
    def comment_density(self) -> float:
        total = self.source_lines + self.comment_lines
        return self.comment_lines / total if total else 0.0


def software_metrics(source: str) -> SoftwareMetrics:
    """Compute the metrics vector for one source sample.

    Cyclomatic complexity uses the standard decision-point
    approximation (1 + branch keywords).
    """
    lines = [line for line in source.splitlines() if line.strip()]
    if not lines:
        raise MetricError("empty source sample")
    comments = sum(
        1
        for line in lines
        if line.lstrip().startswith(("#", "//", "/*", "*", ";"))
    )
    return SoftwareMetrics(
        source_lines=len(lines) - comments,
        comment_lines=comments,
        function_count=len(_FUNCTION.findall(source)),
        cyclomatic_complexity=1 + len(_BRANCH.findall(source)),
        distinct_identifiers=len(set(_WORD.findall(source))),
    )
