"""Social-network analysis of forum databases (Yip et al. [123]).

Yip et al. analysed leaked carding-forum databases with social network
analysis to show "that forums are a preferred way for criminals to
communicate". This module builds the member interaction graph from a
:class:`~repro.datasets.forum.ForumDatabase` (networkx) and computes
the measures such studies report: degree/betweenness centrality, key
actors, core decomposition, clustering and component structure.
"""

from __future__ import annotations

import dataclasses

import networkx as nx

from ..datasets.forum import ForumDatabase
from ..errors import MetricError

__all__ = ["ForumNetwork", "NetworkSummary"]


@dataclasses.dataclass(frozen=True)
class NetworkSummary:
    """Headline network statistics for a forum."""

    members: int
    edges: int
    density: float
    components: int
    largest_component_share: float
    average_clustering: float
    max_core_number: int

    def describe(self) -> str:
        """One-line rendering of the summary statistics."""
        return (
            f"{self.members} members, {self.edges} edges, density "
            f"{self.density:.4f}, {self.components} components "
            f"(largest {self.largest_component_share:.0%}), "
            f"clustering {self.average_clustering:.3f}, "
            f"max k-core {self.max_core_number}"
        )


class ForumNetwork:
    """The interaction graph of a forum with SNA queries."""

    def __init__(self, database: ForumDatabase) -> None:
        edges = database.interaction_edges()
        if not edges:
            raise MetricError("forum has no interactions to analyse")
        self.database = database
        self.graph = nx.DiGraph()
        self.graph.add_nodes_from(
            m.member_id for m in database.members
        )
        for source, target in edges:
            if self.graph.has_edge(source, target):
                self.graph[source][target]["weight"] += 1
            else:
                self.graph.add_edge(source, target, weight=1)

    @property
    def undirected(self) -> nx.Graph:
        return self.graph.to_undirected()

    def summary(self) -> NetworkSummary:
        """Headline structural statistics of the network."""
        graph = self.undirected
        components = list(nx.connected_components(graph))
        nonzero = [c for c in components if len(c) > 0]
        largest = max(len(c) for c in nonzero) if nonzero else 0
        cores = nx.core_number(graph) if graph.number_of_edges() else {}
        return NetworkSummary(
            members=graph.number_of_nodes(),
            edges=graph.number_of_edges(),
            density=nx.density(graph),
            components=len(components),
            largest_component_share=(
                largest / graph.number_of_nodes()
                if graph.number_of_nodes()
                else 0.0
            ),
            average_clustering=nx.average_clustering(graph),
            max_core_number=max(cores.values()) if cores else 0,
        )

    def key_actors(self, top: int = 10) -> list[tuple[int, float]]:
        """Members ranked by betweenness — the brokers Yip et al.
        identify as holding the market together."""
        if top < 1:
            raise MetricError("top must be at least 1")
        centrality = nx.betweenness_centrality(self.undirected)
        ranked = sorted(
            centrality.items(), key=lambda kv: (-kv[1], kv[0])
        )
        return ranked[:top]

    def degree_centrality(self) -> dict[int, float]:
        return nx.degree_centrality(self.undirected)

    def reciprocity(self) -> float:
        """Fraction of directed edges that are reciprocated —
        sustained two-way communication indicates relationships
        rather than drive-by posts."""
        return nx.reciprocity(self.graph) or 0.0

    def trade_network(self) -> nx.DiGraph:
        """Seller → buyer graph from the trade records."""
        graph = nx.DiGraph()
        for trade in self.database.trades:
            if graph.has_edge(trade.seller_id, trade.buyer_id):
                graph[trade.seller_id][trade.buyer_id][
                    "volume"
                ] += trade.price_usd
            else:
                graph.add_edge(
                    trade.seller_id,
                    trade.buyer_id,
                    volume=trade.price_usd,
                )
        return graph

    def seller_concentration(self) -> float:
        """Gini coefficient of sales volume across sellers — markets
        in the surveyed studies are dominated by few power sellers."""
        volumes: dict[int, float] = {}
        for trade in self.database.trades:
            volumes[trade.seller_id] = (
                volumes.get(trade.seller_id, 0.0) + trade.price_usd
            )
        values = sorted(volumes.values())
        if not values:
            raise MetricError("no trades recorded")
        n = len(values)
        total = sum(values)
        if total == 0:
            return 0.0
        cumulative = sum(
            (index + 1) * value for index, value in enumerate(values)
        )
        return (2.0 * cumulative) / (n * total) - (n + 1.0) / n
