"""Cross-site password reuse analysis (Das et al. [24]).

Given two dumps sharing some users (matched by email, as the paper's
subjects matched hashed emails), classify each shared user's password
pair as *identical*, *partial* (one a simple transformation of the
other) or *distinct*, and report the reuse profile — the headline
numbers of "The tangled web of password reuse".
"""

from __future__ import annotations

import dataclasses

from ..datasets.passwords import PasswordDump
from ..errors import MetricError

__all__ = ["ReuseProfile", "classify_pair", "analyze_reuse"]


@dataclasses.dataclass(frozen=True)
class ReuseProfile:
    """Reuse statistics over the shared-user population."""

    shared_users: int
    identical: int
    partial: int
    distinct: int

    @property
    def identical_rate(self) -> float:
        return self.identical / self.shared_users if self.shared_users else 0.0

    @property
    def partial_rate(self) -> float:
        return self.partial / self.shared_users if self.shared_users else 0.0

    @property
    def any_reuse_rate(self) -> float:
        if not self.shared_users:
            return 0.0
        return (self.identical + self.partial) / self.shared_users


def _strip_decorations(password: str) -> str:
    return password.strip().rstrip("0123456789!@#$%^&*").lower()


def classify_pair(first: str, second: str) -> str:
    """Classify a password pair: identical / partial / distinct.

    Partial covers the transformations Das et al. found dominant:
    case changes, appended digits/symbols, and containment.
    """
    if not first or not second:
        raise MetricError("passwords must be non-empty")
    if first == second:
        return "identical"
    if first.lower() == second.lower():
        return "partial"
    stripped_first = _strip_decorations(first)
    stripped_second = _strip_decorations(second)
    if stripped_first and stripped_first == stripped_second:
        return "partial"
    shorter, longer = sorted((first.lower(), second.lower()), key=len)
    if len(shorter) >= 4 and shorter in longer:
        return "partial"
    return "distinct"


def analyze_reuse(
    first: PasswordDump, second: PasswordDump
) -> ReuseProfile:
    """Match users across two plaintext dumps by email and classify.

    Raises :class:`~repro.errors.MetricError` when either dump lacks
    plaintext passwords (reuse cannot be judged from hashes alone).
    """
    by_email = {
        record.email: record
        for record in first.records
        if record.password
    }
    if not by_email:
        raise MetricError(f"dump {first.site!r} has no plaintexts")
    identical = partial = distinct = 0
    shared = 0
    for record in second.records:
        if not record.password:
            continue
        other = by_email.get(record.email)
        if other is None:
            continue
        shared += 1
        verdict = classify_pair(other.password, record.password)
        if verdict == "identical":
            identical += 1
        elif verdict == "partial":
            partial += 1
        else:
            distinct += 1
    if shared == 0:
        raise MetricError("the dumps share no users")
    return ReuseProfile(
        shared_users=shared,
        identical=identical,
        partial=partial,
        distinct=distinct,
    )
