"""Offender-journey funnel over booter databases ([46], §4.3.1).

Hutchings and Clayton's study of booter provision, and the database
analyses of Karami and Santanna, describe an offender funnel: people
register, a subset pays, a subset of those attacks, and a small core
attacks heavily. This module measures that funnel on a
:class:`~repro.datasets.booter.BooterDatabase` — conversion rates per
stage, revenue concentration, and the heavy-user share of attacks —
the quantities those papers tabulate from exactly this kind of dump.
"""

from __future__ import annotations

import dataclasses

from ..datasets.booter import BooterDatabase
from ..errors import MetricError

__all__ = ["FunnelStage", "OffenderFunnel", "analyze_funnel"]


@dataclasses.dataclass(frozen=True)
class FunnelStage:
    """One stage of the offender journey."""

    name: str
    count: int
    conversion_from_previous: float


@dataclasses.dataclass(frozen=True)
class OffenderFunnel:
    """The measured funnel plus concentration statistics."""

    stages: tuple[FunnelStage, ...]
    revenue_top10_share: float
    attacks_top10_share: float
    mean_attacks_per_attacker: float

    def stage(self, name: str) -> FunnelStage:
        """Look up one funnel stage by name."""
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise MetricError(f"unknown funnel stage {name!r}")

    def describe(self) -> str:
        """One-line rendering of the funnel and concentrations."""
        parts = [
            f"{stage.name}: {stage.count} "
            f"({stage.conversion_from_previous:.0%})"
            for stage in self.stages
        ]
        return (
            " -> ".join(parts)
            + f"; top-10% payers hold "
            f"{self.revenue_top10_share:.0%} of revenue, top-10% "
            f"attackers launch {self.attacks_top10_share:.0%} of "
            "attacks"
        )


def _top_share(values: list[float], fraction: float) -> float:
    """Share of the total held by the top *fraction* of values."""
    if not values:
        return 0.0
    total = sum(values)
    if total == 0:
        return 0.0
    ordered = sorted(values, reverse=True)
    top_n = max(1, round(len(ordered) * fraction))
    return sum(ordered[:top_n]) / total


def analyze_funnel(database: BooterDatabase) -> OffenderFunnel:
    """Measure the registration → payment → attack funnel."""
    if not database.users:
        raise MetricError("booter database has no users")
    registered = {user.user_id for user in database.users}
    payers = {payment.user_id for payment in database.payments}
    attackers = {attack.user_id for attack in database.attacks}

    attack_counts: dict[int, int] = {}
    for attack in database.attacks:
        attack_counts[attack.user_id] = (
            attack_counts.get(attack.user_id, 0) + 1
        )
    revenue_by_user: dict[int, float] = {}
    for payment in database.payments:
        revenue_by_user[payment.user_id] = (
            revenue_by_user.get(payment.user_id, 0.0)
            + payment.amount_usd
        )

    def conversion(current: int, previous: int) -> float:
        return current / previous if previous else 0.0

    stages = (
        FunnelStage(
            name="registered",
            count=len(registered),
            conversion_from_previous=1.0,
        ),
        FunnelStage(
            name="paid",
            count=len(payers),
            conversion_from_previous=conversion(
                len(payers), len(registered)
            ),
        ),
        FunnelStage(
            name="attacked",
            count=len(attackers & payers),
            conversion_from_previous=conversion(
                len(attackers & payers), len(payers)
            ),
        ),
    )
    attackers_with_counts = [
        count for count in attack_counts.values() if count > 0
    ]
    return OffenderFunnel(
        stages=stages,
        revenue_top10_share=_top_share(
            list(revenue_by_user.values()), 0.10
        ),
        attacks_top10_share=_top_share(
            [float(c) for c in attack_counts.values()], 0.10
        ),
        mean_attacks_per_attacker=(
            sum(attackers_with_counts) / len(attackers_with_counts)
            if attackers_with_counts
            else 0.0
        ),
    )
