"""Statistical tests and trend summaries over coding matrices.

Thin wrappers around scipy for the tests a systematization analysis
typically reports: independence of two coded attributes (χ², Fisher's
exact for small cells) and monotone trend over publication year
(Spearman/Mann-Kendall style).
"""

from __future__ import annotations

import dataclasses

import numpy as np
from scipy import stats

from ..errors import AnalysisError
from .matrix import CodingMatrix, CrossTab

__all__ = [
    "IndependenceTest",
    "TrendTest",
    "independence_test",
    "year_trend_test",
    "odds_ratio",
]


@dataclasses.dataclass(frozen=True)
class IndependenceTest:
    """Result of a 2×2 independence test."""

    row_label: str
    col_label: str
    method: str
    statistic: float
    p_value: float
    odds_ratio: float

    @property
    def significant(self) -> bool:
        """Conventional 0.05 threshold (descriptive, not confirmatory)."""
        return self.p_value < 0.05


@dataclasses.dataclass(frozen=True)
class TrendTest:
    """Result of a trend-over-years test for one indicator column."""

    label: str
    years: tuple[int, ...]
    shares: tuple[float, ...]
    rho: float
    p_value: float

    @property
    def direction(self) -> str:
        if self.rho > 0:
            return "increasing"
        if self.rho < 0:
            return "decreasing"
        return "flat"


def odds_ratio(tab: CrossTab) -> float:
    """Sample odds ratio with the Haldane-Anscombe 0.5 correction."""
    a = tab.both + 0.5
    b = tab.row_only + 0.5
    c = tab.col_only + 0.5
    d = tab.neither + 0.5
    return (a * d) / (b * c)


def independence_test(
    matrix: CodingMatrix, row_label: str, col_label: str
) -> IndependenceTest:
    """Test independence of two indicator columns.

    Uses Fisher's exact test when any expected cell count is below 5
    (almost always the case at n=30), otherwise a χ² test with Yates
    correction.
    """
    tab = matrix.crosstab(row_label, col_label)
    table = tab.table
    if tab.n == 0:
        raise AnalysisError("empty contingency table")
    expected = (
        table.sum(axis=1, keepdims=True)
        * table.sum(axis=0, keepdims=True)
        / tab.n
    )
    if (expected < 5).any():
        stat, p = stats.fisher_exact(table)
        method = "fisher-exact"
    else:
        chi2, p, _, _ = stats.chi2_contingency(table, correction=True)
        stat = float(chi2)
        method = "chi2-yates"
    return IndependenceTest(
        row_label=row_label,
        col_label=col_label,
        method=method,
        statistic=float(stat),
        p_value=float(p),
        odds_ratio=odds_ratio(tab),
    )


def year_trend_test(matrix: CodingMatrix, label: str) -> TrendTest:
    """Spearman rank correlation of per-year positive share vs. year.

    The paper (§5.5) notes it cannot show a trend in ethics-section
    prevalence from its sample; this test makes that check executable.
    """
    trend = matrix.year_trend(label)
    if len(trend) < 3:
        raise AnalysisError(
            f"need at least 3 distinct years for a trend on {label!r}"
        )
    years = tuple(trend)
    shares = tuple(pos / total for pos, total in trend.values())
    if len(set(shares)) == 1:
        # Constant share: no trend by definition; Spearman is undefined.
        return TrendTest(
            label=label, years=years, shares=shares, rho=0.0, p_value=1.0
        )
    rho, p = stats.spearmanr(np.array(years), np.array(shares))
    return TrendTest(
        label=label,
        years=years,
        shares=shares,
        rho=float(rho),
        p_value=float(p),
    )
