"""Paper-similarity structure over the coding matrix.

Do papers that use the same *kind* of data make the same ethical
moves? This module builds a similarity graph over the corpus (Jaccard
similarity of positive codings), finds clusters, and measures whether
the Table 1 categories explain the coding structure — an analysis the
paper gestures at ("a wide variation in the ethical issues mentioned
by the authors ... even when they are using the same data") made
computable.
"""

from __future__ import annotations

import dataclasses

import networkx as nx
import numpy as np

from ..corpus import Corpus
from ..errors import AnalysisError
from .matrix import CodingMatrix

__all__ = ["SimilarityAnalysis", "PairSimilarity"]


@dataclasses.dataclass(frozen=True)
class PairSimilarity:
    first: str
    second: str
    jaccard: float


class SimilarityAnalysis:
    """Jaccard similarity of entries' positive coding vectors."""

    def __init__(
        self, corpus: Corpus, *, columns: tuple[str, ...] | None = None
    ) -> None:
        self.corpus = corpus
        matrix = CodingMatrix(corpus)
        if columns is None:
            # Default: the discussion columns (ethical issues,
            # justifications, ethics section) — the paper's "ethical
            # moves", excluding the legal-applicability facts.
            columns = tuple(
                dim.id
                for dim in corpus.codebook
                if dim.group in ("ethical", "justification", "meta")
                and dim.id != "reb-approval"
            )
        self.columns = columns
        self._vectors = {
            entry.id: np.array(
                [matrix.column(c)[i] for c in columns], dtype=bool
            )
            for i, entry in enumerate(matrix.entries)
        }

    def jaccard(self, first: str, second: str) -> float:
        """Jaccard similarity of two entries' positive codings."""
        try:
            a = self._vectors[first]
            b = self._vectors[second]
        except KeyError as exc:
            raise AnalysisError(
                f"unknown entry {exc.args[0]!r}"
            ) from None
        union = np.logical_or(a, b).sum()
        if union == 0:
            return 1.0  # both all-negative: identical behaviour
        return float(np.logical_and(a, b).sum() / union)

    def pairs(self, *, minimum: float = 0.0) -> list[PairSimilarity]:
        """All entry pairs with similarity >= minimum, descending."""
        ids = list(self._vectors)
        result = [
            PairSimilarity(a, b, self.jaccard(a, b))
            for i, a in enumerate(ids)
            for b in ids[i + 1:]
        ]
        result = [p for p in result if p.jaccard >= minimum]
        result.sort(key=lambda p: (-p.jaccard, p.first, p.second))
        return result

    def graph(self, *, threshold: float = 0.6) -> nx.Graph:
        """Similarity graph with edges above *threshold*."""
        if not 0.0 <= threshold <= 1.0:
            raise AnalysisError("threshold must be in [0, 1]")
        graph = nx.Graph()
        graph.add_nodes_from(self._vectors)
        for pair in self.pairs(minimum=threshold):
            graph.add_edge(
                pair.first, pair.second, weight=pair.jaccard
            )
        return graph

    def clusters(self, *, threshold: float = 0.6) -> list[set[str]]:
        """Connected components of the thresholded graph, largest
        first."""
        components = nx.connected_components(
            self.graph(threshold=threshold)
        )
        return sorted(components, key=len, reverse=True)

    def category_cohesion(self) -> dict[str, float]:
        """Mean within-category similarity per category.

        High cohesion means papers using the same kind of data make
        the same ethical moves; the paper observes variation "even
        when they are using the same data", so cohesion well below 1
        is the expected shape.
        """
        by_category: dict[str, list[str]] = {}
        for entry in self.corpus:
            by_category.setdefault(entry.category, []).append(entry.id)
        cohesion: dict[str, float] = {}
        for category, ids in by_category.items():
            if len(ids) < 2:
                cohesion[category] = 1.0
                continue
            values = [
                self.jaccard(a, b)
                for i, a in enumerate(ids)
                for b in ids[i + 1:]
            ]
            cohesion[category] = sum(values) / len(values)
        return cohesion

    def separation(self) -> float:
        """Mean within-category minus mean between-category
        similarity; positive when categories structure the coding."""
        within: list[float] = []
        between: list[float] = []
        entries = list(self.corpus)
        for i, first in enumerate(entries):
            for second in entries[i + 1:]:
                value = self.jaccard(first.id, second.id)
                if first.category == second.category:
                    within.append(value)
                else:
                    between.append(value)
        if not within or not between:
            raise AnalysisError("need 2+ categories with 2+ entries")
        return sum(within) / len(within) - sum(between) / len(between)
