"""Coding-matrix extraction and tabulation.

:class:`CodingMatrix` turns a :class:`~repro.corpus.Corpus` into a
dense indicator matrix (entries × indicator columns) backed by numpy,
and provides the frequency / cross-tabulation / co-occurrence queries
the analysis in §5 of the paper is built from.

Indicator columns are one per closed dimension (1 when the cell value
is positive: applicable / discussed / approved) plus one per member
code of each open dimension (1 when the entry carries the code).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

import numpy as np

from ..codebook import CellValue, DimensionKind
from ..corpus import CaseStudyEntry, Category, Corpus
from ..errors import AnalysisError

__all__ = ["CodingMatrix", "FrequencyTable", "CrossTab"]


@dataclasses.dataclass(frozen=True)
class FrequencyTable:
    """Counts (and shares) of positive codings per indicator column."""

    labels: tuple[str, ...]
    counts: tuple[int, ...]
    total: int

    def share(self, label: str) -> float:
        """Fraction of entries positive on *label* (0..1)."""
        return self[label] / self.total if self.total else 0.0

    def __getitem__(self, label: str) -> int:
        try:
            return self.counts[self.labels.index(label)]
        except ValueError:
            raise AnalysisError(f"unknown label {label!r}") from None

    def most_common(self, n: int | None = None) -> list[tuple[str, int]]:
        """(label, count) pairs sorted by descending count."""
        pairs = sorted(
            zip(self.labels, self.counts), key=lambda p: (-p[1], p[0])
        )
        return pairs if n is None else pairs[:n]

    def as_dict(self) -> dict[str, int]:
        return dict(zip(self.labels, self.counts))


@dataclasses.dataclass(frozen=True)
class CrossTab:
    """A 2×2 contingency table between two indicator columns."""

    row_label: str
    col_label: str
    both: int
    row_only: int
    col_only: int
    neither: int

    @property
    def table(self) -> np.ndarray:
        return np.array(
            [[self.both, self.row_only], [self.col_only, self.neither]],
            dtype=np.int64,
        )

    @property
    def n(self) -> int:
        return self.both + self.row_only + self.col_only + self.neither

    def jaccard(self) -> float:
        """Jaccard similarity of the two indicator sets."""
        union = self.both + self.row_only + self.col_only
        return self.both / union if union else 0.0


class CodingMatrix:
    """Dense indicator matrix over a corpus.

    Column naming: closed dimensions use their dimension id (e.g.
    ``"computer-misuse"``); open-dimension codes use
    ``"<dimension>:<ABBREV>"`` (e.g. ``"safeguards:CS"``).
    """

    def __init__(self, corpus: Corpus) -> None:
        self.corpus = corpus
        self.entries: tuple[CaseStudyEntry, ...] = tuple(corpus)
        columns: list[str] = []
        for dim in corpus.codebook:
            if dim.kind == DimensionKind.CLOSED:
                columns.append(dim.id)
            else:
                columns.extend(
                    f"{dim.id}:{code.abbrev}" for code in dim.members
                )
        self.columns: tuple[str, ...] = tuple(columns)
        self._index = {c: i for i, c in enumerate(self.columns)}
        self._matrix = np.zeros(
            (len(self.entries), len(self.columns)), dtype=np.int8
        )
        for row, entry in enumerate(self.entries):
            for dim in corpus.codebook:
                if dim.kind == DimensionKind.CLOSED:
                    value = entry.values.get(dim.id)
                    if value is not None and value.is_positive:
                        self._matrix[row, self._index[dim.id]] = 1
                else:
                    for abbrev in entry.codes(dim.id):
                        key = f"{dim.id}:{abbrev}"
                        self._matrix[row, self._index[key]] = 1

    # -- basic access ----------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return self._matrix.shape

    def column(self, label: str) -> np.ndarray:
        """The indicator column for *label* (0/1 per entry)."""
        try:
            return self._matrix[:, self._index[label]]
        except KeyError:
            raise AnalysisError(f"unknown column {label!r}") from None

    def row(self, entry_id: str) -> np.ndarray:
        """The indicator row for one entry id."""
        for i, entry in enumerate(self.entries):
            if entry.id == entry_id:
                return self._matrix[i]
        raise AnalysisError(f"unknown entry {entry_id!r}")

    def as_array(self) -> np.ndarray:
        """A copy of the underlying indicator matrix."""
        return self._matrix.copy()

    # -- tabulation --------------------------------------------------------
    def frequencies(
        self, labels: Sequence[str] | None = None
    ) -> FrequencyTable:
        """Positive-coding counts for the given columns (default all)."""
        labels = tuple(labels) if labels is not None else self.columns
        counts = tuple(int(self.column(label).sum()) for label in labels)
        return FrequencyTable(
            labels=labels, counts=counts, total=len(self.entries)
        )

    def group_frequencies(self, group: str) -> FrequencyTable:
        """Frequencies for all indicator columns of a codebook group."""
        labels: list[str] = []
        for dim in self.corpus.codebook.group(group):
            if dim.kind == DimensionKind.CLOSED:
                labels.append(dim.id)
            else:
                labels.extend(
                    f"{dim.id}:{c.abbrev}" for c in dim.members
                )
        if not labels:
            raise AnalysisError(f"codebook has no group {group!r}")
        return self.frequencies(labels)

    def crosstab(self, row_label: str, col_label: str) -> CrossTab:
        """2×2 contingency table between two indicator columns."""
        a = self.column(row_label).astype(bool)
        b = self.column(col_label).astype(bool)
        return CrossTab(
            row_label=row_label,
            col_label=col_label,
            both=int((a & b).sum()),
            row_only=int((a & ~b).sum()),
            col_only=int((~a & b).sum()),
            neither=int((~a & ~b).sum()),
        )

    def cooccurrence(
        self, labels: Sequence[str] | None = None
    ) -> tuple[tuple[str, ...], np.ndarray]:
        """Co-occurrence counts matrix for the given columns."""
        labels = tuple(labels) if labels is not None else self.columns
        sub = np.stack([self.column(label) for label in labels], axis=1)
        counts = sub.T.astype(np.int64) @ sub.astype(np.int64)
        return labels, counts

    # -- grouped views -------------------------------------------------------
    def by_category(self) -> dict[str, "CodingMatrix"]:
        """One sub-matrix per Table 1 category, in table order."""
        result: dict[str, CodingMatrix] = {}
        for category in Category.ORDER:
            sub_entries = [
                e for e in self.entries if e.category == category
            ]
            if not sub_entries:
                continue
            sub = CodingMatrix.__new__(CodingMatrix)
            sub.corpus = self.corpus
            sub.entries = tuple(sub_entries)
            sub.columns = self.columns
            sub._index = self._index
            rows = [
                i
                for i, e in enumerate(self.entries)
                if e.category == category
            ]
            sub._matrix = self._matrix[rows]
            result[category] = sub
        return result

    def year_trend(self, label: str) -> dict[int, tuple[int, int]]:
        """Per-year (positive count, entry count) for a column."""
        col = self.column(label)
        trend: dict[int, list[int]] = {}
        for value, entry in zip(col, self.entries):
            bucket = trend.setdefault(entry.year, [0, 0])
            bucket[0] += int(value)
            bucket[1] += 1
        return {
            year: (pos, total)
            for year, (pos, total) in sorted(trend.items())
        }

    def reb_breakdown(self) -> dict[str, int]:
        """Counts per REB status value across all entries."""
        counts: dict[str, int] = {
            value.value: 0 for value in CellValue
        }
        for entry in self.entries:
            counts[entry.reb_status.value] += 1
        return {k: v for k, v in counts.items() if v}
