"""Tabulation, statistics and the §5 reproduction queries."""

from .matrix import CodingMatrix, CrossTab, FrequencyTable
from .section5 import (
    PAPER_CLAIMS,
    ClaimCheck,
    Section5Statistics,
    section5_statistics,
    verify_section5,
)
from .similarity import PairSimilarity, SimilarityAnalysis
from .uncertainty import (
    ProportionEstimate,
    compare_proportions,
    required_sample_size,
    section5_intervals,
    wilson_interval,
)
from .statistics import (
    IndependenceTest,
    TrendTest,
    odds_ratio,
    independence_test,
    year_trend_test,
)

__all__ = [
    "ClaimCheck",
    "CodingMatrix",
    "CrossTab",
    "FrequencyTable",
    "IndependenceTest",
    "PAPER_CLAIMS",
    "PairSimilarity",
    "ProportionEstimate",
    "Section5Statistics",
    "SimilarityAnalysis",
    "TrendTest",
    "compare_proportions",
    "independence_test",
    "odds_ratio",
    "required_sample_size",
    "section5_intervals",
    "section5_statistics",
    "verify_section5",
    "wilson_interval",
    "year_trend_test",
]
