"""Uncertainty quantification for corpus proportions.

The paper is careful about what n=28 can support: "We do not have
enough information to show any trend in this behaviour ... we would
need a large representative sample from each field." This module
makes that humility quantitative: Wilson score intervals for the
reported proportions, minimum-sample calculations for a target
margin, and a two-proportion comparison — so claims like "12 of 28
papers have ethics sections" carry their interval.
"""

from __future__ import annotations

import dataclasses
import math

from scipy import stats

from ..corpus import Corpus
from ..errors import AnalysisError

__all__ = [
    "ProportionEstimate",
    "wilson_interval",
    "required_sample_size",
    "compare_proportions",
    "section5_intervals",
]

_Z95 = 1.959963984540054  # two-sided 95%


@dataclasses.dataclass(frozen=True)
class ProportionEstimate:
    """A proportion with its Wilson 95% interval."""

    name: str
    successes: int
    total: int
    point: float
    low: float
    high: float

    @property
    def margin(self) -> float:
        return (self.high - self.low) / 2.0

    def describe(self) -> str:
        """One-line rendering with the 95% interval."""
        return (
            f"{self.name}: {self.successes}/{self.total} = "
            f"{self.point:.0%} (95% CI {self.low:.0%}–{self.high:.0%})"
        )


def wilson_interval(
    successes: int, total: int, *, z: float = _Z95
) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Preferred over the normal approximation at small n (and n=28 is
    small), and well-behaved at 0 and 1.
    """
    if total <= 0:
        raise AnalysisError("total must be positive")
    if not 0 <= successes <= total:
        raise AnalysisError("successes must be within [0, total]")
    p = successes / total
    denom = 1.0 + z * z / total
    centre = (p + z * z / (2 * total)) / denom
    half = (
        z
        * math.sqrt(
            p * (1 - p) / total + z * z / (4 * total * total)
        )
        / denom
    )
    low = max(0.0, centre - half)
    high = min(1.0, centre + half)
    # Pin the degenerate endpoints exactly (float rounding can land
    # at 1 - 1e-16 when p itself is 1).
    if successes == 0:
        low = 0.0
    if successes == total:
        high = 1.0
    return (low, high)


def required_sample_size(
    *, margin: float, expected: float = 0.5, z: float = _Z95
) -> int:
    """Papers needed for a target margin of error on a proportion.

    The "large representative sample" the paper says it would need,
    as a number.
    """
    if not 0.0 < margin < 0.5:
        raise AnalysisError("margin must be in (0, 0.5)")
    if not 0.0 < expected < 1.0:
        raise AnalysisError("expected proportion must be in (0, 1)")
    n = (z * z * expected * (1 - expected)) / (margin * margin)
    return math.ceil(n)


def compare_proportions(
    successes_a: int,
    total_a: int,
    successes_b: int,
    total_b: int,
) -> float:
    """Two-sided Fisher exact p-value for two proportions.

    Used to check whether apparent differences between groups of
    papers (e.g. ethics-section rates across categories) are
    supportable at these sample sizes — usually they are not, which
    is the paper's §5.5 point.
    """
    for value, bound in (
        (successes_a, total_a),
        (successes_b, total_b),
    ):
        if bound <= 0 or not 0 <= value <= bound:
            raise AnalysisError("invalid counts")
    table = [
        [successes_a, total_a - successes_a],
        [successes_b, total_b - successes_b],
    ]
    __, p_value = stats.fisher_exact(table)
    return float(p_value)


def section5_intervals(corpus: Corpus) -> tuple[ProportionEstimate, ...]:
    """The headline §5 proportions with their intervals."""
    papers = corpus.papers()
    total_papers = len(papers)
    total_entries = len(corpus)
    ethics_sections = sum(1 for e in papers if e.has_ethics_section)
    cs = len(corpus.with_code("safeguards", "CS"))
    p = len(corpus.with_code("safeguards", "P"))
    reb_engaged = sum(
        1
        for e in corpus
        if e.reb_status.value in ("approved", "exempt")
    )

    def estimate(
        name: str, successes: int, total: int
    ) -> ProportionEstimate:
        low, high = wilson_interval(successes, total)
        return ProportionEstimate(
            name=name,
            successes=successes,
            total=total,
            point=successes / total,
            low=low,
            high=high,
        )

    return (
        estimate("ethics sections", ethics_sections, total_papers),
        estimate("controlled sharing", cs, total_entries),
        estimate("privacy safeguard", p, total_entries),
        estimate("REB engagement", reb_engaged, total_entries),
    )
