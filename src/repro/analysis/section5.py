"""Named queries reproducing every quantitative claim in §5 of the paper.

Each claim is computed from the corpus (never hard-coded) and compared
against the value the paper reports. :func:`section5_statistics`
returns the full set; :func:`verify_section5` checks them and returns
a list of :class:`ClaimCheck` results — the reproduction harness for
experiments E2–E8 in DESIGN.md.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from ..codebook import CellValue
from ..corpus import Corpus
from .matrix import CodingMatrix

__all__ = [
    "Section5Statistics",
    "ClaimCheck",
    "section5_statistics",
    "verify_section5",
    "PAPER_CLAIMS",
]


@dataclasses.dataclass(frozen=True)
class Section5Statistics:
    """All §5 statistics recomputed from the corpus.

    Attributes correspond to the paper's narrative claims; see
    :data:`PAPER_CLAIMS` for the expected values.
    """

    total_entries: int
    total_papers: int
    reb_exempt: int
    reb_approved: int
    reb_not_mentioned: int
    reb_not_applicable: int
    ethics_sections: int
    controlled_sharing: int
    safeguard_counts: dict[str, int]
    harm_counts: dict[str, int]
    benefit_counts: dict[str, int]
    justification_counts: dict[str, int]
    ethical_issue_counts: dict[str, int]
    legal_issue_counts: dict[str, int]
    exempt_entries: tuple[str, ...]
    approved_entries: tuple[str, ...]
    exempt_used_safeguards: bool
    exempt_identified_harms: bool
    approved_also_did_surveys: bool
    most_common_safeguard: str
    most_common_harm: str
    most_common_benefit: str
    harms_mentions: int
    benefits_mentions: int

    def as_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)


#: The values the paper reports (or that follow arithmetically from its
#: text), keyed by statistic name. Used by :func:`verify_section5`.
PAPER_CLAIMS: dict[str, Any] = {
    # Table 1 has 30 rows; §5.5 counts 28 "papers" (excluding the two
    # raw web sources, [106] and [18]).
    "total_entries": 30,
    "total_papers": 28,
    # "Two works stated that they were exempt from REB approval, two
    #  received REB approval and 24 did not mention REBs."
    "reb_exempt": 2,
    "reb_approved": 2,
    "reb_not_mentioned": 24,
    "reb_not_applicable": 2,
    # "Explicit ethics sections were included in 12 of the 28 papers."
    "ethics_sections": 12,
    # "Only four of the papers discussed controlled sharing (CS)."
    "controlled_sharing": 4,
    # "Privacy preservation is one of the safeguards applied most
    #  frequently" — P must be the (strictly) most common safeguard.
    "most_common_safeguard": "P",
    # "Both of these works used Safeguards ... and have clear ethical
    #  justifications" (the two exemptions).
    "exempt_used_safeguards": True,
    "exempt_identified_harms": True,
    # "Both of the papers that received REB approval obtained it ...
    #  because they also conducted surveys" ([57], [24]).
    "approved_also_did_surveys": True,
    # The two exempt works, by row.
    "exempt_entries": ("booters-karami-stress", "udp-ddos-thomas"),
    "approved_entries": ("guess-again-kelley", "tangled-web-das"),
    # "researchers appear to be more reluctant to express the potential
    #  harms resulting from their work than their benefits": total
    #  benefit mentions exceed total harm mentions.
    "benefits_exceed_harms": True,
}

#: Rows whose authors conducted surveys / other human-subject research
#: alongside the illicit-origin data use (§5.5: the reason the two
#: REB approvals were obtained at all).
_SURVEY_ENTRIES = frozenset({"guess-again-kelley", "tangled-web-das"})


def section5_statistics(corpus: Corpus) -> Section5Statistics:
    """Recompute every §5 statistic from the coded corpus."""
    matrix = CodingMatrix(corpus)
    papers = corpus.papers()

    def status(value: CellValue) -> tuple[str, ...]:
        return tuple(
            e.id for e in corpus if e.reb_status is value
        )

    exempt = status(CellValue.EXEMPT)
    approved = status(CellValue.APPROVED)

    def code_counts(dimension_id: str) -> dict[str, int]:
        dim = corpus.codebook[dimension_id]
        return {
            code.abbrev: sum(
                1 for e in corpus if e.has_code(dimension_id, code.abbrev)
            )
            for code in dim.members
        }

    def discussed_counts(group: str) -> dict[str, int]:
        return {
            dim.id: sum(1 for e in corpus if e.discussed(dim.id))
            for dim in corpus.codebook.group(group)
        }

    safeguard_counts = code_counts("safeguards")
    harm_counts = code_counts("harms")
    benefit_counts = code_counts("benefits")

    def argmax(counts: dict[str, int]) -> str:
        return max(sorted(counts), key=lambda k: counts[k])

    exempt_entries = tuple(corpus[i] for i in exempt)
    return Section5Statistics(
        total_entries=len(corpus),
        total_papers=len(papers),
        reb_exempt=len(exempt),
        reb_approved=len(approved),
        reb_not_mentioned=len(status(CellValue.NOT_MENTIONED)),
        reb_not_applicable=len(status(CellValue.NOT_RELEVANT)),
        ethics_sections=sum(
            1 for e in papers if e.has_ethics_section
        ),
        controlled_sharing=len(corpus.with_code("safeguards", "CS")),
        safeguard_counts=safeguard_counts,
        harm_counts=harm_counts,
        benefit_counts=benefit_counts,
        justification_counts=discussed_counts("justification"),
        ethical_issue_counts=discussed_counts("ethical"),
        legal_issue_counts={
            dim.id: int(matrix.column(dim.id).sum())
            for dim in corpus.codebook.group("legal")
        },
        exempt_entries=exempt,
        approved_entries=approved,
        exempt_used_safeguards=all(
            e.codes("safeguards") for e in exempt_entries
        ),
        exempt_identified_harms=all(
            e.discussed("identify-harms") for e in exempt_entries
        ),
        approved_also_did_surveys=set(approved) <= _SURVEY_ENTRIES
        and bool(approved),
        most_common_safeguard=argmax(safeguard_counts),
        most_common_harm=argmax(harm_counts),
        most_common_benefit=argmax(benefit_counts),
        harms_mentions=sum(harm_counts.values()),
        benefits_mentions=sum(benefit_counts.values()),
    )


@dataclasses.dataclass(frozen=True)
class ClaimCheck:
    """Comparison of one recomputed statistic against the paper."""

    claim: str
    expected: Any
    measured: Any

    @property
    def ok(self) -> bool:
        return self.expected == self.measured

    def describe(self) -> str:
        """One-line OK/FAIL rendering of the comparison."""
        mark = "OK " if self.ok else "FAIL"
        return (
            f"[{mark}] {self.claim}: paper={self.expected!r} "
            f"measured={self.measured!r}"
        )


def verify_section5(corpus: Corpus) -> list[ClaimCheck]:
    """Check every §5 claim against the corpus; all should pass."""
    stats = section5_statistics(corpus)
    checks: list[ClaimCheck] = []
    direct = (
        "total_entries",
        "total_papers",
        "reb_exempt",
        "reb_approved",
        "reb_not_mentioned",
        "reb_not_applicable",
        "ethics_sections",
        "controlled_sharing",
        "most_common_safeguard",
        "exempt_used_safeguards",
        "exempt_identified_harms",
        "approved_also_did_surveys",
    )
    for name in direct:
        checks.append(
            ClaimCheck(
                claim=name,
                expected=PAPER_CLAIMS[name],
                measured=getattr(stats, name),
            )
        )
    checks.append(
        ClaimCheck(
            claim="exempt_entries",
            expected=set(PAPER_CLAIMS["exempt_entries"]),
            measured=set(stats.exempt_entries),
        )
    )
    checks.append(
        ClaimCheck(
            claim="approved_entries",
            expected=set(PAPER_CLAIMS["approved_entries"]),
            measured=set(stats.approved_entries),
        )
    )
    checks.append(
        ClaimCheck(
            claim="benefits_exceed_harms",
            expected=PAPER_CLAIMS["benefits_exceed_harms"],
            measured=stats.benefits_mentions > stats.harms_mentions,
        )
    )
    # Privacy must be *strictly* the most frequent safeguard.
    p_count = stats.safeguard_counts["P"]
    others = [
        count
        for abbrev, count in stats.safeguard_counts.items()
        if abbrev != "P"
    ]
    checks.append(
        ClaimCheck(
            claim="privacy_strictly_most_frequent",
            expected=True,
            measured=all(p_count > c for c in others),
        )
    )
    return checks
