"""repro — reproduction of "Ethical issues in research using datasets
of illicit origin" (Thomas et al., IMC 2017).

The library provides:

* the paper's qualitative coding framework (:mod:`repro.codebook`,
  :mod:`repro.corpus`, :mod:`repro.coding`),
* the analysis that regenerates Table 1 and every §5 statistic
  (:mod:`repro.analysis`, :mod:`repro.tables`),
* operational ethics/legal decision support (:mod:`repro.ethics`,
  :mod:`repro.legal`, :mod:`repro.assessment`, :mod:`repro.reb`),
* a safeguard toolkit (:mod:`repro.safeguards`,
  :mod:`repro.anonymization`),
* synthetic illicit-origin dataset simulators (:mod:`repro.datasets`)
  and the survey papers' algorithms (:mod:`repro.metrics`),
* report generators (:mod:`repro.reporting`) and a CLI
  (``python -m repro``).

Quickstart::

    from repro import table1_corpus, render_table1, section5_statistics
    corpus = table1_corpus()
    print(render_table1(corpus))
    stats = section5_statistics(corpus)
"""

from __future__ import annotations

from .bibliography import Bibliography, Reference, paper_bibliography
from .codebook import CellValue, Code, Codebook, Dimension, paper_codebook
from .corpus import (
    CaseStudyEntry,
    Category,
    Corpus,
    DataOrigin,
    table1_corpus,
)

__version__ = "1.0.0"

__all__ = [
    "Bibliography",
    "CaseStudyEntry",
    "Category",
    "CellValue",
    "Code",
    "Codebook",
    "Corpus",
    "DataOrigin",
    "Dimension",
    "Reference",
    "__version__",
    "paper_bibliography",
    "paper_codebook",
    "table1_corpus",
]


def __getattr__(name: str):
    """Lazily expose heavyweight subpackage entry points.

    Keeps ``import repro`` fast while letting ``repro.render_table1``
    and friends work as documented.
    """
    lazy = {
        "render_table1": ("repro.tables", "render_table1"),
        "section5_statistics": ("repro.analysis", "section5_statistics"),
        "CodingMatrix": ("repro.analysis", "CodingMatrix"),
        "assess_project": ("repro.assessment", "assess_project"),
        "ResearchProject": ("repro.assessment", "ResearchProject"),
    }
    if name in lazy:
        import importlib

        module_name, attr = lazy[name]
        module = importlib.import_module(module_name)
        value = getattr(module, attr)
        globals()[name] = value
        return value
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
