"""The per-run execution context every operation handler receives.

Before the kernel existed, each CLI branch re-plumbed the same
ambient state by hand: the Table 1 corpus was re-materialised per
command, observers were constructed inline, and there was nowhere to
hang cross-request state like a result cache. :class:`RunContext`
threads all of it explicitly:

* a **memoised corpus** (and its content digest, the cache key
  ingredient for pure operations),
* the **result cache** slot (``None`` disables caching),
* an **observer factory** so handlers that record audit trails get
  them from the context instead of reaching into
  ``repro.observability`` themselves,
* the **default seed** for simulation-flavoured operations — the
  clock-free configuration knob; nothing in a context reads the
  clock or global RNG state.

Contexts are cheap: one per CLI invocation, one per batch worker
process (where the memoised corpus and cache amortise across every
request the worker serves).
"""

from __future__ import annotations

import hashlib

__all__ = ["RunContext"]


class RunContext:
    """Shared state for one run of one or many operations."""

    __slots__ = ("cache", "default_seed", "_corpus", "_digest")

    def __init__(self, *, cache=None, default_seed: int = 0) -> None:
        self.cache = cache
        self.default_seed = default_seed
        self._corpus = None
        self._digest: str | None = None

    @property
    def is_warm(self) -> bool:
        """Whether the lazy slots are already materialised.

        The health surface reads this instead of poking the private
        slots: a warm context means the corpus build and digest
        hashing — the dominant first-request costs — are already
        paid.
        """
        return self._corpus is not None and self._digest is not None

    def corpus(self):
        """The Table 1 corpus, materialised once per context."""
        if self._corpus is None:
            from .. import table1_corpus

            self._corpus = table1_corpus()
        return self._corpus

    def corpus_digest(self) -> str:
        """Content digest of codebook + corpus (the purity key).

        BLAKE2b-128 over the codebook identity (name and dimension
        ids) and the full corpus serialisation — any change to the
        coded data or its schema changes the digest, invalidating
        every cached pure result.
        """
        if self._digest is None:
            corpus = self.corpus()
            codebook = corpus.codebook
            hasher = hashlib.blake2b(digest_size=16)
            hasher.update(codebook.name.encode("utf-8"))
            hasher.update(b"\x00")
            hasher.update(
                ",".join(codebook.dimension_ids).encode("utf-8")
            )
            hasher.update(b"\x00")
            hasher.update(corpus.to_json(indent=None).encode("utf-8"))
            self._digest = hasher.hexdigest()
        return self._digest

    def cache_digest(self, operation, request) -> str:
        """The purity digest for one (operation, request) pair.

        Plain pure operations key on the corpus digest alone. A
        ``pack_scoped`` operation additionally mixes in the content
        digest of the policy pack its request names — resolved
        fresh on every call, so an edited pack file yields a new
        key immediately (hot-swap without restart or cache flush).
        Raises :class:`~repro.errors.PolicyError` for an unknown or
        malformed pack reference, exactly as the handler would.
        """
        digest = self.corpus_digest()
        if operation.pack_scoped:
            from ..policy import pack_digest_for

            digest = f"{digest}:{pack_digest_for(request.get('pack'))}"
        return digest

    def warm_up(self) -> str:
        """Materialise every lazy slot now; returns the corpus digest.

        The warm-pool initializer hook: a worker (or a long-lived
        coordinator) calls this once at startup so the corpus build
        and digest hashing — the dominant first-request costs — are
        paid before any request arrives. Idempotent: the memoised
        slots make repeat calls free.
        """
        self.corpus()
        return self.corpus_digest()

    def make_observer(self, audit_log=None):
        """A fully enabled observer, persisting to *audit_log* if given.

        Handlers that record go through the context so a future
        server adapter can swap in pooled or pre-configured
        observers without touching operation code.
        """
        from ..observability import Observer

        return Observer.recording(audit_log)

    def make_metrics_observer(self):
        """A live observer with metrics and tracing but no trail.

        For operations (the profiler paths) that need the master
        switch on without recording or chaining any audit events.
        """
        from ..observability import MetricsRegistry, Observer, Tracer

        registry = MetricsRegistry()
        return Observer(metrics=registry, tracer=Tracer(registry))
