"""The service kernel: typed operations over every subsystem façade.

The ROADMAP's north star is a system serving many clients, but until
this package existed the only entry point was a hand-wired CLI
monolith. ``repro.ops`` extracts the service layer the paper's
"ethics assessment as a queryable service" framing calls for:

* :mod:`~repro.ops.spec` — :class:`Operation` (name, declarative
  :class:`Arg` spec, handler, purity flags), canonical request
  building, :class:`OpResponse` (structured payload + exact CLI
  text + exit code), and the byte-stable :func:`emit_json` /
  :func:`emit_jsonl` serialisers;
* :mod:`~repro.ops.catalog` / :mod:`~repro.ops.catalog_runtime` —
  every subsystem entry point (Table 1, §5 statistics, reports,
  lint, simulators, the safeguard pipeline, audit inspection,
  telemetry egress, REB simulation) registered as an operation;
* :mod:`~repro.ops.kernel` — :func:`execute`, the single code path
  all adapters share;
* :mod:`~repro.ops.context` — :class:`RunContext`: memoised corpus
  + content digest, the result-cache slot, observer factories;
* :mod:`~repro.ops.cache` — the content-addressed
  :class:`ResultCache` for pure operations;
* :mod:`~repro.ops.failures` — the single domain-error →
  exit-code table (:func:`describe_failure`);
* :mod:`~repro.ops.pool` — the :class:`WarmPool`: a process-
  lifetime pool of pre-forked, pre-warmed workers with a shared
  coordinator-side result cache that learns from every worker;
* :mod:`~repro.ops.batch` — the JSONL :class:`BatchExecutor` with
  cache-aware chunked fan-out over the warm pool, per-request audit
  events and in-order telemetry replay.

The CLI (:mod:`repro.cli.main`) is one thin adapter over this
kernel — staticcheck rule R7 forbids it any other subsystem import —
and an HTTP server or queue consumer would be another. ``ReproError``
is re-exported so adapters can catch domain failures without
importing :mod:`repro.errors` directly.
"""

from ..errors import BatchError, OperationError, ReproError
from .batch import (
    BatchExecutor,
    BatchRequest,
    BatchResult,
    load_requests,
)
from .cache import ResultCache, cache_key
from .catalog import default_registry
from .context import RunContext
from .failures import (
    EXIT_FAILURE,
    EXIT_USAGE,
    describe_failure,
    failure_table,
)
from .kernel import execute
from .pool import (
    WarmPool,
    auto_chunk_size,
    shutdown_warm_pools,
    warm_pool,
)
from .spec import (
    Arg,
    Operation,
    OperationRegistry,
    OpResponse,
    build_request,
    emit_json,
    emit_jsonl,
)

__all__ = [
    "Arg",
    "BatchError",
    "BatchExecutor",
    "BatchRequest",
    "BatchResult",
    "EXIT_FAILURE",
    "EXIT_USAGE",
    "OpResponse",
    "Operation",
    "OperationError",
    "OperationRegistry",
    "ReproError",
    "ResultCache",
    "RunContext",
    "WarmPool",
    "auto_chunk_size",
    "build_request",
    "cache_key",
    "default_registry",
    "describe_failure",
    "emit_json",
    "emit_jsonl",
    "execute",
    "failure_table",
    "load_requests",
    "shutdown_warm_pools",
    "warm_pool",
]
