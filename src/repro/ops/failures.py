"""The kernel's single domain-error → exit-code mapping.

PR 4 gave ``SafeguardError`` a clean ``error:`` line and exit 1; this
table extends that contract to **every** domain error — legal,
assessment, REB, corpus, codebook, staticcheck, operation-layer — so
no subcommand (or batch request) can leak a raw traceback. Adapters
ask :func:`describe_failure` for the presentation of an exception and
never encode exit codes themselves; adding a subsystem means adding
one table row, not auditing every entry point.

The mapping is ordered most-specific-first and resolved by
``isinstance``, so subclass refinements (e.g. a future
``AccessDeniedError`` → distinct code) slot in above their base
without touching callers.
"""

from __future__ import annotations

from .. import errors

__all__ = ["EXIT_FAILURE", "EXIT_USAGE", "describe_failure", "failure_table"]

#: Exit status for a domain failure (the historical SafeguardError code).
EXIT_FAILURE = 1
#: Exit status for a malformed request (unknown op, bad argument).
EXIT_USAGE = 2

#: Ordered (error class, exit code) rows, most specific first.
_TABLE: tuple[tuple[type[BaseException], int], ...] = (
    (errors.BatchError, EXIT_USAGE),
    (errors.PolicyError, EXIT_USAGE),
    (errors.OperationError, EXIT_USAGE),
    (errors.SafeguardError, EXIT_FAILURE),
    (errors.LegalModelError, EXIT_FAILURE),
    (errors.EthicsModelError, EXIT_FAILURE),
    (errors.AssessmentError, EXIT_FAILURE),
    (errors.REBError, EXIT_FAILURE),
    (errors.CorpusError, EXIT_FAILURE),
    (errors.CodebookError, EXIT_FAILURE),
    (errors.CodingError, EXIT_FAILURE),
    (errors.BibliographyError, EXIT_FAILURE),
    (errors.AnalysisError, EXIT_FAILURE),
    (errors.RenderError, EXIT_FAILURE),
    (errors.AnonymizationError, EXIT_FAILURE),
    (errors.DatasetError, EXIT_FAILURE),
    (errors.MetricError, EXIT_FAILURE),
    (errors.ReportingError, EXIT_FAILURE),
    (errors.StaticCheckError, EXIT_FAILURE),
    (errors.ReproError, EXIT_FAILURE),
)


def failure_table() -> tuple[tuple[type[BaseException], int], ...]:
    """The (error class, exit code) rows, most specific first."""
    return _TABLE


def describe_failure(exc: errors.ReproError) -> tuple[str, int]:
    """The clean ``(message, exit code)`` presentation of *exc*.

    Every :class:`~repro.errors.ReproError` maps to a one-line
    message and a small exit status; unknown subclasses inherit
    their nearest ancestor's row (ultimately the ``ReproError``
    catch-all), so a new domain error is presentable before anyone
    remembers to register it.
    """
    for error_class, code in _TABLE:
        if isinstance(exc, error_class):
            return str(exc), code
    return str(exc), EXIT_FAILURE
