"""The execution core: request → (cache?) → handler → response.

:func:`execute` is the one code path every adapter shares — the CLI
subcommand dispatcher, the batch executor's workers, a future HTTP
server. It canonicalises the request against the operation's
declarative spec, consults the content-addressed result cache for
pure operations (key: operation name + canonical request + the
codebook/corpus digest), runs the handler with the shared
:class:`~repro.ops.context.RunContext`, and returns the typed
:class:`~repro.ops.spec.OpResponse`. Domain errors propagate as
:class:`~repro.errors.ReproError` subclasses for the adapter to map
through :func:`~repro.ops.failures.describe_failure`.
"""

from __future__ import annotations

from collections.abc import Mapping

from .cache import cache_key
from .context import RunContext
from .spec import Operation, OpResponse, build_request

__all__ = ["execute"]


def execute(
    name: str | Operation,
    values: Mapping | None = None,
    *,
    context: RunContext | None = None,
) -> OpResponse:
    """Run one operation by *name* with *values*; returns its response.

    *values* holds only the caller-provided arguments — spec defaults
    fill the rest, exactly as argparse would. With a context carrying
    a :class:`~repro.ops.cache.ResultCache`, pure operations are
    served content-addressed: a hit returns the stored response
    without touching the handler, and both outcomes count into the
    ``ops.cache.*`` metrics.
    """
    if isinstance(name, Operation):
        operation = name
    else:
        from .catalog import default_registry

        operation = default_registry().get(name)
    ctx = context if context is not None else RunContext()
    request = build_request(operation, values)
    if operation.pure and ctx.cache is not None:
        key = cache_key(
            operation.name,
            request,
            ctx.cache_digest(operation, request),
        )
        cached = ctx.cache.get(key)
        if cached is not None:
            return cached
        response = operation.handler(request, ctx)
        ctx.cache.put(key, response)
        return response
    return operation.handler(request, ctx)
