"""Content-addressed result cache for pure operations.

Operations marked ``pure`` (Table 1, the §5 statistics, the report,
the legend, …) are functions of their canonical request and the
codebook+corpus content digest alone. The kernel therefore caches
their full :class:`~repro.ops.spec.OpResponse` under a BLAKE2b key
of exactly those inputs: identical requests against identical data
hit; touching the corpus — or any request field — misses by
construction, with no invalidation protocol to get wrong.

Hit/miss counts are tracked twice: locally on the cache (for batch
summaries and the E17 benchmark) and as ``ops.cache.hits`` /
``ops.cache.misses`` counters in the installed metrics registry, so
an observed run exports cache effectiveness alongside every other
metric.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from collections.abc import Mapping

from .spec import OpResponse

__all__ = ["ResultCache", "cache_key"]


def cache_key(
    operation: str, request: Mapping, corpus_digest: str
) -> str:
    """The content address of one pure result.

    BLAKE2b-128 over the canonical JSON of ``(operation, request,
    corpus digest)`` — key equality is exactly "same computation on
    the same data".
    """
    canonical = json.dumps(
        {
            "corpus": corpus_digest,
            "op": operation,
            "request": dict(request),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.blake2b(
        canonical.encode("utf-8"), digest_size=16
    ).hexdigest()


class ResultCache:
    """Bounded, insertion-ordered store of operation responses."""

    __slots__ = ("maxsize", "hits", "misses", "_entries")

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be at least 1")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[str, OpResponse] = OrderedDict()

    def get(self, key: str) -> OpResponse | None:
        """The cached response for *key*, counting the hit or miss."""
        from ..observability import metrics

        response = self._entries.get(key)
        if response is None:
            self.misses += 1
            metrics().counter("ops.cache.misses").inc()
            return None
        self.hits += 1
        metrics().counter("ops.cache.hits").inc()
        return response

    def put(self, key: str, response: OpResponse) -> None:
        """Store *response*; the oldest entry is evicted at capacity."""
        if key not in self._entries and (
            len(self._entries) >= self.maxsize
        ):
            self._entries.popitem(last=False)
        self._entries[key] = response

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict:
        """Hit/miss/size counters as a JSON-serialisable dict."""
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "maxsize": self.maxsize,
            "misses": self.misses,
        }
