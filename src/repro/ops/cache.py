"""Content-addressed result cache for pure operations.

Operations marked ``pure`` (Table 1, the §5 statistics, the report,
the legend, …) are functions of their canonical request and the
codebook+corpus content digest alone. The kernel therefore caches
their full :class:`~repro.ops.spec.OpResponse` under a BLAKE2b key
of exactly those inputs: identical requests against identical data
hit; touching the corpus — or any request field — misses by
construction, with no invalidation protocol to get wrong.

Hit/miss counts are tracked twice: locally on the cache (for batch
summaries and the E17 benchmark) and as ``ops.cache.hits`` /
``ops.cache.misses`` counters in the installed metrics registry, so
an observed run exports cache effectiveness alongside every other
metric.

Entries are **exportable and mergeable**: a batch worker exports the
``(key, response)`` pairs it computed (:meth:`ResultCache.export`)
and ships them back with its chunk result, and the coordinator folds
them into its own cache (:meth:`ResultCache.merge`) — the shared-
cache protocol the warm pool (:mod:`repro.ops.pool`) is built on.
:meth:`ResultCache.peek` and ``key in cache`` probe without touching
the hit/miss counters, so dispatch planning never skews the stats a
batch summary reports.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from collections.abc import Iterable, Mapping

from .spec import OpResponse

__all__ = ["ResultCache", "cache_key"]


def cache_key(
    operation: str, request: Mapping, corpus_digest: str
) -> str:
    """The content address of one pure result.

    BLAKE2b-128 over the canonical JSON of ``(operation, request,
    corpus digest)`` — key equality is exactly "same computation on
    the same data".
    """
    canonical = json.dumps(
        {
            "corpus": corpus_digest,
            "op": operation,
            "request": dict(request),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.blake2b(
        canonical.encode("utf-8"), digest_size=16
    ).hexdigest()


class ResultCache:
    """Bounded, insertion-ordered store of operation responses."""

    __slots__ = ("maxsize", "hits", "misses", "_entries")

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be at least 1")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[str, OpResponse] = OrderedDict()

    def get(self, key: str) -> OpResponse | None:
        """The cached response for *key*, counting the hit or miss."""
        from ..observability import metrics

        response = self._entries.get(key)
        if response is None:
            self.misses += 1
            metrics().counter("ops.cache.misses").inc()
            return None
        self.hits += 1
        metrics().counter("ops.cache.hits").inc()
        return response

    def put(self, key: str, response: OpResponse) -> None:
        """Store *response*; the oldest entry is evicted at capacity."""
        if key not in self._entries and (
            len(self._entries) >= self.maxsize
        ):
            self._entries.popitem(last=False)
        self._entries[key] = response

    def peek(self, key: str) -> OpResponse | None:
        """The entry for *key* without counting a hit or miss.

        Dispatch planning and worker-side export probe the cache
        many times per request; only :meth:`get` — the serving path —
        may move the counters the batch summary reports.
        """
        return self._entries.get(key)

    def export(self) -> tuple[tuple[str, OpResponse], ...]:
        """Every entry as picklable ``(key, response)`` pairs.

        The shipping format of the shared-cache protocol: both sides
        of the process boundary exchange entries in this shape.
        """
        return tuple(self._entries.items())

    def merge(
        self, entries: Iterable[tuple[str, OpResponse]]
    ) -> int:
        """Fold *entries* computed elsewhere in; returns how many.

        Existing keys are kept (first write wins — entries are
        content-addressed, so a duplicate key carries an identical
        response and re-storing it would only churn eviction order).
        Neither hits nor misses move: merged entries were computed,
        not served.
        """
        merged = 0
        for key, response in entries:
            if key not in self._entries:
                self.put(key, response)
                merged += 1
        return merged

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict:
        """Hit/miss/size counters as a JSON-serialisable dict."""
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "maxsize": self.maxsize,
            "misses": self.misses,
        }
