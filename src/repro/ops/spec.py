"""The typed operations layer: argument specs, requests, responses.

Every entry point of the system — a CLI subcommand today, an HTTP
route or queue consumer tomorrow — is an :class:`Operation`: a named,
registered unit of work with a **declarative argument spec** (from
which adapters generate their own surface, e.g. the argparse
subparser), a canonical JSON-serialisable request (a plain dict built
and validated by :func:`build_request`), and an :class:`OpResponse`
pairing the structured payload with the exact text a CLI adapter
writes to stdout.

The spec is the single source of truth: the CLI parser, the batch
executor's JSONL validation and the documentation catalog are all
generated from the same :class:`Arg` tuples, so a request that parses
on one surface parses identically on every other.
"""

from __future__ import annotations

import dataclasses
import json
from collections.abc import Callable, Iterator, Mapping

from ..errors import OperationError

__all__ = [
    "Arg",
    "OpResponse",
    "Operation",
    "OperationRegistry",
    "build_request",
    "emit_json",
    "emit_jsonl",
]


def emit_json(payload: Mapping | list) -> str:
    """The one JSON renderer every operation response goes through.

    ``indent=2, sort_keys=True`` — byte-stable output for identical
    payloads, replacing the scattered ``json.dumps`` call sites the
    CLI used to carry.
    """
    return json.dumps(payload, indent=2, sort_keys=True)


def emit_jsonl(payload: Mapping) -> str:
    """One compact, sorted JSON line (the batch executor's framing)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclasses.dataclass(frozen=True)
class Arg:
    """One declarative argument of an operation.

    ``name`` follows CLI convention: a ``--flag`` name marks an
    option, a bare name a positional. ``kind`` is the target type
    (``str``/``int``/``float``); ``flag`` marks a boolean
    store-true option. Adapters translate this spec mechanically —
    :func:`build_request` uses it to validate non-CLI requests the
    same way argparse validates CLI ones.
    """

    name: str
    kind: type = str
    default: object = None
    choices: tuple = ()
    required: bool = False
    flag: bool = False
    metavar: str | None = None
    help: str = ""

    @property
    def dest(self) -> str:
        """The canonical request key (``--chunk-size`` → ``chunk_size``)."""
        return self.name.lstrip("-").replace("-", "_")

    @property
    def positional(self) -> bool:
        """Whether this argument is positional on the CLI surface."""
        return not self.name.startswith("-")

    def coerce(self, value: object) -> object:
        """Validate and convert one provided value for this argument.

        Mirrors argparse semantics for requests arriving as JSON:
        flags must be booleans, ints must not be booleans in
        disguise, floats accept ints, and ``choices`` membership is
        enforced after conversion.
        """
        if self.flag:
            if not isinstance(value, bool):
                raise OperationError(
                    f"argument {self.dest!r} expects a boolean, "
                    f"got {value!r}"
                )
            return value
        if value is None:
            return None
        if self.kind is int:
            if isinstance(value, bool) or not isinstance(value, int):
                raise OperationError(
                    f"argument {self.dest!r} expects an integer, "
                    f"got {value!r}"
                )
        elif self.kind is float:
            if isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                raise OperationError(
                    f"argument {self.dest!r} expects a number, "
                    f"got {value!r}"
                )
            value = float(value)
        elif self.kind is str and not isinstance(value, str):
            raise OperationError(
                f"argument {self.dest!r} expects a string, "
                f"got {value!r}"
            )
        if self.choices and value not in self.choices:
            raise OperationError(
                f"argument {self.dest!r} must be one of "
                f"{list(self.choices)}, got {value!r}"
            )
        return value


@dataclasses.dataclass(frozen=True)
class OpResponse:
    """What one operation produced.

    ``payload`` is the structured, JSON-serialisable result (what a
    server would return, what the batch executor frames as JSONL);
    ``text`` is the exact byte content a CLI adapter writes to
    stdout; ``exit_code`` maps onto the process status. The CLI
    prints ``text`` verbatim, so golden tests can assert stdout
    equals the response serialisation with no adapter slack.
    """

    payload: Mapping
    text: str
    exit_code: int = 0

    def to_dict(self) -> dict:
        """JSON-serialisable view (the batch line body)."""
        return {
            "exit_code": self.exit_code,
            "ok": self.exit_code == 0,
            "output": self.text,
            "payload": dict(self.payload),
        }


@dataclasses.dataclass(frozen=True)
class Operation:
    """One registered, typed unit of work.

    ``name`` is dotted for grouped surfaces (``audit.verify`` becomes
    the ``audit verify`` subcommand); ``handler`` takes the canonical
    request dict and a :class:`~repro.ops.context.RunContext`.
    ``pure`` marks results as a function of (request, corpus digest)
    only — eligible for the content-addressed result cache.
    ``pack_scoped`` widens that function's domain to include the
    policy pack the request names: the cache key additionally mixes
    in the pack's content digest, so editing a pack file invalidates
    its cached results without a restart. ``batchable`` admits the
    operation into JSONL batch runs; ``deterministic`` documents
    whether same-request output bytes are stable (the sampling
    profiler's are not).
    """

    name: str
    help: str
    handler: Callable
    args: tuple[Arg, ...] = ()
    pure: bool = False
    pack_scoped: bool = False
    batchable: bool = True
    deterministic: bool = True

    def arg(self, dest: str) -> Arg:
        """The spec whose canonical key is *dest*."""
        for arg in self.args:
            if arg.dest == dest:
                return arg
        raise OperationError(
            f"operation {self.name!r} has no argument {dest!r}"
        )


def build_request(
    operation: Operation, values: Mapping | None = None
) -> dict:
    """The canonical request dict for *operation* from *values*.

    Starts from the spec defaults, overlays *values* (rejecting
    unknown keys), coerces and validates each provided value, and
    enforces required arguments — the same contract argparse gives
    the CLI, applied to requests from any surface.
    """
    request: dict = {}
    for arg in operation.args:
        request[arg.dest] = False if arg.flag else arg.default
    for key, value in dict(values or {}).items():
        arg = operation.arg(key)  # raises on unknown keys
        request[key] = arg.coerce(value)
    for arg in operation.args:
        if arg.required and request[arg.dest] is None:
            raise OperationError(
                f"operation {operation.name!r} requires argument "
                f"{arg.dest!r}"
            )
    return request


class OperationRegistry:
    """Ordered registry of operations, addressable by dotted name."""

    def __init__(self, operations: tuple[Operation, ...] = ()) -> None:
        self._operations: dict[str, Operation] = {}
        self._group_help: dict[str, str] = {}
        for operation in operations:
            self.register(operation)

    def register(self, operation: Operation) -> Operation:
        """Add *operation*; names must be unique and non-empty."""
        if not operation.name:
            raise OperationError("operation name must be non-empty")
        if operation.name in self._operations:
            raise OperationError(
                f"duplicate operation {operation.name!r}"
            )
        self._operations[operation.name] = operation
        return operation

    def describe_group(self, group: str, help_text: str) -> None:
        """Attach CLI help to a dotted-name group (``audit``, ``obs``)."""
        self._group_help[group] = help_text

    def group_help(self, group: str) -> str:
        """The help text registered for *group* (empty if none)."""
        return self._group_help.get(group, "")

    def get(self, name: str) -> Operation:
        """The operation registered as *name*."""
        try:
            return self._operations[name]
        except KeyError:
            raise OperationError(
                f"unknown operation {name!r}; known: "
                f"{sorted(self._operations)}"
            ) from None

    def __iter__(self) -> Iterator[Operation]:
        return iter(self._operations.values())

    def __len__(self) -> int:
        return len(self._operations)

    def __contains__(self, name: str) -> bool:
        return name in self._operations

    @property
    def names(self) -> tuple[str, ...]:
        """Registered operation names, in registration order."""
        return tuple(self._operations)
