"""Runtime operations: pipeline, audit inspection, telemetry egress.

The operational side of the catalog — safeguard pipeline runs, REB
queue simulation, audit-log verification and telemetry export — each
wrapped as a typed :class:`~repro.ops.spec.Operation`. Observers are
obtained through the :class:`~repro.ops.context.RunContext` rather
than constructed inline, and every JSON body goes through
:func:`~repro.ops.spec.emit_json`, so the output bytes of each
operation are exactly what a direct response serialisation produces.
"""

from __future__ import annotations

import json

from .context import RunContext
from .spec import Arg, Operation, OpResponse, emit_json

__all__ = ["runtime_operations"]


def _text(lines: list[str]) -> str:
    """Join print-style lines into exact stdout bytes."""
    return "".join(line + "\n" for line in lines)


def _demo_stages_and_source(
    dataset: str,
    seed: int,
    users: int,
    days: int,
    chunk_size: int,
    stage_names: tuple[str, ...],
):
    """The seeded demo workload shared by ``pipeline`` and ``obs``.

    Demo keys are derived from the seed so runs are reproducible; a
    real deployment supplies independent secrets per safeguard.
    """
    import hashlib

    from ..pipeline import default_stages

    seed_tag = f"repro-pipeline-demo\x00{seed}".encode("utf-8")
    stages = default_stages(
        anonymize_key=hashlib.sha256(seed_tag + b"\x00anon").digest(),
        pseudonymize_key=hashlib.sha256(
            seed_tag + b"\x00pseudonym"
        ).digest(),
        seal_passphrase=f"repro-pipeline-demo-{seed}",
        names=stage_names,
    )
    if dataset == "booter":
        from ..datasets import BooterDatabaseGenerator

        source = BooterDatabaseGenerator(seed).iter_records(
            chunk_size=chunk_size, users=users, days=days
        )
    else:
        from ..datasets import PasswordDumpGenerator

        source = PasswordDumpGenerator(seed).iter_records(
            chunk_size=chunk_size, users=users
        )
    return stages, source


def _run_pipeline(request: dict, ctx: RunContext) -> OpResponse:
    """Stream the demo dump through the safeguard pipeline."""
    from ..pipeline import SafeguardPipeline

    names = tuple(
        part.strip()
        for part in request["stages"].split(",")
        if part.strip()
    )
    stages, source = _demo_stages_and_source(
        request["dataset"],
        request["seed"],
        request["users"],
        request["days"],
        request["chunk_size"],
        names,
    )
    pipeline = SafeguardPipeline(
        stages,
        workers=request["workers"],
        chunk_size=request["chunk_size"],
    )
    audit_log = request["audit_log"]
    profile_path = request["profile"]
    if audit_log is None and profile_path is None:
        result = pipeline.run(source)
        return OpResponse(
            payload=result.metrics,
            text=emit_json(result.metrics) + "\n",
        )

    from pathlib import Path

    from ..observability import SamplingProfiler, observed

    if audit_log is not None:
        observer = ctx.make_observer(audit_log)
    else:
        # --profile without --audit-log still needs a live observer
        # (the profiler obeys the master switch and reads the active
        # span from the tracer); record in memory, chain nothing.
        observer = ctx.make_metrics_observer()
    profiler = (
        SamplingProfiler() if profile_path is not None else None
    )
    with observed(observer):
        if profiler is not None:
            with profiler:
                result = pipeline.run(source)
        else:
            result = pipeline.run(source)
    output = dict(result.metrics)
    if audit_log is not None:
        observer.trail.close()
        verification = observer.trail.verify()
        output["observability"] = {
            "audit_log": str(observer.trail.path),
            "audit_events": len(observer.trail),
            "tail_digest": observer.trail.tail_digest,
            "chain_intact": verification.ok,
            "spans": observer.tracer.summary(),
            "metrics": observer.metrics.snapshot(),
        }
    if profiler is not None:
        Path(profile_path).write_text(
            profiler.collapsed(), encoding="utf-8"
        )
        output["profile"] = {
            "path": profile_path,
            "samples": profiler.sample_count,
            "spans": profiler.summary()["spans"],
        }
    return OpResponse(payload=output, text=emit_json(output) + "\n")


def _run_simulate_reb(request: dict, ctx: RunContext) -> OpResponse:
    """Queue simulation of a year of REB submissions."""
    from ..reb import (
        TriggerPolicy,
        ictr_board,
        medical_style_board,
        simulate_reb_year,
    )

    board = (
        ictr_board()
        if request["board"] == "ictr"
        else medical_style_board()
    )
    policy = (
        TriggerPolicy.RISK_BASED
        if request["policy"] == "risk-based"
        else TriggerPolicy.HUMAN_SUBJECTS
    )
    payload = {
        "board": board.name,
        "policy": policy.value,
        "seed": request["seed"],
    }
    if request["audit_log"] is None:
        result = simulate_reb_year(
            board, policy, seed=request["seed"]
        )
        lines = [
            f"board: {board.name}; policy: {policy.value}",
            result.describe(),
        ]
        payload["description"] = result.describe()
        return OpResponse(payload=payload, text=_text(lines))

    from ..observability import observed

    observer = ctx.make_observer(request["audit_log"])
    with observed(observer):
        result = simulate_reb_year(
            board, policy, seed=request["seed"]
        )
    observer.trail.close()
    verification = observer.trail.verify()
    lines = [
        f"board: {board.name}; policy: {policy.value}",
        result.describe(),
        f"audit: {len(observer.trail)} events -> "
        f"{observer.trail.path} ({verification.describe()})",
    ]
    payload["description"] = result.describe()
    payload["observability"] = {
        "audit_events": len(observer.trail),
        "audit_log": str(observer.trail.path),
        "chain_intact": verification.ok,
        "tail_digest": observer.trail.tail_digest,
    }
    return OpResponse(payload=payload, text=_text(lines))


def _run_audit_verify(request: dict, ctx: RunContext) -> OpResponse:
    """Walk an audit log's hash chain and localize corruption."""
    from ..observability import verify_jsonl

    verification = verify_jsonl(
        request["log"],
        expected_length=request["expect_length"],
        expected_tail_digest=request["expect_tail"],
    )
    payload = {
        "description": verification.describe(),
        "intact": verification.ok,
        "tail_digest": verification.tail_digest,
    }
    if not verification.ok:
        payload["error_index"] = verification.error_index
        payload["reason"] = verification.reason
    return OpResponse(
        payload=payload,
        text=verification.describe() + "\n",
        exit_code=0 if verification.ok else 1,
    )


def _run_audit_tail(request: dict, ctx: RunContext) -> OpResponse:
    """Print the last events of a persisted audit log."""
    from ..observability import load_events

    events = load_events(request["log"])
    lines: list[str] = []
    tail = []
    for event in events[-request["count"]:]:
        subject = f" {event.subject}" if event.subject else ""
        detail = json.dumps(event.detail, sort_keys=True)
        lines.append(
            f"#{event.sequence} {event.category}/{event.action}"
            f"{subject} {detail}"
        )
        tail.append(
            {
                "action": event.action,
                "category": event.category,
                "detail": dict(event.detail),
                "sequence": event.sequence,
                "subject": event.subject,
            }
        )
    payload = {"count": request["count"], "events": tail}
    return OpResponse(payload=payload, text=_text(lines))


def _run_audit_report(request: dict, ctx: RunContext) -> OpResponse:
    """Event counts by category/action plus the chain anchors."""
    from ..observability import load_events, verify_events

    events = load_events(request["log"])
    verification = verify_events(events)
    actions: dict[str, int] = {}
    categories: dict[str, int] = {}
    for event in events:
        categories[event.category] = (
            categories.get(event.category, 0) + 1
        )
        key = f"{event.category}/{event.action}"
        actions[key] = actions.get(key, 0) + 1
    report = {
        "events": len(events),
        "intact": verification.ok,
        "tail_digest": verification.tail_digest,
        "categories": dict(sorted(categories.items())),
        "actions": dict(sorted(actions.items())),
    }
    if not verification.ok:
        report["error_index"] = verification.error_index
        report["reason"] = verification.reason
    exit_code = 0 if verification.ok else 1
    if request["json"]:
        return OpResponse(
            payload=report,
            text=emit_json(report) + "\n",
            exit_code=exit_code,
        )
    lines = [
        f"events: {report['events']}",
        f"intact: {report['intact']}",
        f"tail digest: {report['tail_digest']}",
    ]
    for name, count in report["actions"].items():
        lines.append(f"  {name}: {count}")
    if not verification.ok:
        lines.append(
            f"first corrupt record: {verification.error_index} "
            f"({verification.reason})"
        )
    return OpResponse(
        payload=report, text=_text(lines), exit_code=exit_code
    )


def _run_obs_export(request: dict, ctx: RunContext) -> OpResponse:
    """Render an audit log's derived metrics for egress."""
    from ..observability import (
        load_events,
        registry_from_events,
        render_otlp,
        render_prometheus,
    )

    registry = registry_from_events(load_events(request["log"]))
    if request["format"] == "prometheus":
        rendered = render_prometheus(registry.snapshot())
        text = rendered
    else:
        rendered = render_otlp(registry.snapshot())
        text = rendered + "\n"
    return OpResponse(
        payload={"format": request["format"], "rendered": rendered},
        text=text,
    )


def _run_obs_profile(request: dict, ctx: RunContext) -> OpResponse:
    """Profile the demo pipeline run with the sampling profiler."""
    from pathlib import Path

    from ..observability import SamplingProfiler, observed
    from ..pipeline import STAGE_NAMES, SafeguardPipeline

    stages, source = _demo_stages_and_source(
        request["dataset"],
        request["seed"],
        request["users"],
        request["days"],
        1024,
        STAGE_NAMES,
    )
    observer = ctx.make_metrics_observer()
    profiler = SamplingProfiler(
        request["interval"], call_counts=request["call_counts"]
    )
    with observed(observer), profiler:
        SafeguardPipeline(stages).run(source)
    summary = profiler.summary()
    if request["out"] is not None:
        Path(request["out"]).write_text(
            profiler.collapsed(), encoding="utf-8"
        )
        summary["out"] = request["out"]
    return OpResponse(
        payload=summary, text=emit_json(summary) + "\n"
    )


def _run_obs_top(request: dict, ctx: RunContext) -> OpResponse:
    """The hottest frames of a saved collapsed-stack profile."""
    from pathlib import Path

    from ..errors import SafeguardError
    from ..observability import top_collapsed

    try:
        text = Path(request["profile"]).read_text(encoding="utf-8")
    except OSError as exc:
        raise SafeguardError(
            f"cannot read profile {request['profile']!r}: {exc}"
        ) from exc
    rows = top_collapsed(text, request["limit"])
    payload = {
        "limit": request["limit"],
        "rows": [[frame, count] for frame, count in rows],
    }
    if not rows:
        return OpResponse(payload=payload, text="no samples\n")
    width = max(len(str(count)) for _, count in rows)
    lines = [f"{count:>{width}} {frame}" for frame, count in rows]
    return OpResponse(payload=payload, text=_text(lines))


def _run_obs_health(request: dict, ctx: RunContext) -> OpResponse:
    """Liveness/readiness report over the warm worker pools."""
    from .pool import active_pools, warm_pool

    pool = warm_pool(request["workers"], not request["no_cache"])
    report = pool.health(probe=request["probe"])
    probe = report.get("probe")
    ok = probe is None or bool(probe["ok"])
    payload = {
        "ok": ok,
        "pool": report,
        "pools": [
            {
                "live": candidate.live,
                "use_cache": candidate.cache is not None,
                "workers": candidate.workers,
            }
            for candidate in active_pools()
        ],
    }
    cache = report["cache"]
    cache_line = (
        f"cache: {cache['entries']} entries "
        f"({cache['hits']} hits, {cache['misses']} misses)"
        if cache["enabled"]
        else "cache: disabled"
    )
    lines = [
        f"pool: {report['workers']} worker(s), "
        f"live: {report['live']}, "
        f"rebuilds: {report['rebuilds']}",
        f"context: {'warm' if report['context_warm'] else 'cold'}",
        cache_line,
    ]
    if probe is not None:
        lines.append(
            f"probe: ok ({probe['round_trips']} round trip(s))"
            if probe["ok"]
            else f"probe: FAILED ({probe['error']})"
        )
    lines.append(f"active pools: {len(payload['pools'])}")
    return OpResponse(
        payload=payload,
        text=_text(lines),
        exit_code=0 if ok else 1,
    )


def _run_obs_slo(request: dict, ctx: RunContext) -> OpResponse:
    """Judge a declarative SLO spec against an audit chain."""
    from pathlib import Path

    from ..errors import OperationError, SafeguardError
    from ..observability import (
        SloSpec,
        evaluate_slo,
        load_events,
        windows_from_events,
    )

    try:
        raw = Path(request["spec"]).read_text(encoding="utf-8")
    except OSError as exc:
        raise SafeguardError(
            f"cannot read SLO spec {request['spec']!r}: {exc}"
        ) from exc
    try:
        body = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise OperationError(
            f"invalid SLO spec: not valid JSON: {exc}"
        ) from exc
    spec = SloSpec.from_dict(body)
    series = windows_from_events(
        load_events(request["log"]),
        window_size=request["window"] or spec.window_size,
    )
    report = evaluate_slo(spec, series)
    payload = report.to_dict()
    text = (
        emit_json(payload) + "\n"
        if request["json"]
        else report.describe() + "\n"
    )
    return OpResponse(
        payload=payload, text=text, exit_code=report.exit_code
    )


def _run_obs_incident(request: dict, ctx: RunContext) -> OpResponse:
    """Verify and summarise a dumped incident bundle."""
    from pathlib import Path

    from ..errors import SafeguardError
    from ..observability import load_bundle_text, verify_bundle_text

    try:
        text = Path(request["bundle"]).read_text(encoding="utf-8")
    except OSError as exc:
        raise SafeguardError(
            f"cannot read incident bundle "
            f"{request['bundle']!r}: {exc}"
        ) from exc
    header, records, envelope = load_bundle_text(text)
    verification = verify_bundle_text(text)
    payload = {
        "dropped": header["dropped"],
        "frames": len(records),
        "intact": verification.ok,
        "kind": header["kind"],
        "plan": header["plan"],
        "reason": envelope.get("reason", ""),
        "sequence": header["sequence"],
        "tail_digest": header["tail_digest"],
    }
    if not verification.ok:
        payload["error_index"] = verification.error_index
        payload["verification_reason"] = verification.reason
    lines = [
        f"incident #{header['sequence']}: {header['kind']}",
        f"frames: {len(records)} ({header['dropped']} dropped "
        "before capture)",
        f"chain: {verification.describe()}",
    ]
    if envelope.get("reason"):
        lines.append(f"reason: {envelope['reason']}")
    for record in records[-request["tail"]:] if request["tail"] else []:
        frame = record["frame"]
        if frame["kind"] == "event":
            subject = (
                f" {frame['subject']}" if frame["subject"] else ""
            )
            detail = json.dumps(frame["detail"], sort_keys=True)
            lines.append(
                f"  #{record['index']} event "
                f"{frame['category']}/{frame['action']}"
                f"{subject} {detail}"
            )
        elif frame["kind"] == "span":
            lines.append(
                f"  #{record['index']} span {frame['name']} "
                f"(depth {frame['depth']})"
            )
        else:
            lines.append(
                f"  #{record['index']} metric {frame['name']} "
                f"+{frame['value']}"
            )
    return OpResponse(
        payload=payload,
        text=_text(lines),
        exit_code=0 if verification.ok else 1,
    )


def runtime_operations() -> tuple[Operation, ...]:
    """The operational-side operation definitions."""
    return (
        Operation(
            name="pipeline",
            help=(
                "stream a synthetic dump through the safeguard "
                "pipeline and print per-stage JSON metrics"
            ),
            handler=_run_pipeline,
            args=(
                Arg(
                    "--dataset",
                    choices=("booter", "passwords"),
                    default="booter",
                ),
                Arg("--users", kind=int, default=300),
                Arg("--days", kind=int, default=90),
                Arg("--seed", kind=int, default=0),
                Arg("--workers", kind=int, default=1),
                Arg("--chunk-size", kind=int, default=1024),
                Arg(
                    "--stages",
                    default="anonymize,pseudonymize,scrub,seal",
                    help=(
                        "comma-separated subset of "
                        "anonymize,pseudonymize,scrub,seal"
                    ),
                ),
                Arg(
                    "--audit-log",
                    default=None,
                    metavar="PATH",
                    help=(
                        "record a tamper-evident audit trail to this "
                        "JSONL file and add an observability section "
                        "to the JSON output"
                    ),
                ),
                Arg(
                    "--profile",
                    default=None,
                    metavar="PATH",
                    help=(
                        "sample the run with the profiler and write "
                        "collapsed flamegraph stacks to this file "
                        "(view with 'obs top')"
                    ),
                ),
            ),
            deterministic=False,
        ),
        Operation(
            name="simulate-reb",
            help="queue simulation of a year of REB submissions",
            handler=_run_simulate_reb,
            args=(
                Arg(
                    "--board",
                    choices=("ictr", "medical"),
                    default="ictr",
                ),
                Arg(
                    "--policy",
                    choices=("risk-based", "human-subjects"),
                    default="risk-based",
                ),
                Arg("--seed", kind=int, default=0),
                Arg(
                    "--audit-log",
                    default=None,
                    metavar="PATH",
                    help=(
                        "record every triage and decision as a "
                        "tamper-evident JSONL audit trail"
                    ),
                ),
            ),
        ),
        Operation(
            name="audit.verify",
            help=(
                "walk the hash chain and localize any corruption"
            ),
            handler=_run_audit_verify,
            args=(
                Arg("log", required=True,
                    help="path to a JSONL audit log"),
                Arg(
                    "--expect-length",
                    kind=int,
                    default=None,
                    help=(
                        "event count recorded out of band; makes "
                        "tail truncation detectable"
                    ),
                ),
                Arg(
                    "--expect-tail",
                    default=None,
                    metavar="DIGEST",
                    help=(
                        "tail digest recorded out of band; detects "
                        "truncation and whole-log rewrites"
                    ),
                ),
            ),
        ),
        Operation(
            name="audit.tail",
            help="print the last events of an audit log",
            handler=_run_audit_tail,
            args=(
                Arg("log", required=True,
                    help="path to a JSONL audit log"),
                Arg("--count", kind=int, default=10),
            ),
        ),
        Operation(
            name="audit.report",
            help=(
                "event counts by category/action plus the chain "
                "anchors (length and tail digest) to record out of "
                "band"
            ),
            handler=_run_audit_report,
            args=(
                Arg("log", required=True,
                    help="path to a JSONL audit log"),
                Arg("--json", flag=True),
            ),
        ),
        Operation(
            name="obs.export",
            help=(
                "derive metrics from an audit log and render them "
                "as Prometheus text or OTLP-style JSON (clock-free, "
                "so same-seed runs export identical bytes)"
            ),
            handler=_run_obs_export,
            args=(
                Arg("log", required=True,
                    help="path to a JSONL audit log"),
                Arg(
                    "--format",
                    choices=("prometheus", "otlp"),
                    default="prometheus",
                ),
            ),
        ),
        Operation(
            name="obs.profile",
            help=(
                "run the demo safeguard pipeline under the sampling "
                "profiler and print a JSON summary"
            ),
            handler=_run_obs_profile,
            args=(
                Arg(
                    "--dataset",
                    choices=("booter", "passwords"),
                    default="booter",
                ),
                Arg("--users", kind=int, default=300),
                Arg("--days", kind=int, default=30),
                Arg("--seed", kind=int, default=0),
                Arg(
                    "--interval",
                    kind=float,
                    default=0.002,
                    help="seconds between stack samples",
                ),
                Arg(
                    "--call-counts",
                    flag=True,
                    help=(
                        "also count function entries exactly via a "
                        "sys.setprofile hook (slower, precise)"
                    ),
                ),
                Arg(
                    "--out",
                    default=None,
                    metavar="PATH",
                    help=(
                        "write collapsed flamegraph stacks to this "
                        "file"
                    ),
                ),
            ),
            deterministic=False,
        ),
        Operation(
            name="obs.top",
            help=(
                "hottest frames of a saved collapsed-stack profile"
            ),
            handler=_run_obs_top,
            args=(
                Arg(
                    "profile",
                    required=True,
                    help=(
                        "path to a collapsed-stack profile file"
                    ),
                ),
                Arg("--limit", kind=int, default=15),
            ),
        ),
        Operation(
            name="obs.health",
            help=(
                "liveness/readiness report for the warm worker "
                "pool: workers live, rebuilds, context warmth and "
                "cache counters, with an optional probe round-trip"
            ),
            handler=_run_obs_health,
            args=(
                Arg(
                    "--workers",
                    kind=int,
                    default=1,
                    help=(
                        "pool configuration to report on (gets or "
                        "creates the process-lifetime warm pool for "
                        "this worker count)"
                    ),
                ),
                Arg(
                    "--probe",
                    flag=True,
                    help=(
                        "perform a full probe round-trip: spawn and "
                        "warm the complement of worker processes; a "
                        "failed probe exits 1 instead of raising"
                    ),
                ),
                Arg(
                    "--no-cache",
                    flag=True,
                    help="report on the cache-disabled pool variant",
                ),
            ),
            deterministic=False,
            batchable=False,
        ),
        Operation(
            name="obs.slo",
            help=(
                "judge a declarative JSON SLO spec against the "
                "request brackets of an audit log; exits 1 when any "
                "objective breaches, so CI can gate on it"
            ),
            handler=_run_obs_slo,
            args=(
                Arg(
                    "spec",
                    required=True,
                    help=(
                        "path to a JSON SLO spec: {name, window, "
                        "objectives: [{id, metric, threshold, ...}]}"
                    ),
                ),
                Arg(
                    "log",
                    required=True,
                    help="path to a JSONL audit log",
                ),
                Arg(
                    "--window",
                    kind=int,
                    default=None,
                    metavar="N",
                    help=(
                        "override the spec's logical window size "
                        "(requests per window)"
                    ),
                ),
                Arg("--json", flag=True),
            ),
        ),
        Operation(
            name="obs.incident",
            help=(
                "verify a dumped incident bundle's hash chain and "
                "summarise what the flight recorder saw"
            ),
            handler=_run_obs_incident,
            args=(
                Arg(
                    "bundle",
                    required=True,
                    help=(
                        "path to an incident-*.jsonl bundle dumped "
                        "by the flight recorder"
                    ),
                ),
                Arg(
                    "--tail",
                    kind=int,
                    default=0,
                    metavar="N",
                    help=(
                        "also print the last N frames of the ring"
                    ),
                ),
            ),
        ),
    )
