"""The warm worker pool: pre-forked, pre-warmed, process-lifetime.

``BENCH_ops.json`` recorded the standing inversion this module
removes: a 24-request batch ran at 402 req/s with ``workers=4``
against 2802 req/s serial, because every parallel batch paid full
process-pool startup and each worker rebuilt its
:class:`~repro.ops.context.RunContext` — corpus, content digest and
result cache — from nothing. A :class:`WarmPool` pays those costs
once per *process lifetime* instead of once per *batch run*:

* **Pre-forked, pre-warmed workers.** The pool's
  ``ProcessPoolExecutor`` is built lazily on first submission (a
  batch of invalid requests never spawns a process) and each worker
  runs :func:`_warm_worker` at startup: the operation registry is
  assembled, the per-process :class:`RunContext` is constructed and
  its corpus + BLAKE2b content digest materialised, and the worker's
  :class:`~repro.ops.cache.ResultCache` is primed — so the first
  real request a worker sees costs only the request.
* **A shared coordinator cache.** The pool owns a coordinator-side
  :class:`~repro.ops.cache.ResultCache` and the coordinator
  :class:`RunContext` wrapping it; both persist across batch runs.
  Workers ship the ``(key, response)`` pairs they computed back with
  every chunk (:class:`ChunkResult`), the coordinator merges them,
  and the batch executor serves later identical pure requests
  without touching the pool at all — the per-worker cache islands
  become one content-addressed cache that learns from every worker.
* **Chunked submission.** Requests cross the pickle/IPC boundary in
  contiguous chunks (:func:`auto_chunk_size` targets ~4 chunks per
  worker, capped so a chunk never grows unbounded), amortising the
  submission overhead that dominated small-request batches.
* **Graceful degradation.** A crashed or unpicklable worker
  surfaces as :class:`~repro.errors.BatchError` naming the affected
  request indexes — never a raw ``BrokenProcessPool`` traceback —
  an ``ops/worker-lost`` audit event is emitted, and the pool
  discards its broken executor so the next use rebuilds lazily.

Pools are keyed by ``(workers, cache enablement)`` in a module-level
registry (:func:`warm_pool`); :func:`shutdown_warm_pools` tears all
of them down (tests and benchmarks use it for isolation), and the
first pool creation registers an ``atexit`` teardown — opt out with
:func:`set_atexit_shutdown` — so a long-lived session never leaks
pre-forked workers. :meth:`WarmPool.health` is the liveness/
readiness report (live workers, rebuilds, cache counters, optional
probe round-trip) behind ``repro-ethics obs health``. Everything
submitted to the pool is a module-level function — staticcheck rule
R9 (worker-safety) audits the submission sites below.
"""

from __future__ import annotations

import atexit
import dataclasses
from concurrent.futures import BrokenExecutor

from ..errors import BatchError
from ..observability import audit_event, flight_recorder
from ..observability.worker import TelemetryShard, WorkerTelemetry
from .cache import ResultCache, cache_key
from .context import RunContext
from .spec import build_request

__all__ = [
    "ChunkResult",
    "WarmPool",
    "active_pools",
    "auto_chunk_size",
    "set_atexit_shutdown",
    "shutdown_warm_pools",
    "warm_pool",
]

#: Chunks per worker the auto-sizer aims for: small enough that a
#: slow chunk cannot starve the drain, large enough to amortise IPC.
_CHUNKS_PER_WORKER = 4

#: Ceiling on the auto-sized chunk (requests per pickle crossing).
_MAX_AUTO_CHUNK = 32


def auto_chunk_size(pending: int, workers: int) -> int:
    """The default requests-per-chunk for *pending* dispatches.

    Targets :data:`_CHUNKS_PER_WORKER` chunks per worker so the
    ordered drain always has work in flight, clamped to
    ``[1, _MAX_AUTO_CHUNK]`` so tiny batches still parallelise and
    huge ones keep bounded pickle payloads.
    """
    if pending <= 0:
        return 1
    ideal = -(-pending // (workers * _CHUNKS_PER_WORKER))
    return max(1, min(_MAX_AUTO_CHUNK, ideal))


@dataclasses.dataclass(frozen=True)
class ChunkResult:
    """Everything one worker chunk ships back to the coordinator.

    ``lines`` are the response line bodies in chunk order;
    ``shards`` is the parallel tuple of per-request telemetry
    captures (``None`` when the coordinator's observer is disabled);
    ``pairs`` are the content-addressed ``(key, response)`` entries
    for pure operations this chunk computed, ready to merge into the
    coordinator cache; ``hits``/``misses`` are the worker-cache
    counter deltas this chunk incurred, aggregated into the batch
    summary.
    """

    lines: tuple[dict, ...]
    shards: tuple[WorkerTelemetry | None, ...]
    pairs: tuple[tuple[str, object], ...] = ()
    hits: int = 0
    misses: int = 0


def _warm_worker(use_cache: bool) -> None:
    """Pool initializer: build and warm the per-process state.

    Runs once in every worker at spawn time, before any request:
    assembles the operation registry (so per-request dispatch is a
    dict hit), constructs the persistent worker
    :class:`RunContext`, and materialises the corpus and its content
    digest — the costs that previously made every worker's first
    request ~100x slower than its second.
    """
    from .batch import _worker_context
    from .catalog import default_registry

    default_registry()
    _worker_context(use_cache).warm_up()


def _execute_chunk(
    chunk: tuple, telemetry: bool, use_cache: bool
) -> ChunkResult:
    """Worker-side entry point: run one contiguous request chunk.

    *chunk* is a tuple of ``(index, op, args)`` triples. Each
    request executes through the same :func:`~repro.ops.batch._run_one`
    path a serial run uses, under its own
    :class:`~repro.observability.worker.TelemetryShard` when the
    coordinator observes, so per-request audit brackets replay in
    exact submission order. Successful pure results are exported as
    ``(key, response)`` pairs for the coordinator cache.
    """
    from .batch import _batchable_operation, _run_one, _worker_context

    ctx = _worker_context(use_cache)
    cache = ctx.cache
    hits_before = cache.hits if cache is not None else 0
    misses_before = cache.misses if cache is not None else 0
    lines: list[dict] = []
    shards: list[WorkerTelemetry | None] = []
    pairs: list[tuple[str, object]] = []
    exported: set[str] = set()
    for index, name, values in chunk:
        if telemetry:
            with TelemetryShard() as shard:
                line = _run_one(index, name, values, ctx)
            shards.append(shard.telemetry())
        else:
            line = _run_one(index, name, values, ctx)
            shards.append(None)
        lines.append(line)
        if cache is None or not line["ok"]:
            continue
        operation = _batchable_operation(name)
        if not operation.pure:
            continue
        built = build_request(operation, values)
        key = cache_key(
            operation.name,
            built,
            ctx.cache_digest(operation, built),
        )
        if key in exported:
            continue
        exported.add(key)
        response = cache.peek(key)
        if response is not None:
            pairs.append((key, response))
    return ChunkResult(
        lines=tuple(lines),
        shards=tuple(shards),
        pairs=tuple(pairs),
        hits=(cache.hits - hits_before) if cache is not None else 0,
        misses=(
            cache.misses - misses_before
        ) if cache is not None else 0,
    )


class WarmPool:
    """A lazily built, reusable pool of pre-warmed worker processes.

    Owns the coordinator-side shared :class:`ResultCache` and the
    coordinator :class:`RunContext` wrapping it — both survive
    across batch runs, which is what makes a second batch on the
    same pool free of every cold-start cost. The executor itself is
    built on first submission and discarded (for lazy rebuild) when
    a worker is lost.
    """

    #: Coordinator caches outlive single runs; give them headroom
    #: beyond the per-worker default so a service working set fits.
    COORDINATOR_CACHE_SIZE = 1024

    def __init__(self, workers: int, use_cache: bool = True) -> None:
        if workers < 1:
            raise BatchError("workers must be at least 1")
        self.workers = workers
        self.use_cache = use_cache
        self.cache = (
            ResultCache(maxsize=self.COORDINATOR_CACHE_SIZE)
            if use_cache
            else None
        )
        self.context = RunContext(cache=self.cache)
        self.rebuilds = 0
        self._executor = None

    @property
    def live(self) -> bool:
        """Whether worker processes currently back this pool."""
        return self._executor is not None

    def _ensure(self):
        """The executor, built (with warm-up initializer) on demand."""
        if self._executor is None:
            from concurrent.futures import ProcessPoolExecutor

            executor = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_warm_worker,
                initargs=(self.use_cache,),
            )
            self._executor = executor
        return self._executor

    def start(self) -> int:
        """Pre-fork and warm every worker now; returns the count.

        Submission normally spawns workers on demand; a server (or
        benchmark) that wants the fork+warm-up cost paid up front
        submits one empty probe chunk per worker, which forces the
        full complement of processes to spawn and run
        :func:`_warm_worker`.
        """
        executor = self._ensure()
        probes = [
            executor.submit(_execute_chunk, (), False, self.use_cache)
            for _ in range(self.workers)
        ]
        for probe in probes:
            self.outcome(probe, ())
        return self.workers

    def submit_chunk(self, chunk: tuple, telemetry: bool):
        """Submit one ``(index, op, args)`` chunk; returns its future.

        A pool whose executor died between runs raises
        :class:`BatchError` (and discards the executor for lazy
        rebuild) instead of leaking ``BrokenProcessPool``.
        """
        executor = self._ensure()
        try:
            return executor.submit(
                _execute_chunk, chunk, telemetry, self.use_cache
            )
        except (BrokenExecutor, RuntimeError) as exc:
            raise self._lost(chunk, exc) from exc

    def outcome(self, future, chunk: tuple) -> ChunkResult:
        """Resolve one chunk future, mapping pool loss to BatchError.

        The coordinator's drain path: a worker that died mid-chunk
        surfaces here as :class:`BatchError` naming the affected
        request indexes, and the executor is discarded for lazy
        rebuild.
        """
        try:
            return future.result()
        except BrokenExecutor as exc:
            raise self._lost(chunk, exc) from exc

    def health(self, *, probe: bool = False) -> dict:
        """The pool's liveness/readiness report, JSON-safe and sorted.

        Reports whether worker processes currently back the pool,
        how many times a broken executor was discarded and rebuilt,
        whether the coordinator context is warm (corpus + digest
        materialised) and the shared cache's counters. With
        ``probe=True`` it also performs a full **probe round-trip**:
        one empty chunk per worker through :meth:`start`, forcing
        the complement of processes to spawn, warm and answer — the
        readiness check a server loop would poll. A failed probe is
        reported (``ok: False`` with the failure text), never
        raised, so a health endpoint cannot crash on the very
        condition it exists to report.
        """
        cache = self.cache
        report: dict = {
            "cache": (
                {
                    "enabled": True,
                    "entries": len(cache),
                    "hits": cache.hits,
                    "maxsize": cache.maxsize,
                    "misses": cache.misses,
                }
                if cache is not None
                else {"enabled": False}
            ),
            "context_warm": self.context.is_warm,
            "live": self.live,
            "rebuilds": self.rebuilds,
            "workers": self.workers,
        }
        if probe:
            try:
                self.start()
            except BatchError as exc:
                report["probe"] = {"ok": False, "error": str(exc)}
            else:
                report["probe"] = {
                    "ok": True,
                    "round_trips": self.workers,
                }
            report["live"] = self.live
        return report

    def _lost(self, chunk: tuple, exc: BaseException) -> BatchError:
        """Discard the broken executor; describe the loss precisely."""
        self.discard()
        if chunk:
            first, last = chunk[0][0], chunk[-1][0]
            span = (
                f"request {first}"
                if first == last
                else f"requests {first}-{last}"
            )
        else:
            span = "a warm-up probe"
        audit_event(
            "ops",
            "worker-lost",
            subject="pool",
            workers=self.workers,
            span=span,
        )
        recorder = flight_recorder()
        if recorder is not None:
            # The worker-lost dump happens here, at the failure
            # boundary, so the ring still holds the events that led
            # up to the loss; the free-text cause and the affected
            # span are envelope material (they vary with chunking).
            recorder.incident(
                "worker-lost",
                reason=f"{type(exc).__name__}: {exc}",
                span=span,
                workers=self.workers,
                rebuilds=self.rebuilds,
            )
        return BatchError(
            f"worker process lost while running {span} "
            f"({type(exc).__name__}: {exc}); the pool was discarded "
            "and will rebuild on next use"
        )

    def discard(self) -> None:
        """Drop the executor (broken or not); next use rebuilds it."""
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)
            self.rebuilds += 1

    def shutdown(self) -> None:
        """Terminate the worker processes, keeping the shared cache."""
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)


#: Process-lifetime pool registry, keyed by (workers, cache on/off).
_WARM_POOLS: dict[tuple[int, bool], WarmPool] = {}

#: Exit-hook state: registered once per process, opt-out via
#: :func:`set_atexit_shutdown`. A dict (not two globals) so the
#: mutation sites stay the memo-idiom shape R8 recognises.
_ATEXIT = {"enabled": True, "registered": False}


def _atexit_shutdown() -> None:
    """The exit hook: tear down pools unless the user opted out."""
    if _ATEXIT["enabled"]:
        shutdown_warm_pools()


def set_atexit_shutdown(enabled: bool) -> bool:
    """Opt in or out of the exit-time pool teardown; returns the
    previous setting.

    The hook is on by default so a long-lived session (REPL, server,
    notebook) that touched ``warm_pool()`` does not leak pre-forked
    worker processes past interpreter exit. Embedders that manage
    pool lifetime themselves call ``set_atexit_shutdown(False)``.
    """
    previous = _ATEXIT["enabled"]
    _ATEXIT["enabled"] = bool(enabled)
    return previous


def active_pools() -> tuple[WarmPool, ...]:
    """Registered warm pools, ordered by (workers, cache) key."""
    return tuple(
        _WARM_POOLS[key] for key in sorted(_WARM_POOLS)
    )


def warm_pool(workers: int, use_cache: bool = True) -> WarmPool:
    """The process-lifetime :class:`WarmPool` for this configuration.

    Successive ``BatchExecutor(..., warm=True)`` runs with the same
    worker count and cache setting share one pool — and therefore
    one set of warmed workers and one coordinator cache. With
    ``workers=1`` the pool never spawns a process; only its
    persistent coordinator context (and cache) is used.
    """
    key = (workers, use_cache)
    pool = _WARM_POOLS.get(key)
    if pool is None:
        if not _ATEXIT["registered"]:
            # Register lazily, on first pool creation, so importing
            # the module costs nothing and the hook exists exactly
            # when there is something to clean up.
            _ATEXIT["registered"] = True
            atexit.register(_atexit_shutdown)
        pool = WarmPool(workers, use_cache=use_cache)
        _WARM_POOLS[key] = pool
    return pool


def shutdown_warm_pools() -> int:
    """Shut down every registered warm pool; returns how many.

    Drops the pools' coordinator caches too — after this call the
    process is back to a fully cold state (tests and benchmarks use
    it as the isolation boundary).
    """
    pools = list(_WARM_POOLS.values())
    _WARM_POOLS.clear()
    for pool in pools:
        pool.shutdown()
    return len(pools)
